//! Programmable arrival profiles: a soccer-game flash crowd.
//!
//! §6.1 of the paper conjectures that live-media characteristics depend on
//! the *nature* of the content: "the periodicity observed in our reality
//! TV application is likely to be very different from that observed in
//! (say) live feeds associated with a soccer game." GISMO's extension
//! therefore makes the arrival profile programmable. This example builds a
//! match-day profile — a sharp pre-kickoff surge, sustained load through
//! two halves, a halftime dip, and a final whistle cliff — and contrasts
//! the resulting concurrency against the reality-show diurnal profile.
//!
//! ```text
//! cargo run --release --example soccer_flash_crowd
//! ```

use lsw::analysis::transfer_layer;
use lsw::core::config::WorkloadConfig;
use lsw::core::diurnal::{DiurnalProfile, BINS_PER_DAY};
use lsw::core::generator::Generator;
use lsw::figures::ascii::{scatter, AxisScale};

/// Builds the match-day shape: kickoff 20:00, halftime 20:45–21:00,
/// final whistle 21:50.
fn soccer_shape() -> Vec<f64> {
    let mut shape = vec![10.0; BINS_PER_DAY]; // quiet baseline all day
    let bin_of = |h: f64| ((h / 24.0) * BINS_PER_DAY as f64) as usize;
    // Pre-game build-up from 19:00.
    for (i, b) in (bin_of(19.0)..bin_of(20.0)).enumerate() {
        shape[b] = 50.0 + 200.0 * i as f64;
    }
    // First half: full crowd.
    shape[bin_of(20.0)..bin_of(20.75)].fill(2_000.0);
    // Halftime dip.
    shape[bin_of(20.75)..bin_of(21.0)].fill(1_200.0);
    // Second half.
    shape[bin_of(21.0)..bin_of(21.83)].fill(2_200.0);
    // Final whistle cliff, short post-game lingering.
    shape[bin_of(21.83)..bin_of(22.5)].fill(150.0);
    shape
}

fn main() {
    let config = WorkloadConfig::paper().scaled(30_000, 86_400, 40_000);

    // Reality show (the paper's diurnal profile) vs match day.
    let tv = Generator::new(config.clone(), 11).expect("valid config");
    let soccer_profile = DiurnalProfile::new(soccer_shape(), [1.0; 7], 0).expect("valid shape");
    let soccer = Generator::with_profile(config, 11, soccer_profile).expect("valid config");

    for (name, generator) in [("reality show", tv), ("soccer match", soccer)] {
        let trace = generator.generate().render();
        let conc = transfer_layer::analyze_concurrency(&trace);
        let peak = conc.peak;
        let mean = conc.marginal.summary.mean;
        println!("=== {name} ===");
        println!(
            "transfers: {}; peak concurrency: {peak}; mean: {mean:.0}; peak/mean: {:.1}",
            trace.len(),
            f64::from(peak) / mean
        );
        // Concurrency over the day, ASCII preview.
        let pts: Vec<(f64, f64)> = conc
            .over_trace
            .points()
            .into_iter()
            .map(|(t, v)| (t / 3_600.0, v))
            .collect();
        println!("concurrent transfers vs hour of day:");
        print!(
            "{}",
            scatter(&pts, 72, 12, AxisScale::Linear, AxisScale::Linear)
        );
        println!();
    }

    println!(
        "the flash-crowd profile concentrates the same session volume into ~2 hours: \
         its peak-to-mean ratio is several times the reality show's, which is exactly \
         why capacity planning must be content-aware (§6.1). The same Table 2 \
         distributions drive both runs — only the programmable arrival profile differs."
    );
}
