//! Capacity planning for live content delivery — the paper's motivating
//! application (§1): admission control is not viable for live media, so
//! the operator must provision for the peak.
//!
//! This example sizes a server against a synthetic week of the reality
//! show: it sweeps admission caps and uplink capacities, measures denied
//! viewer-hours and congestion, and reports the provisioning frontier.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::sim::{AdmissionPolicy, NetworkConfig, ServerConfig, SimConfig, Simulator};

fn main() {
    // A 3-day slice at moderate scale.
    let config = WorkloadConfig::paper().scaled(40_000, 3 * 86_400, 120_000);
    let workload = Generator::new(config, 2024)
        .expect("valid config")
        .generate();
    println!(
        "workload: {} sessions, {} transfers over 3 days\n",
        workload.sessions().len(),
        workload.len()
    );

    // --- Step 1: what does the uncapped peak look like? ---
    let base = Simulator::new(SimConfig::default()).run(&workload, 1);
    let peak = base.server_stats.peak_concurrent;
    println!("uncapped peak concurrency: {peak} transfers");
    println!(
        "bytes delivered: {:.2} GB; congested transfers: {}\n",
        base.bytes_delivered as f64 / 1e9,
        base.congested_transfers
    );

    // --- Step 2: the admission-control fallacy (§1) ---
    // For *stored* content a rejected request retries later; for *live*
    // content it is a denied viewing. Sweep caps below the peak and count
    // the damage.
    println!("admission cap sweep (cap as fraction of peak):");
    println!(
        "{:>10} {:>12} {:>16} {:>20}",
        "cap", "rejected", "rejection rate", "denied viewer-hours"
    );
    for frac in [0.25, 0.5, 0.75, 0.9, 1.0] {
        let cap = ((peak as f64) * frac).ceil() as u64;
        let sim = Simulator::new(SimConfig {
            server: ServerConfig {
                admission: AdmissionPolicy::RejectAbove {
                    max_concurrent: cap,
                },
                ..ServerConfig::default()
            },
            ..SimConfig::default()
        });
        let out = sim.run(&workload, 1);
        println!(
            "{:>10} {:>12} {:>15.2}% {:>19.1} h",
            cap,
            out.server_stats.rejected,
            100.0 * out.server_stats.rejection_rate(),
            out.server_stats.denied_viewer_seconds / 3_600.0
        );
    }

    // --- Step 3: uplink sizing ---
    // Instead of rejecting, provision bandwidth. Sweep the uplink and
    // watch congestion fall off; the knee is the provisioning answer.
    println!("\nuplink sweep:");
    println!(
        "{:>12} {:>22} {:>18}",
        "uplink", "uplink-congested xfers", "delivered GB"
    );
    for uplink_mbps in [5.0, 10.0, 20.0, 40.0, 80.0] {
        let sim = Simulator::new(SimConfig {
            network: NetworkConfig {
                uplink_bps: uplink_mbps * 1e6,
            },
            path_congestion_rate: 0.0, // isolate the uplink effect
            ..SimConfig::default()
        });
        let out = sim.run(&workload, 1);
        println!(
            "{:>9} Mbps {:>22} {:>17.2}",
            uplink_mbps,
            out.congested_transfers,
            out.bytes_delivered as f64 / 1e9
        );
    }

    println!(
        "\nconclusion: provisioning for the diurnal peak (~{peak} concurrent transfers, \
         see the Fig 4/16 temporal profiles) avoids both denied viewings and congestion; \
         admission control converts every capacity shortfall into lost audience."
    );
}
