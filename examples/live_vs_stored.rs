//! The paper's central duality, made executable: live media access is
//! *object driven* (clients carry the Zipf skew; transfer lengths come
//! from client stickiness), stored media access is *user driven* (objects
//! carry the Zipf skew; transfer lengths come from object sizes).
//!
//! This example generates one workload of each kind, characterizes both,
//! and prints the side-by-side contrast (§3.5 and §5.3 of the paper).
//!
//! ```text
//! cargo run --release --example live_vs_stored
//! ```

use lsw::analysis::transfer_layer;
use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::core::stored::{StoredConfig, StoredGenerator};
use lsw::stats::empirical::RankFrequency;
use lsw::stats::fit::fit_zipf_rank_frequency;
use lsw::trace::session::{transfer_counts_per_client, SessionConfig, Sessions};
use lsw::trace::trace::Trace;

fn object_popularity_alpha(trace: &Trace) -> Option<f64> {
    let mut counts = std::collections::HashMap::new();
    for e in trace.entries() {
        *counts.entry(e.object).or_insert(0u64) += 1;
    }
    let rf = RankFrequency::from_counts(counts.into_values().collect());
    fit_zipf_rank_frequency(&rf, Some(100.0))
        .ok()
        .map(|f| f.alpha)
}

fn client_interest_alpha(trace: &Trace) -> Option<f64> {
    let rf = RankFrequency::from_counts(transfer_counts_per_client(trace));
    // Fit the low-noise body.
    let mut body = rf.n();
    for rank in 1..=rf.n() {
        if rf.count_at(rank).unwrap_or(0) < 10 {
            body = rank.saturating_sub(1);
            break;
        }
    }
    fit_zipf_rank_frequency(&rf, Some(body.max(20) as f64))
        .ok()
        .map(|f| f.alpha)
}

fn main() {
    let horizon = 2 * 86_400u32;

    // --- Live: the paper's workload ---
    let live_cfg = WorkloadConfig::paper().scaled(25_000, horizon, 60_000);
    let live = Generator::new(live_cfg, 5)
        .expect("valid config")
        .generate()
        .render();

    // --- Stored: the classic GISMO baseline ---
    let stored_cfg = StoredConfig {
        n_clients: 25_000,
        n_objects: 500,
        horizon_secs: horizon,
        target_requests: 60_000,
        ..StoredConfig::default()
    };
    let stored = StoredGenerator::new(stored_cfg, 5)
        .expect("valid config")
        .generate();

    println!("{:<44} {:>12} {:>12}", "", "LIVE", "STORED");
    println!(
        "{:<44} {:>12} {:>12}",
        "transfers",
        live.len(),
        stored.len()
    );

    // Duality 1 (§3.5): where does the Zipf skew live?
    // Live: only 2 objects exist — object popularity is meaningless; the
    // skew is in the *client interest* profile. Stored: 500 objects carry
    // a Zipf popularity; clients are uniform.
    let live_objects = live.summary().objects;
    let stored_objects = stored.summary().objects;
    println!(
        "{:<44} {:>12} {:>12}",
        "distinct objects", live_objects, stored_objects
    );
    let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |a| format!("{a:.3}"));
    println!(
        "{:<44} {:>12} {:>12}",
        "object-popularity Zipf alpha",
        fmt(object_popularity_alpha(&live)),
        fmt(object_popularity_alpha(&stored)),
    );
    println!(
        "{:<44} {:>12} {:>12}",
        "client-interest Zipf alpha",
        fmt(client_interest_alpha(&live)),
        fmt(client_interest_alpha(&stored)),
    );

    // Duality 2 (§5.3): where does transfer-length variability live?
    // Live: within each object (stickiness). Stored: across objects
    // (sizes) — the within-object variance ratio drops well below 1.
    let live_lengths = transfer_layer::analyze_lengths(&live);
    let stored_lengths = transfer_layer::analyze_lengths(&stored);
    println!(
        "{:<44} {:>12.3} {:>12.3}",
        "within-object variance ratio of log-lengths",
        live_lengths.within_object_variance_ratio,
        stored_lengths.within_object_variance_ratio,
    );

    // Session structure for completeness.
    let live_sessions = Sessions::identify(&live, SessionConfig::default());
    let stored_sessions = Sessions::identify(&stored, SessionConfig::default());
    println!(
        "{:<44} {:>12} {:>12}",
        "sessions (T_o = 1500 s)",
        live_sessions.len(),
        stored_sessions.len()
    );

    println!(
        "\nreading: for LIVE content the client side is skewed (interest alpha ~0.5-0.7) \
         and essentially all length variance is within-object (ratio ~1.0); for STORED \
         content the object side is skewed (popularity alpha ~0.73, Breslau et al.) and \
         object sizes absorb a large share of the length variance (ratio well below 1).",
    );
}
