//! Quickstart: generate a live streaming workload, render the server log,
//! and print the Table-1/Table-2 style headline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsw::analysis::characterize;
use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;

fn main() {
    // One day of the reality show, 20k clients, ~30k viewing sessions —
    // every distributional parameter is the paper's Table 2.
    let config = WorkloadConfig::paper().scaled(20_000, 86_400, 30_000);
    println!(
        "generating: {} clients, {} target sessions, {} hours of live content",
        config.n_clients,
        config.target_sessions,
        config.horizon_secs / 3_600
    );

    let workload = Generator::new(config, 42).expect("valid config").generate();
    println!(
        "generated {} sessions and {} transfers",
        workload.sessions().len(),
        workload.len()
    );

    // Render as a Windows-Media-Server-style log (1-second resolution).
    let trace = workload.render();

    // Characterize hierarchically: client layer, session layer, transfer
    // layer — the full pipeline of the paper.
    let report = characterize(&trace, 0);
    println!("\n{}", report.headline());

    // The first few log lines, in the on-disk format.
    let text = lsw::trace::wms::format_log(&trace.entries()[..3.min(trace.len())]);
    println!(
        "--- first log lines ---\n{}",
        String::from_utf8_lossy(&text)
    );
}
