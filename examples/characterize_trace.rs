//! Characterize a trace from a WMS-style log file — or, with no argument,
//! from a freshly generated and simulated workload, demonstrating the full
//! §2 pipeline: parse → sanitize → sessionize → three-layer analysis.
//!
//! ```text
//! cargo run --release --example characterize_trace [LOGFILE]
//! ```

use lsw::analysis::characterize;
use lsw::core::config::WorkloadConfig;
use lsw::core::generator::Generator;
use lsw::sim::{SimConfig, Simulator};
use lsw::trace::sanitize::sanitize;
use lsw::trace::wms;

fn main() {
    let horizon = 2 * 86_400u32;
    let raw_entries = match std::env::args().nth(1) {
        Some(path) => {
            // Parse a log from disk.
            let text = std::fs::read_to_string(&path).expect("read log file");
            wms::parse_log(&text).expect("parse WMS log")
        }
        None => {
            // Produce a log the hard way: generate, then *simulate* it
            // through the server and network (with the §2.4 harvest
            // anomaly enabled so sanitization has work to do).
            let config = WorkloadConfig::paper().scaled(15_000, horizon, 40_000);
            let workload = Generator::new(config, 7).expect("valid config").generate();
            let sim = Simulator::new(SimConfig {
                harvest_anomaly_rate: 1e-3,
                ..SimConfig::default()
            });
            let out = sim.run(&workload, 7);
            println!(
                "simulated {} transfers ({} congested, {:.2} GB delivered)",
                out.trace.len(),
                out.congested_transfers,
                out.bytes_delivered as f64 / 1e9
            );
            out.trace.entries().to_vec()
        }
    };

    // §2.4: sanitize.
    let (trace, report) = sanitize(raw_entries, horizon);
    println!(
        "sanitization: kept {} / {} entries ({} rejected: {:?})",
        report.kept,
        report.examined,
        report.rejected(),
        report.rejects
    );
    println!(
        "server underload: {:.4}% of time, {:.4}% of transfers below 10% CPU",
        100.0 * report.underload_time_fraction,
        100.0 * report.underload_transfer_fraction
    );

    // §3–§5: the hierarchical characterization.
    let rep = characterize(&trace, 0);
    println!("\n{}", rep.headline());

    // A couple of layer-specific detail lines.
    println!("--- client layer ---");
    println!(
        "peak concurrent clients: {}; AS count: {}; top country: {} ({:.1}%)",
        rep.client.concurrency.peak,
        rep.client.geo.n_ases,
        rep.client.geo.country_transfers[0].0,
        100.0 * rep.client.geo.country_transfers[0].1
    );
    println!("--- session layer ---");
    println!(
        "sessions: {}; ON-time p95 = {:.0}s; OFF ripples at days {:?}",
        rep.session.n_sessions, rep.session.on_times.summary.p95, rep.session.off_ripple_days
    );
    println!("--- transfer layer ---");
    println!(
        "peak concurrent transfers: {}; congestion-bound: {:.1}%",
        rep.transfer.concurrency.peak,
        100.0 * rep.transfer.bandwidth.congestion_bound_fraction
    );
}
