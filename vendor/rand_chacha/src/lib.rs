//! Vendored ChaCha8 random number generator.
//!
//! A from-scratch implementation of the ChaCha stream cipher core (D. J.
//! Bernstein, 2008) at 8 rounds, exposed through the vendored `rand`
//! traits. The workspace needs an engine that is *deterministic across
//! platforms, thread counts and rust versions* — every reproducibility
//! guarantee in `lsw-stats::SeedStream` bottoms out here. Only
//! self-consistency matters (no upstream byte-stream compatibility is
//! required), but the real ChaCha quarter-round is used so the stream
//! carries ChaCha's statistical quality.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};

/// The ChaCha stream cipher RNG at 8 rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit block counter,
    /// 64-bit stream id.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    word_pos: usize,
}

const ROUNDS: usize = 8;
/// "expand 32-byte k" — the standard ChaCha constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Runs the block function on the current counter and refills `block`.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word_pos = 0;
    }

    /// Returns the stream id (nonce words).
    pub fn get_stream(&self) -> u64 {
        u64::from(self.state[15]) << 32 | u64::from(self.state[14])
    }

    /// Sets the stream id, restarting the current block.
    pub fn set_stream(&mut self, stream: u64) {
        self.state[14] = stream as u32;
        self.state[15] = (stream >> 32) as u32;
        self.word_pos = 16;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and stream id start at zero.
        Self {
            state,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(hi) << 32 | u64::from(lo)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn word_stream_looks_uniform() {
        // Coarse sanity: bit balance of 64k words within 1% of half.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..65_536).map(|_| r.next_u32().count_ones()).sum();
        let expected = 65_536 * 16;
        let deviation = (i64::from(ones) - i64::from(expected)).abs();
        assert!(deviation < expected as i64 / 100, "bit bias: {deviation}");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
