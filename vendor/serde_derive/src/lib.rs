//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! Parses the item declaration directly from the raw [`proc_macro`] token
//! stream (no `syn`/`quote` — the build environment is offline) and emits
//! field-by-field `to_value`/`from_value` impls against the vendored
//! value-tree `serde` API. Supported shapes are exactly the ones the
//! workspace declares: non-generic named structs, tuple structs, unit
//! structs, and enums with unit / named / tuple variants (externally
//! tagged, matching serde's default JSON representation).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// The parsed shape of the deriving item.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error token parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive on generic type `{name}` is not supported"));
    }
    match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: named_fields(&g)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: tuple_arity(&g),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: variants(&g)?,
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Skips leading `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(
                    iter.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    iter.next();
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a named-field brace group, skipping types.
fn named_fields(group: &Group) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple-struct / tuple-variant paren group.
fn tuple_arity(group: &Group) -> usize {
    let mut arity = 0usize;
    let mut saw_token = false;
    let mut angle = 0i32;
    for tok in group.stream() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if saw_token {
                        arity += 1;
                    }
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        arity += 1;
    }
    arity
}

/// Parses enum variants (unit, named-field, or tuple).
fn variants(group: &Group) -> Result<Vec<Variant>, String> {
    let mut out = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g)?;
                iter.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g);
                iter.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Optional separator / discriminant — only `,` occurs in this
        // workspace (no explicit discriminants on serialized enums).
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                out.push(Variant { name, kind });
                break;
            }
            other => return Err(format!("expected `,` after variant, got {other:?}")),
        }
        out.push(Variant { name, kind });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Object(::std::vec![{entries}])"),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Array(::std::vec![{items}])"),
            )
        }
        Shape::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from({vname:?})),"
                        ),
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Object(::std::vec![{entries}]))]),"
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: String = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{items}])")
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from({vname:?}), \
                                 {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {arms} }}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,"))
                .collect();
            impl_deserialize(
                name,
                &format!("::std::result::Result::Ok({name} {{ {inits} }})"),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::from_value(v)?))"
            ),
        ),
        Shape::TupleStruct { name, arity } => impl_deserialize(name, &tuple_body(name, *arity)),
        Shape::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.field({f:?})?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {inits} }}),"
                            ))
                        }
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => Some(format!(
                            "{vname:?} => {{ let v = inner; {} }}",
                            tuple_body(&format!("{name}::{vname}"), *arity)
                        )),
                    }
                })
                .collect();
            let body = format!(
                "match v {{\n\
                   ::serde::Value::Str(s) => match s.as_str() {{\n\
                     {unit_arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                       format!(\"unknown {name} variant `{{other}}`\"))),\n\
                   }},\n\
                   ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                     let (tag, inner) = &map[0];\n\
                     match tag.as_str() {{\n\
                       {tagged_arms}\n\
                       other => ::std::result::Result::Err(::serde::Error::msg(\
                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }}\n\
                   }}\n\
                   other => ::std::result::Result::Err(::serde::Error::msg(\
                     format!(\"expected {name}, got {{}}\", other.kind()))),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

/// Body that destructures `v` as a fixed-arity array into `ctor(..)`.
fn tuple_body(ctor: &str, arity: usize) -> String {
    let items: String = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
        .collect();
    format!(
        "{{ let items = v.as_array().ok_or_else(|| ::serde::Error::msg(\
         format!(\"expected array, got {{}}\", v.kind())))?;\n\
         if items.len() != {arity} {{\n\
           return ::std::result::Result::Err(::serde::Error::msg(format!(\
             \"expected array of {arity}, got {{}}\", items.len())));\n\
         }}\n\
         ::std::result::Result::Ok({ctor}({items})) }}"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
