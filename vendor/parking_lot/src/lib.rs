//! Vendored subset of the `parking_lot` crate: `Mutex` and `RwLock` with
//! parking_lot's non-poisoning API, backed by the std primitives.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(3);
        assert_eq!(*rw.read(), 3);
        *rw.write() = 4;
        assert_eq!(rw.into_inner(), 4);
    }
}
