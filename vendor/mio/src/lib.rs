//! Vendored subset of the `mio` crate: readiness polling over Linux
//! `epoll(7)` plus an `eventfd(2)`-backed [`Waker`].
//!
//! Implements exactly the surface the workspace's replay reactor uses:
//! [`Poll`]/[`Registry`]/[`Events`]/[`Token`]/[`Interest`], the
//! [`unix::SourceFd`] adapter for registering any raw file descriptor,
//! and [`Waker`]. Two deliberate divergences from upstream, both safe
//! for this workspace's usage:
//!
//! * Sources are registered **level-triggered** (upstream mio is
//!   edge-triggered). Level-triggered cannot lose readiness on a
//!   partial drain, which is the forgiving behavior the reactor's
//!   read-until-`WouldBlock` loops want.
//! * The [`Waker`]'s eventfd is registered edge-triggered, so a wake is
//!   delivered once per `wake()` burst and the counter never needs
//!   draining (it would take `u64::MAX` wakes to saturate).
//!
//! This is the one sanctioned home for the `unsafe` FFI the reactor
//! needs: the first-party crates are `forbid(unsafe_code)`, and the
//! linker already provides these glibc symbols via std.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// Identifier handed back with each readiness event; carried through the
/// kernel verbatim in `epoll_data`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (combine with `|`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// True if this interest includes read readiness.
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// True if this interest includes write readiness.
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    /// True if this interest requests edge-triggered delivery.
    pub const fn is_edge(self) -> bool {
        self.0 & 0b100 != 0
    }

    /// Requests edge-triggered delivery for this registration (a
    /// divergence from upstream mio, which is always edge-triggered;
    /// this vendored subset defaults to level-triggered).
    ///
    /// Level-triggered `EPOLLOUT` re-reports a write-blocked socket on
    /// every `epoll_wait` while the peer drains it, which at overload
    /// degenerates into one sliver-sized write per wake. The edge fires
    /// once per writability *transition*, so each wake amortizes a full
    /// drain-hysteresis batch. Only safe for callers that always read
    /// and write to `WouldBlock` before re-polling — which is the
    /// discipline every loop in this workspace follows.
    pub const fn edge(self) -> Interest {
        Interest(self.0 | 0b100)
    }

    /// Union of two interests (upstream's `Interest::add`).
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

// ---------------------------------------------------------------------
// Raw epoll / eventfd FFI (glibc, already linked by std).

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel ABI
/// packs the 12-byte struct (no padding after `events`); other targets
/// use natural C layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn listen(sockfd: i32, backlog: i32) -> i32;
    fn setsockopt(sockfd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn splice(
        fd_in: i32,
        off_in: *mut i64,
        fd_out: i32,
        off_out: *mut i64,
        len: usize,
        flags: u32,
    ) -> isize;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;
const SO_RCVBUF: i32 = 8;

fn set_buffer(fd: RawFd, opt: i32, bytes: i32) -> io::Result<()> {
    // SAFETY: plain syscall; the kernel copies the 4-byte optval before
    // returning and clamps it to the net.core.{w,r}mem_max sysctl.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            &bytes,
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Requests a `SO_SNDBUF` of `bytes` for `fd` (the kernel doubles the
/// value for bookkeeping and clamps to `net.core.wmem_max`).
///
/// A paced streaming server wants its whole per-deadline burst — and,
/// when running behind, the accumulated entitlement — to land in one
/// `writev(2)`; the 208 KiB default turns megabyte catch-up writes into
/// partial-write/`EPOLLOUT` round trips.
pub fn set_send_buffer(fd: RawFd, bytes: i32) -> io::Result<()> {
    set_buffer(fd, SO_SNDBUF, bytes)
}

/// Requests a `SO_RCVBUF` of `bytes` for `fd` (doubled and clamped to
/// `net.core.rmem_max` by the kernel). The receiving load driver uses
/// this to keep the server's bursts from blocking on a full window.
pub fn set_recv_buffer(fd: RawFd, bytes: i32) -> io::Result<()> {
    set_buffer(fd, SO_RCVBUF, bytes)
}

// ---------------------------------------------------------------------
// Zero-copy drain.

const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;
const F_SETPIPE_SZ: i32 = 1031;
const SPLICE_F_MOVE: u32 = 1;
const SPLICE_F_NONBLOCK: u32 = 2;

/// Discards a socket's inbound bytes without copying them to userspace:
/// `splice(2)` moves the kernel's receive pages into a private pipe and
/// from there into `/dev/null`, where they are dropped page-by-page.
///
/// A closed-loop load driver that only *counts* payload bytes pays the
/// full skb-to-userspace memcpy on every `read(2)` — at several GB/s of
/// drain that memcpy is the harness's dominant cost and caps what the
/// server under test can be observed to serve. Splicing removes it.
#[derive(Debug)]
pub struct SpliceSink {
    pipe_r: OwnedFd,
    pipe_w: OwnedFd,
    devnull: std::fs::File,
}

impl SpliceSink {
    /// Opens the pipe pair and the `/dev/null` sink. The pipe is grown
    /// best-effort to 1 MiB so one splice can move a whole paced burst.
    pub fn new() -> io::Result<SpliceSink> {
        let mut fds = [-1i32; 2];
        // SAFETY: plain syscall writing two fds into a live stack array.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: both fds were just returned by pipe2 and nothing else
        // owns them; each OwnedFd takes over its single close.
        let (pipe_r, pipe_w) =
            unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
        // SAFETY: plain syscall on the pipe fd; failure leaves the
        // default 64 KiB capacity, which is merely slower.
        unsafe { fcntl(pipe_w.as_raw_fd(), F_SETPIPE_SZ, 1 << 20) };
        let devnull = std::fs::OpenOptions::new().write(true).open("/dev/null")?;
        Ok(SpliceSink {
            pipe_r,
            pipe_w,
            devnull,
        })
    }

    /// Moves up to `max` bytes from `from` into `/dev/null` without a
    /// userspace copy. Returns `Ok(0)` on EOF, `WouldBlock` when the
    /// socket has nothing to drain, and any other error verbatim (a
    /// caller can fall back to `read(2)` on e.g. `EINVAL`).
    pub fn drain(&self, from: RawFd, max: usize) -> io::Result<usize> {
        use std::ptr;
        // SAFETY: plain syscall between two live fds; null offsets mean
        // "use the fds' own positions", required for sockets and pipes.
        let moved = unsafe {
            splice(
                from,
                ptr::null_mut(),
                self.pipe_w.as_raw_fd(),
                ptr::null_mut(),
                max,
                SPLICE_F_MOVE | SPLICE_F_NONBLOCK,
            )
        };
        if moved < 0 {
            return Err(io::Error::last_os_error());
        }
        // Sink the pipe into /dev/null; its write side never blocks, so
        // this always makes progress until the pipe is empty again.
        let mut left = moved as usize;
        while left > 0 {
            // SAFETY: as above.
            let out = unsafe {
                splice(
                    self.pipe_r.as_raw_fd(),
                    ptr::null_mut(),
                    self.devnull.as_raw_fd(),
                    ptr::null_mut(),
                    left,
                    SPLICE_F_MOVE | SPLICE_F_NONBLOCK,
                )
            };
            if out <= 0 {
                // /dev/null cannot reject pages; anything here is a
                // kernel refusing splice altogether.
                return Err(io::Error::last_os_error());
            }
            left -= out as usize;
        }
        Ok(moved as usize)
    }
}

/// Re-issues `listen(2)` on an already-listening socket to widen its
/// accept backlog (the kernel clamps to `net.core.somaxconn`).
///
/// `std::net::TcpListener::bind` hardcodes a backlog of 128; a replay
/// driver opening thousands of subscriber connections in one burst
/// overflows that queue, and every dropped SYN stalls the client in a
/// seconds-long retransmit timeout. Linux applies the new backlog to a
/// live listener in place, so this is safe to call after `bind`.
pub fn widen_listen_backlog(l: &std::net::TcpListener, backlog: i32) -> io::Result<()> {
    // SAFETY: plain syscall on a live listening fd; `listen` only
    // updates the queue bound and cannot invalidate the descriptor.
    let rc = unsafe { listen(l.as_raw_fd(), backlog) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Wraps a raw fd freshly returned by the kernel into an [`OwnedFd`],
/// or surfaces `errno` if the call failed.
fn owned_fd(raw: i32) -> io::Result<OwnedFd> {
    if raw < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: `raw` is a live fd the kernel just handed us and nothing
    // else owns it; OwnedFd takes over the single close.
    Ok(unsafe { OwnedFd::from_raw_fd(raw) })
}

// ---------------------------------------------------------------------
// Registration.

/// Handle for (de)registering event sources with a [`Poll`] instance.
#[derive(Debug)]
pub struct Registry {
    epfd: OwnedFd,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token.0 as u64,
        };
        // SAFETY: `ev` is a live, correctly-laid-out epoll_event for the
        // duration of the call; the kernel copies it before returning.
        let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn mask(interests: Interest) -> u32 {
        let mut m = 0;
        if interests.is_readable() {
            // RDHUP lets a level-triggered source report peer half-close
            // as `is_read_closed` without a read() probe.
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interests.is_writable() {
            m |= EPOLLOUT;
        }
        if interests.is_edge() {
            m |= EPOLLET;
        }
        m
    }

    /// Registers `source` for level-triggered readiness under `token`.
    pub fn register<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.raw_fd(), Self::mask(interests), token)
    }

    /// Replaces an existing registration's interest set and token.
    pub fn reregister<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.raw_fd(), Self::mask(interests), token)
    }

    /// Removes `source` from the poller.
    pub fn deregister<S: Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.raw_fd(), 0, Token(0))
    }
}

/// An event source that can be registered with a [`Registry`].
pub trait Source {
    /// The raw file descriptor to poll.
    fn raw_fd(&self) -> RawFd;
}

/// Adapters for registering arbitrary unix file descriptors.
pub mod unix {
    use super::Source;
    use std::os::fd::RawFd;

    /// Registers any raw fd (timerfd, a std `TcpStream`, …) by
    /// reference, without taking ownership.
    #[derive(Debug)]
    pub struct SourceFd<'a>(pub &'a RawFd);

    impl Source for SourceFd<'_> {
        fn raw_fd(&self) -> RawFd {
            *self.0
        }
    }
}

// ---------------------------------------------------------------------
// Polling.

/// The epoll instance: readiness polling for many sources at once.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a fresh epoll instance.
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain syscall, no pointers.
        let epfd = owned_fd(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registration handle for this poller.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready, the timeout
    /// elapses, or a [`Waker`] fires; fills `events` with what is ready.
    ///
    /// `None` blocks indefinitely. A timeout is rounded **up** to the
    /// next millisecond (epoll granularity): callers wanting finer wakeup
    /// precision register a timerfd instead of relying on the timeout.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        events.len = 0;
        loop {
            // SAFETY: `buf` holds `capacity` writable epoll_event slots
            // for the duration of the call; the kernel writes at most
            // `maxevents` of them and we trust its returned count.
            let rc = unsafe {
                epoll_wait(
                    self.registry.epfd.as_raw_fd(),
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                events.len = rc as usize;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// A buffer of readiness events filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can hold up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.clamp(1, i32::MAX as usize)],
            len: 0,
        }
    }

    /// Iterates the events delivered by the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|&e| Event(e))
    }

    /// True when the last poll delivered nothing (pure timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events").field("len", &self.len).finish()
    }
}

/// One readiness event.
#[derive(Clone, Copy)]
pub struct Event(EpollEvent);

impl Event {
    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        let data = self.0.data;
        Token(data as usize)
    }

    fn bits(&self) -> u32 {
        self.0.events
    }

    /// Read readiness (includes hangup: a closed peer is "readable" —
    /// the read returns 0).
    pub fn is_readable(&self) -> bool {
        self.bits() & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Write readiness.
    pub fn is_writable(&self) -> bool {
        self.bits() & EPOLLOUT != 0
    }

    /// Error condition on the source (fetch it with a read/write).
    pub fn is_error(&self) -> bool {
        self.bits() & EPOLLERR != 0
    }

    /// The peer shut down its write half (or the whole connection).
    pub fn is_read_closed(&self) -> bool {
        self.bits() & (EPOLLHUP | EPOLLRDHUP) != 0
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("token", &self.token())
            .field("readable", &self.is_readable())
            .field("writable", &self.is_writable())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Waker.

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread.
#[derive(Debug)]
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Creates a waker delivering [`Event`]s under `token` to `registry`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        // SAFETY: plain syscall, no pointers.
        let fd = owned_fd(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // Edge-triggered: each wake() write is a fresh edge, and the
        // counter never needs draining on the poll side.
        registry.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), EPOLLIN | EPOLLET, token)?;
        Ok(Waker { fd })
    }

    /// Wakes the associated poller (idempotent, thread-safe).
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack buffer to an eventfd.
        let rc = unsafe { write(self.fd.as_raw_fd(), (&one as *const u64).cast(), 8) };
        // EAGAIN means the counter is already saturated — the poller has
        // a pending wake either way.
        if rc == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }
}

impl Source for std::net::TcpStream {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

impl Source for std::net::TcpListener {
    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write as _};

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let mut poll = Poll::new().expect("epoll");
        let waker = Waker::new(poll.registry(), Token(7)).expect("waker");
        let mut events = Events::with_capacity(8);
        std::thread::scope(|s| {
            s.spawn(|| waker.wake().expect("wake"));
            poll.poll(&mut events, Some(Duration::from_secs(5)))
                .expect("poll");
        });
        let toks: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(toks, vec![Token(7)]);
        assert!(events.iter().all(|e| e.is_readable()));
    }

    #[test]
    fn widen_listen_backlog_accepts_a_live_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        widen_listen_backlog(&listener, 4096).expect("widen");
        // The listener still accepts after the backlog update.
        let addr = listener.local_addr().expect("addr");
        let _client = std::net::TcpStream::connect(addr).expect("connect");
        listener.accept().expect("accept");
    }

    #[test]
    fn socket_readiness_is_level_triggered() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poll = Poll::new().expect("epoll");
        poll.registry()
            .register(&mut server, Token(1), Interest::READABLE)
            .expect("register");
        client.write_all(b"hello").expect("write");

        let mut events = Events::with_capacity(8);
        for _ in 0..2 {
            // Level-triggered: unread data keeps re-reporting readable.
            poll.poll(&mut events, Some(Duration::from_secs(5)))
                .expect("poll");
            assert!(events
                .iter()
                .any(|e| e.token() == Token(1) && e.is_readable()));
        }
        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf).expect("read"), 5);

        // Drained: nothing ready now.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll");
        assert!(events.is_empty());

        // Peer close is reported as read-closed.
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(events.iter().any(|e| e.is_read_closed()));
    }

    #[test]
    fn splice_sink_counts_drained_bytes_and_reports_eof() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let sink = SpliceSink::new().expect("splice sink");
        // Empty socket: nothing to move yet.
        let empty = sink.drain(server.as_raw_fd(), 1 << 20);
        assert_eq!(
            empty.expect_err("no bytes queued").kind(),
            io::ErrorKind::WouldBlock
        );

        let payload = vec![0xa5u8; 192 * 1024];
        client.write_all(&payload).expect("write");
        let mut drained = 0usize;
        while drained < payload.len() {
            match sink.drain(server.as_raw_fd(), 1 << 20) {
                Ok(0) => panic!("EOF before the payload drained"),
                Ok(n) => drained += n,
                // The writer may still be mid-flight; readiness is the
                // reactor's job, a spin is fine in a test.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("drain: {e}"),
            }
        }
        assert_eq!(drained, payload.len());

        // Peer close surfaces as Ok(0), mirroring read(2).
        drop(client);
        loop {
            match sink.drain(server.as_raw_fd(), 1 << 20) {
                Ok(0) => break,
                Ok(_) => panic!("nothing left to drain"),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("drain after close: {e}"),
            }
        }
    }

    #[test]
    fn edge_writable_fires_on_transition_not_level() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        // Fill the send buffer until the socket stops being writable.
        let chunk = [0u8; 65536];
        loop {
            match server.write(&chunk) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("fill: {e}"),
            }
        }

        let mut poll = Poll::new().expect("epoll");
        poll.registry()
            .register(
                &mut server,
                Token(3),
                (Interest::READABLE | Interest::WRITABLE).edge(),
            )
            .expect("register");
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .expect("poll");
        assert!(
            !events.iter().any(|e| e.is_writable()),
            "full buffer is not writable"
        );

        // Drain the peer: the not-writable → writable transition is one
        // edge...
        client
            .set_read_timeout(Some(Duration::from_millis(100)))
            .expect("timeout");
        let mut sink = vec![0u8; 1 << 20];
        let mut drained = 0usize;
        loop {
            match client.read(&mut sink) {
                Ok(0) => break,
                Ok(n) => drained += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(e) => panic!("drain: {e}"),
            }
        }
        assert!(drained > 0, "peer drained something");
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(events
            .iter()
            .any(|e| e.token() == Token(3) && e.is_writable()));

        // ...and, unlike level-triggered delivery, it does not re-report
        // while the socket merely stays writable.
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .expect("poll");
        assert!(!events.iter().any(|e| e.is_writable()));
        drop(client);
    }

    #[test]
    fn writable_interest_toggles_with_reregister() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");

        let mut poll = Poll::new().expect("epoll");
        poll.registry()
            .register(&mut server, Token(2), Interest::READABLE)
            .expect("register");
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll");
        assert!(events.is_empty(), "no read interest satisfied yet");

        poll.registry()
            .reregister(
                &mut server,
                Token(2),
                Interest::READABLE | Interest::WRITABLE,
            )
            .expect("reregister");
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_writable()));

        poll.registry().deregister(&mut server).expect("deregister");
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll");
        assert!(events.is_empty());
        drop(client);
    }
}
