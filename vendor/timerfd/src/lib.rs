//! Vendored subset of the `timerfd` crate: nanosecond-resolution
//! one-shot timers as a pollable file descriptor (`timerfd_create(2)`).
//!
//! The replay reactor arms one of these to its timing wheel's next
//! deadline and registers it with epoll, sidestepping `epoll_wait`'s
//! millisecond timeout granularity. One divergence from upstream: the
//! fd is created non-blocking, so [`TimerFd::read`] returns 0 instead
//! of blocking when the timer has not expired (the reactor only reads
//! after epoll reports the fd readable).

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

const CLOCK_MONOTONIC: i32 = 1;
const TFD_CLOEXEC: i32 = 0o2000000;
const TFD_NONBLOCK: i32 = 0o4000;

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct Itimerspec {
    it_interval: Timespec,
    it_value: Timespec,
}

extern "C" {
    fn timerfd_create(clockid: i32, flags: i32) -> i32;
    fn timerfd_settime(
        fd: i32,
        flags: i32,
        new_value: *const Itimerspec,
        old_value: *mut Itimerspec,
    ) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
}

/// What a timer should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerState {
    /// No pending expiration.
    Disarmed,
    /// Expire once, `Duration` from now.
    Oneshot(Duration),
}

/// A one-shot monotonic timer backed by a pollable file descriptor.
#[derive(Debug)]
pub struct TimerFd {
    fd: OwnedFd,
}

impl TimerFd {
    /// Creates a disarmed monotonic timer.
    pub fn new() -> io::Result<TimerFd> {
        // SAFETY: plain syscall, no pointers.
        let raw = unsafe { timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK) };
        if raw < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `raw` is a live fd the kernel just handed us and
        // nothing else owns it; OwnedFd takes over the single close.
        let fd = unsafe { OwnedFd::from_raw_fd(raw) };
        Ok(TimerFd { fd })
    }

    /// Arms or disarms the timer. A zero `Oneshot` duration is bumped to
    /// one nanosecond (zero would disarm at the kernel level); the fd
    /// then becomes readable effectively immediately.
    pub fn set_state(&mut self, state: TimerState) -> io::Result<()> {
        let spec = match state {
            TimerState::Disarmed => Itimerspec::default(),
            TimerState::Oneshot(d) => {
                let nanos = d.as_nanos().max(1);
                Itimerspec {
                    it_interval: Timespec::default(),
                    it_value: Timespec {
                        tv_sec: i64::try_from(nanos / 1_000_000_000).unwrap_or(i64::MAX),
                        tv_nsec: (nanos % 1_000_000_000) as i64,
                    },
                }
            }
        };
        // SAFETY: `spec` is a live, correctly-laid-out itimerspec for
        // the duration of the call; old_value is allowed to be null.
        let rc = unsafe { timerfd_settime(self.fd.as_raw_fd(), 0, &spec, std::ptr::null_mut()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Consumes and returns the number of expirations since the last
    /// read: 0 when the timer has not fired (the fd is non-blocking).
    pub fn read(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        let rc = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8) };
        if rc == 8 {
            u64::from_ne_bytes(buf)
        } else {
            0
        }
    }
}

impl AsRawFd for TimerFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_fires_once() {
        let mut t = TimerFd::new().expect("timerfd");
        assert_eq!(t.read(), 0, "disarmed timer has no expirations");
        t.set_state(TimerState::Oneshot(Duration::from_millis(5)))
            .expect("arm");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(t.read(), 1);
        assert_eq!(t.read(), 0, "expiration count is consumed by read");
    }

    #[test]
    fn rearm_and_disarm() {
        let mut t = TimerFd::new().expect("timerfd");
        t.set_state(TimerState::Oneshot(Duration::from_secs(3600)))
            .expect("arm far out");
        t.set_state(TimerState::Disarmed).expect("disarm");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(t.read(), 0, "disarmed timer never fires");
        // Zero-duration oneshot still fires (bumped to 1ns, not disarm).
        t.set_state(TimerState::Oneshot(Duration::ZERO))
            .expect("arm");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(t.read(), 1);
    }
}
