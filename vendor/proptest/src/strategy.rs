//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an output type.
///
/// Mirrors upstream's `Strategy` minus shrinking: `sample` draws one value
/// from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// String strategies from a regex-like pattern (upstream's `&str`
/// strategy). Supports the subset this workspace's tests use: literal
/// chars, `.`, `[a-z]`-style classes (ranges and literals), and the
/// quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

/// One regex atom: the set of chars it can produce.
enum Atom {
    Literal(char),
    /// Inclusive char ranges (a class or `.`).
    Class(Vec<(char, char)>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = u64::from(hi as u32 - lo as u32) + 1;
                    if pick < span {
                        // Char ranges used in tests never straddle the
                        // surrogate gap; fall back to `lo` defensively.
                        return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                    }
                    pick -= span;
                }
                unreachable!("pick < total")
            }
        }
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None | Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("peeked");
                            ranges.push((lo, hi));
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                Atom::Class(ranges)
            }
            '.' => Atom::Class(vec![(' ', '~'), ('\t', '\t'), ('\n', '\n'), ('¡', 'ÿ')]),
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        // Quantifier.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().unwrap_or(0),
                        n.trim().parse().unwrap_or(32),
                    ),
                    None => {
                        let m = spec.trim().parse().unwrap_or(1);
                        (m, m)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0usize, 32usize)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(atom.sample(rng));
        }
    }
    out
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `variants` must be non-empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.variants.len() as u64) as usize;
        self.variants[idx].sample(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.u01() as $t;
                self.start + u * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.u01() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;

    fn sample(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty range strategy");
        // Resample on the (rare) surrogate gap.
        loop {
            let c = lo + rng.below(u64::from(hi - lo)) as u32;
            if let Some(c) = char::from_u32(c) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}
