//! Vendored subset of the `proptest` API.
//!
//! Implements the strategy vocabulary and the `proptest!` test-runner macro
//! that this workspace's property tests use: range strategies over the
//! numeric primitives, tuple strategies, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, `Just`, and `ProptestConfig::with_cases`.
//!
//! Unlike upstream there is no shrinking and no persisted failure corpus:
//! each test function runs `cases` iterations of its body against values
//! drawn from a deterministic per-test RNG (seeded from the test's name),
//! so failures reproduce bit-identically run over run.

#![forbid(unsafe_code)]

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream's default case count.
            ProptestConfig { cases: 256 }
        }
    }

    /// A small, fast, deterministic RNG (splitmix64) used to drive
    /// strategies. Seeded from the test name so every test draws an
    /// independent, reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from a label (typically the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then one splitmix64 avalanche.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in label.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng = TestRng { state: h };
            rng.next_u64();
            rng
        }

        /// Next uniformly random 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn u01(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
        }

        /// Uniform `u64` in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Modulo bias is irrelevant at property-test sample sizes.
            self.next_u64() % n
        }
    }
}

pub mod strategy;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections: `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface test files use (`use proptest::prelude::*;`).
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of upstream's `prelude::prop` module namespace.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs each contained `fn name(pat in strategy, ..) { body }` as a `#[test]`
/// executing `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (plain `assert!` semantics here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
///
/// Expands to `continue` on the case loop, so it may only appear at the
/// top level of a property body (which is how the workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_in_bounds(x in 0u32..10, y in -5i64..5, f in 0.25..0.75f64) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        fn vec_lengths_respected(
            v in prop::collection::vec(0u8..255, 3..7),
        ) {
            prop_assert!((3..7).contains(&v.len()));
        }

        fn tuple_and_map(pair in (0u32..4, 10u32..14).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..18).contains(&pair));
        }

        fn oneof_covers_variants(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    proptest! {
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..100, 5..6);
        let mut r1 = crate::test_runner::TestRng::deterministic("t");
        let mut r2 = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
