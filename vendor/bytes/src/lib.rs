//! Vendored subset of the `bytes` crate: a growable byte buffer
//! ([`BytesMut`]) and the [`BufMut`] write trait, implementing exactly the
//! surface this workspace uses (`new`, `with_capacity`, `put_slice`,
//! `put_u8`, slice views).

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A growable, contiguous buffer of bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Clears the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        Self { inner: v }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

/// Write-side trait for byte buffers.
pub trait BufMut {
    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"abc");
        b.put_u8(b'd');
        assert_eq!(&b[..], b"abcd");
        assert_eq!(b.len(), 4);
        let v: Vec<u8> = b.into_vec();
        assert_eq!(v, b"abcd");
    }
}
