//! Vendored subset of the `criterion` benchmark API.
//!
//! Implements the group/bencher surface the workspace's benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `criterion_group!`, `criterion_main!`) with real
//! wall-clock measurement: each benchmark warms up once, runs
//! `sample_size` timed iterations, and reports the mean and best
//! per-iteration time plus derived throughput. There is no statistical
//! regression machinery — `lsw-bench`'s `bench-json` binary is the
//! machine-readable perf record.

// A benchmark harness is the one place wall-clock reads are the point;
// exempt it from the workspace clock ban (clippy mirror of xtask L002).
#![allow(clippy::disallowed_methods)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Unit used to derive throughput numbers from iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.into_id(), &bencher.samples);
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.into_id(), &bencher.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let best = samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{id}  time: [mean {} | best {}]",
            self.name,
            fmt_duration(mean),
            fmt_duration(best)
        );
        if let Some(tp) = self.throughput {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: [{} elem/s]", fmt_rate(per_sec(n))));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  thrpt: [{} B/s]", fmt_rate(per_sec(n))));
                }
            }
        }
        println!("{line}");
    }
}

/// Times the benchmarked closure.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once for warmup, then `sample_size` timed iterations.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(f());
        self.samples.reserve(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed());
            std::hint::black_box(out);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.3}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.3}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.3}K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

/// Defines a function running a sequence of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }
}
