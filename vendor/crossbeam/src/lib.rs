//! Vendored subset of the `crossbeam` crate: scoped threads.
//!
//! Since Rust 1.63 the standard library ships structurally identical scoped
//! threads (`std::thread::scope`), so this vendor crate simply re-exports
//! them under the `crossbeam` names the workspace imports. Scoped spawns
//! may borrow from the enclosing stack frame and are all joined before
//! `scope` returns, which is exactly the worker-pool shape the parallel
//! generator uses.

#![forbid(unsafe_code)]

/// Scoped thread primitives (std-backed).
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

pub use thread::scope;

/// Utilities mirrored from `crossbeam-utils`.
pub mod utils {
    /// Cache-line-padded wrapper (semantic no-op stand-in: alignment hints
    /// only affect performance, never correctness).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct CachePadded<T>(pub T);

    impl<T> CachePadded<T> {
        /// Wraps a value.
        pub fn new(t: T) -> Self {
            CachePadded(t)
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let mut partial = vec![0u64; 2];
        super::scope(|s| {
            let (lo, hi) = partial.split_at_mut(1);
            let d = &data;
            s.spawn(move || lo[0] = d[..2].iter().sum());
            s.spawn(move || hi[0] = d[2..].iter().sum());
        });
        assert_eq!(partial, vec![3, 7]);
    }
}
