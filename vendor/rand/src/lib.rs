//! Vendored subset of the `rand` crate: the object-safe [`Rng`] core trait,
//! the [`RngExt`] convenience extension, and [`SeedableRng`].
//!
//! The workspace's only RNG engine is `rand_chacha::ChaCha8Rng`; this crate
//! supplies the trait vocabulary (`&mut dyn Rng` arguments, `seed_from_u64`
//! construction, `random::<f64>()` draws) without any platform entropy —
//! every generator in the workspace is explicitly seeded.

#![forbid(unsafe_code)]

/// The core random-number-generator trait (object safe).
///
/// Mirrors `rand_core::RngCore`: implementors provide uniformly random
/// `u32`/`u64` words and byte fills. All statistical machinery in the
/// workspace is built on `next_u64`.
pub trait Rng {
    /// Returns the next uniformly random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next uniformly random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u8 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Random for u16 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for usize {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / 16777216.0)
    }
}

/// Convenience extension methods on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanded to a full seed with
    /// splitmix64 (matching upstream rand's expansion strategy: each
    /// 4-byte chunk of the seed comes from a fresh splitmix64 output).
    fn seed_from_u64(mut state: u64) -> Self {
        fn splitmix64(z: &mut u64) -> u64 {
            *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = *z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let word = (splitmix64(&mut state) as u32).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl Rng for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            self.0
        }
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn dyn_object_safety() {
        let mut c = Counter(1);
        let r: &mut dyn Rng = &mut c;
        let _ = r.next_u64();
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
