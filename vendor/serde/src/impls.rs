//! `Serialize`/`Deserialize` impls for primitives and std containers.

use super::{Deserialize, Error, Serialize, Value};

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::msg(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::msg(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // JSON has no NaN/Inf; serde_json writes null. Deserialization
            // maps null back to NaN (infinities are not round-tripped —
            // none occur in the workspace's reports).
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(f64::from(*self))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg(format!("expected string, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| {
                    Error::msg(format!("expected tuple array, got {}", v.kind()))
                })?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected}, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
