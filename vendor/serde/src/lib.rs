//! Vendored subset of the `serde` API, implemented over an in-memory value
//! tree rather than upstream's visitor machinery.
//!
//! [`Serialize`] lowers a type to a [`Value`]; [`Deserialize`] raises a
//! [`Value`] back. `serde_json` (also vendored) renders and parses that
//! tree. The derive macros in `serde_derive` generate field-by-field
//! `to_value`/`from_value` impls matching serde's standard JSON data model:
//! structs as objects, newtypes as their inner value, enums externally
//! tagged (unit variants as strings).

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the serialization of non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Error raised when a [`Value`] does not match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Creates an error from any displayable message.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl Value {
    /// Looks up a field of an object, erroring when absent or non-object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(map) => map
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Short name of the value's variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `i64` when it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// The value as `f64` when numeric (or `null`, which maps to NaN —
    /// the inverse of the NaN-to-null serialization rule).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Non-panicking object-field / array-index access.
    pub fn get(&self, index: impl ValueIndex) -> Option<&Value> {
        index.get_in(self)
    }
}

/// Index argument for [`Value::get`] and `Value`'s `Index` impls.
pub trait ValueIndex {
    /// Looks `self` up inside `v`.
    fn get_in<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl ValueIndex for str {
    fn get_in<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Object(map) => map.iter().find(|(k, _)| k == self).map(|(_, x)| x),
            _ => None,
        }
    }
}

impl ValueIndex for &str {
    fn get_in<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        (**self).get_in(v)
    }
}

impl ValueIndex for String {
    fn get_in<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().get_in(v)
    }
}

impl ValueIndex for usize {
    fn get_in<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.get_in(self).unwrap_or(&NULL)
    }
}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lowers `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be raised from a [`Value`].
pub trait Deserialize: Sized {
    /// Raises a value tree back to `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

mod impls;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::U64(1), Value::U64(2)]),
        )]);
        assert_eq!(v["a"][1].as_u64(), Some(2));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn round_trip_primitives() {
        let x = 3.5f64;
        assert_eq!(f64::from_value(&x.to_value()).unwrap(), 3.5);
        let s = "hi".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
        let v = vec![(1u32, 2.0f64), (3, 4.0)];
        let back: Vec<(u32, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nan_through_null() {
        let x = f64::NAN;
        let v = x.to_value();
        assert_eq!(v, Value::Null);
        assert!(f64::from_value(&v).unwrap().is_nan());
    }
}
