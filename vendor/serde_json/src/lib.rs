//! Vendored subset of `serde_json`: render the vendored `serde` value tree
//! to JSON text and parse JSON text back.
//!
//! Behavioural contract with upstream where the workspace depends on it:
//!
//! * non-finite floats serialize as `null` (upstream's lossy float mode);
//! * floats print via Rust's shortest-round-trip formatting, so a
//!   serialize→parse cycle reproduces every finite `f64` bit-exactly
//!   (the `WorkloadConfig` round-trip test relies on this);
//! * `to_string_pretty` indents with two spaces.

#![forbid(unsafe_code)]

pub use serde::Value;

/// Serialization / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 is shortest-round-trip; ensure the token stays
    // a JSON number (Display never emits exponents, but integral floats
    // print without a fractional part, which JSON parses as an integer —
    // add `.0` so the value re-parses as a float).
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                            self.pos = end;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error(format!("invalid utf-8: {e}")))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::F64(1.5), Value::Null]),
            ),
            ("s".to_string(), Value::Str("x \"y\"\n".to_string())),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for &f in &[0.1f64, 1.0 / 3.0, 2.70417, 1e-12, 9_007_199_254_740_993.5] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn nan_becomes_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::Object(vec![("k".to_string(), Value::U64(1))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let v: Value = from_str(&s).unwrap();
        assert!(matches!(v, Value::F64(f) if f == 2.0));
    }

    #[test]
    fn unicode_round_trip() {
        let v = Value::Str("héllo ☃".to_string());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
