//! Parser robustness: the WMS log parser must never panic, whatever bytes
//! it is fed — including mutations of valid logs (truncations, bit flips,
//! field swaps) and arbitrary text.

use lsw_trace::event::LogEntryBuilder;
use lsw_trace::ids::ClientId;
use lsw_trace::wms;
use proptest::prelude::*;

fn valid_line() -> String {
    let e = LogEntryBuilder::new()
        .span(100, 50)
        .client(ClientId(7))
        .transfer_stats(500_000, 34_000, 0.01)
        .build();
    let mut buf = bytes::BytesMut::new();
    wms::format_entry(&e, &mut buf);
    String::from_utf8(buf.to_vec()).expect("ASCII")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_text_never_panics(input in ".*") {
        // Err is fine; panic is not.
        let _ = wms::parse_line(&input);
        let _ = wms::parse_log(&input);
    }

    #[test]
    fn truncations_never_panic(cut in 0usize..80) {
        let line = valid_line();
        let cut = cut.min(line.len());
        // Truncate at a char boundary (the line is ASCII).
        let _ = wms::parse_line(&line[..cut]);
    }

    #[test]
    fn field_corruption_never_panics(
        field in 0usize..14,
        garbage in "[ -~]{0,12}",
    ) {
        let line = valid_line();
        let mut fields: Vec<&str> = line.split_ascii_whitespace().collect();
        if field < fields.len() {
            fields[field] = &garbage;
        }
        let corrupted = fields.join(" ");
        let _ = wms::parse_line(&corrupted);
    }

    #[test]
    fn duplicate_and_reordered_fields_rejected_cleanly(
        swap_a in 0usize..14,
        swap_b in 0usize..14,
    ) {
        let line = valid_line();
        let mut fields: Vec<&str> = line.split_ascii_whitespace().collect();
        fields.swap(swap_a.min(13), swap_b.min(13));
        let reordered = fields.join(" ");
        // Either parses (swap of same-typed fields) or errors — never panics.
        let _ = wms::parse_line(&reordered);
    }

    #[test]
    fn streaming_parser_never_panics(input in ".*") {
        for item in wms::parse_lines(&input) {
            let _ = item; // Err per line is fine; panic is not.
        }
    }

    #[test]
    fn streaming_parser_recovers_past_noise(
        noise in "[ -~]{1,40}",
        at_line in 0usize..5,
    ) {
        // Unlike strict parse_log, the streaming iterator must keep going
        // after a bad line and number every line correctly.
        prop_assume!(!noise.trim().is_empty() && !noise.trim_start().starts_with('#'));
        prop_assume!(wms::parse_line(&noise).is_err());
        let valid = valid_line();
        let at = at_line.min(4);
        let mut lines: Vec<String> = (0..4).map(|_| valid.clone()).collect();
        lines.insert(at, noise.clone());
        let text = lines.join("\n");

        let mut ok = 0usize;
        let mut errs = Vec::new();
        for item in wms::parse_lines(&text) {
            match item {
                Ok((line_no, _)) => { prop_assert_ne!(line_no, at + 1); ok += 1; }
                Err(e) => errs.push(e.line),
            }
        }
        prop_assert_eq!(ok, 4);
        prop_assert_eq!(errs, vec![at + 1]);
    }

    #[test]
    fn line_chunks_match_whole_text(chunk_bytes in 1usize..200, n_lines in 1usize..12) {
        // Reassembling LineChunks must reproduce the text and keep line
        // numbering continuous at any chunk size.
        let valid = valid_line();
        let text = vec![valid; n_lines].join("\n");
        let mut rebuilt = Vec::new();
        let mut expect_line = 1usize;
        for chunk in wms::LineChunks::new(std::io::Cursor::new(text.as_bytes()), chunk_bytes) {
            let chunk = chunk.expect("in-memory read");
            prop_assert_eq!(chunk.first_line, expect_line);
            expect_line += chunk.bytes.iter().filter(|&&b| b == b'\n').count();
            rebuilt.extend_from_slice(&chunk.bytes);
        }
        prop_assert_eq!(rebuilt, text.as_bytes());
    }

    #[test]
    fn valid_logs_with_noise_lines_fail_with_line_numbers(
        noise in "[ -~]{1,40}",
        at_line in 0usize..5,
    ) {
        // A log with one garbage line: the parse error (if any) must carry
        // the right line number.
        prop_assume!(!noise.trim().is_empty() && !noise.trim_start().starts_with('#'));
        let valid = valid_line();
        let mut lines: Vec<String> = (0..4).map(|_| valid.clone()).collect();
        lines.insert(at_line.min(4), noise.clone());
        let text = lines.join("\n");
        match wms::parse_log(&text) {
            Ok(entries) => prop_assert_eq!(entries.len(), 5), // noise parsed as a line?!
            Err(e) => {
                prop_assert_eq!(e.line, at_line.min(4) + 1, "wrong line in {:?}", e);
            }
        }
    }
}
