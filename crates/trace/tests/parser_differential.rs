//! Differential tests: the zero-copy byte parser must accept exactly the
//! lines the legacy string parser accepts, producing identical entries and
//! flagging errors on identical line numbers.
//!
//! The legacy `split_ascii_whitespace` + `FromStr` implementation is kept
//! in `wms::legacy` purely as the oracle for these tests; the zero-copy
//! scanner is the only parser on any hot path. Error *messages* are not
//! compared — the scanner reports positional field names from a static
//! table while the oracle formats `FromStr` errors — but Ok/Err shape,
//! line numbers, and parsed entries must agree byte for byte.

use lsw_trace::event::{LogEntry, LogEntryBuilder};
use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use lsw_trace::wms;
use proptest::prelude::*;

/// Strategy producing a valid log entry spanning the full field ranges the
/// wire format can carry (not just paper-plausible values).
fn arb_entry() -> impl Strategy<Value = LogEntry> {
    (
        0u32..u32::MAX, // start
        0u32..u32::MAX, // duration
        0u32..u32::MAX, // client
        0u32..u32::MAX, // ip
        0u16..u16::MAX, // as
        0u16..1_000,    // object
        0u8..u8::MAX,   // camera
        0u64..u64::MAX, // bytes
        0u32..u32::MAX, // bandwidth
        0.0f32..1.0,    // loss
        0.0f32..1.0,    // cpu
        100u16..600,    // status
    )
        .prop_map(
            |(start, dur, client, ip, asn, obj, cam, bytes, bw, loss, cpu, status)| {
                // The wire format writes packet loss at 4 decimals and CPU
                // utilization at 3, so round-tripping requires values
                // already on those grids.
                let loss = format!("{loss:.4}").parse::<f32>().expect("quantized f32");
                let cpu = format!("{cpu:.3}").parse::<f32>().expect("quantized f32");
                LogEntryBuilder::new()
                    .span(start, dur)
                    .client(ClientId(client))
                    .origin(Ipv4Addr(ip), AsId(asn), CountryCode(*b"US"))
                    .object(ObjectId(obj), cam)
                    .transfer_stats(bytes, bw, loss)
                    .server(cpu, status)
                    .build()
            },
        )
}

/// Runs both parsers over `text` and asserts the Result streams match:
/// same length, Ok lines carry identical `(line, entry)` pairs, Err lines
/// carry identical line numbers.
fn assert_streams_agree(text: &str) {
    let fast: Vec<_> = wms::parse_lines_bytes(text.as_bytes()).collect();
    let slow: Vec<_> = wms::legacy::parse_lines_str(text).collect();
    assert_eq!(fast.len(), slow.len(), "stream lengths differ");
    for (f, s) in fast.iter().zip(&slow) {
        match (f, s) {
            (Ok(fe), Ok(se)) => assert_eq!(fe, se, "entries differ"),
            (Err(fe), Err(se)) => assert_eq!(fe.line, se.line, "error lines differ"),
            _ => panic!("classification differs: fast {f:?} vs legacy {s:?}"),
        }
    }
}

fn render(entries: &[LogEntry]) -> String {
    String::from_utf8(wms::format_log(entries).to_vec()).expect("log is ASCII")
}

/// Just the record lines (headers stripped) — mutation targets.
fn record_lines(entries: &[LogEntry]) -> Vec<String> {
    render(entries)
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: any formatted log parses identically through both
    /// implementations, entry for entry.
    #[test]
    fn valid_logs_agree(entries in prop::collection::vec(arb_entry(), 1..20)) {
        let text = render(&entries);
        let parsed: Vec<LogEntry> = wms::parse_lines_bytes(text.as_bytes())
            .map(|r| r.expect("formatted log must parse").1)
            .collect();
        prop_assert_eq!(&parsed, &entries);
        assert_streams_agree(&text);
    }

    /// §2.4 pathology: truncated lines (a partial flush or torn write).
    /// Both parsers must reject the fragment on the same line and keep
    /// identical streams for the surrounding intact lines.
    #[test]
    fn truncated_lines_agree(
        entries in prop::collection::vec(arb_entry(), 2..8),
        victim in 0usize..8,
        cut in 0usize..120,
    ) {
        let mut lines: Vec<String> = record_lines(&entries);
        let victim = victim % lines.len();
        let cut = cut.min(lines[victim].len());
        lines[victim].truncate(cut);
        assert_streams_agree(&lines.join("\n"));
    }

    /// §2.4 pathology: malformed c-ip fields (the paper's logs carry
    /// anonymized addresses; corruption shows up as short or non-numeric
    /// dotted quads). Both parsers must agree on every mutation.
    #[test]
    fn bad_c_ip_agrees(
        entries in prop::collection::vec(arb_entry(), 1..6),
        victim in 0usize..6,
        bad_ip in "[0-9.]{0,18}",
    ) {
        let mut lines: Vec<String> = record_lines(&entries);
        let victim = victim % lines.len();
        let mut fields: Vec<&str> = lines[victim].split_ascii_whitespace().collect();
        fields[4] = &bad_ip; // c-ip is field index 4
        lines[victim] = fields.join(" ");
        assert_streams_agree(&lines.join("\n"));
    }

    /// §2.4 pathology: 1-second timestamp ties. The logs timestamp at
    /// whole-second resolution, so bursts of arrivals share a timestamp;
    /// tied lines must parse independently and identically.
    #[test]
    fn timestamp_ties_agree(
        base in arb_entry(),
        tie_at in 0u32..u32::MAX,
        n_ties in 2usize..12,
    ) {
        let entries: Vec<LogEntry> = (0..n_ties)
            .map(|i| {
                let mut e = base;
                e.timestamp = tie_at;
                e.start = tie_at;
                e.client = ClientId(i as u32); // distinct clients, same second
                e
            })
            .collect();
        let text = render(&entries);
        let parsed: Vec<LogEntry> = wms::parse_lines_bytes(text.as_bytes())
            .map(|r| r.expect("tied lines must parse").1)
            .collect();
        prop_assert_eq!(&parsed, &entries);
        assert_streams_agree(&text);
    }

    /// Arbitrary field corruption anywhere in the record: agreement must
    /// hold whatever garbage lands in whatever column.
    #[test]
    fn field_corruption_agrees(
        entries in prop::collection::vec(arb_entry(), 1..6),
        victim in 0usize..6,
        field in 0usize..14,
        garbage in "[ -~]{0,12}",
    ) {
        let mut lines: Vec<String> = record_lines(&entries);
        let victim = victim % lines.len();
        let mut fields: Vec<&str> = lines[victim].split_ascii_whitespace().collect();
        fields[field] = &garbage;
        lines[victim] = fields.join(" ");
        assert_streams_agree(&lines.join("\n"));
    }

    /// Comments and blank lines interleaved with records: both parsers
    /// must skip them while keeping line numbers aligned.
    #[test]
    fn comments_and_blanks_agree(
        entries in prop::collection::vec(arb_entry(), 1..8),
        noise_every in 1usize..4,
    ) {
        let mut out = String::from("# Software: differential fixture\n");
        for (i, line) in render(&entries).lines().enumerate() {
            if i % noise_every == 0 {
                out.push_str("\n#comment\n");
            }
            out.push_str(line);
            out.push('\n');
        }
        assert_streams_agree(&out);
    }

    /// Totally arbitrary printable text: the parsers may reject everything,
    /// but they must reject the *same* lines.
    #[test]
    fn arbitrary_text_agrees(text in "[ -~\n\t]{0,400}") {
        assert_streams_agree(&text);
    }
}
