//! Property-based tests for the trace substrate: sessionizer invariants,
//! WMS wire-format round trips, sweep-line conservation laws.

use lsw_trace::concurrency::ConcurrencyProfile;
use lsw_trace::event::{LogEntry, LogEntryBuilder};
use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use lsw_trace::ltc;
use lsw_trace::schedule::Schedule;
use lsw_trace::session::{transfer_counts_per_client, SessionConfig, Sessions};
use lsw_trace::trace::Trace;
use lsw_trace::wms;
use proptest::prelude::*;

/// Strategy producing a random but valid log entry within a 1-day horizon.
fn arb_entry() -> impl Strategy<Value = LogEntry> {
    (
        0u32..80_000, // start
        0u32..5_000,  // duration
        0u32..50,     // client
        0u32..1_000,  // ip
        0u16..30,     // as
        0u16..2,      // object
        0u8..48,      // camera
        0u64..10_000_000,
        0u32..1_000_000,
        0.0f32..1.0,
        0.0f32..1.0,
    )
        .prop_map(
            |(start, dur, client, ip, asn, obj, cam, bytes, bw, loss, cpu)| {
                LogEntryBuilder::new()
                    .span(start, dur)
                    .client(ClientId(client))
                    .origin(Ipv4Addr(ip), AsId(asn), CountryCode(*b"BR"))
                    .object(ObjectId(obj), cam)
                    .transfer_stats(bytes, bw, loss)
                    .server(cpu, 200)
                    .build()
            },
        )
}

/// Like [`arb_entry`], but roughly half the entries carry one of the
/// §2.4 defects (failed status, malformed stats, horizon violations,
/// inconsistent timestamps). The `ltc` container must preserve these
/// verbatim — sanitization is the reader's job, not the format's.
fn arb_any_entry() -> impl Strategy<Value = LogEntry> {
    (arb_entry(), 0u8..8).prop_map(|(mut e, tweak)| {
        match tweak {
            0 => e.status = 404,
            1 => e.status = 503,
            2 => e.packet_loss = 1.5,
            3 => e.cpu_util = -0.25,
            4 => e.start = e.start.saturating_add(200_000),
            5 => e.timestamp = e.timestamp.wrapping_add(977),
            6 => e.duration = 300_000,
            _ => {}
        }
        e
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ltc_round_trip_exact(entries in prop::collection::vec(arb_any_entry(), 0..300)) {
        let image = ltc::encode(&entries).unwrap();
        let (decoded, stats) = ltc::BlockReader::open(ltc::SliceSource::new(&image))
            .unwrap()
            .read_all()
            .unwrap();
        prop_assert_eq!(stats.corrupt_blocks, 0);
        // Bit-identical, floats included: ltc columns store raw f32 bits,
        // so unlike the text round trip no tolerance is needed.
        prop_assert_eq!(decoded, entries);
    }

    #[test]
    fn ltc_trace_round_trip(entries in prop::collection::vec(arb_any_entry(), 0..200)) {
        let trace = Trace::from_entries(entries, 400_000);
        let image = ltc::encode(trace.entries()).unwrap();
        let mut src = ltc::SliceSource::new(&image);
        let index = ltc::read_index(&mut src).unwrap();
        // Trace order is nondecreasing (start, timestamp): the writer must
        // notice and set the sorted flag that enables direct ingest.
        prop_assert!(index.sorted);
        let (decoded, _) = ltc::BlockReader::open(src).unwrap().read_all().unwrap();
        let round = Trace::from_entries(decoded, 400_000);
        prop_assert_eq!(round.entries(), trace.entries());
    }

    #[test]
    fn wms_round_trip(entries in prop::collection::vec(arb_entry(), 0..50)) {
        let text = wms::format_log(&entries);
        let parsed = wms::parse_log(std::str::from_utf8(&text).unwrap()).unwrap();
        // Float fields are printed with finite precision; compare them with
        // tolerance and everything else exactly.
        prop_assert_eq!(parsed.len(), entries.len());
        for (p, e) in parsed.iter().zip(&entries) {
            prop_assert_eq!(p.timestamp, e.timestamp);
            prop_assert_eq!(p.start, e.start);
            prop_assert_eq!(p.duration, e.duration);
            prop_assert_eq!(p.client, e.client);
            prop_assert_eq!(p.ip, e.ip);
            prop_assert_eq!(p.as_id, e.as_id);
            prop_assert_eq!(p.object, e.object);
            prop_assert_eq!(p.camera, e.camera);
            prop_assert_eq!(p.bytes, e.bytes);
            prop_assert_eq!(p.avg_bandwidth, e.avg_bandwidth);
            prop_assert!((p.packet_loss - e.packet_loss).abs() < 1e-4);
            prop_assert!((p.cpu_util - e.cpu_util).abs() < 1e-3);
            prop_assert_eq!(p.status, e.status);
        }
    }

    #[test]
    fn sessions_partition_transfers(
        entries in prop::collection::vec(arb_entry(), 1..120),
        timeout in 0.0..10_000.0f64,
    ) {
        let n = entries.len();
        let trace = Trace::from_entries(entries, 100_000);
        let s = Sessions::identify(&trace, SessionConfig { timeout });
        // Every transfer belongs to exactly one session.
        let total: u64 = s.transfers_per_session().iter().sum();
        prop_assert_eq!(total as usize, n);
        prop_assert_eq!(s.entry_order().len(), n);
        let mut seen = vec![false; n];
        for &i in s.entry_order() {
            prop_assert!(!seen[i as usize], "transfer in two sessions");
            seen[i as usize] = true;
        }
    }

    #[test]
    fn sessions_respect_bounds(
        entries in prop::collection::vec(arb_entry(), 1..120),
        timeout in 0.0..10_000.0f64,
    ) {
        let trace = Trace::from_entries(entries, 100_000);
        let s = Sessions::identify(&trace, SessionConfig { timeout });
        for sess in s.all() {
            prop_assert!(sess.start <= sess.end);
            prop_assert!(sess.transfers >= 1);
            // Each session's transfers lie within [start, end] and gaps
            // never exceed the timeout.
            let es = s.entries_of(sess, &trace);
            let mut running_end = es[0].stop();
            prop_assert_eq!(es[0].start, sess.start);
            for e in &es {
                prop_assert!(e.start >= sess.start && e.stop() <= sess.end);
            }
            for e in es.iter().skip(1) {
                prop_assert!(e.start as f64 - running_end as f64 <= timeout,
                    "intra-session gap exceeds timeout");
                running_end = running_end.max(e.stop());
            }
            prop_assert_eq!(running_end, sess.end);
        }
    }

    #[test]
    fn session_count_monotone_in_timeout(
        entries in prop::collection::vec(arb_entry(), 1..100),
    ) {
        let trace = Trace::from_entries(entries, 100_000);
        let mut prev = usize::MAX;
        for timeout in [0.0, 100.0, 500.0, 1_500.0, 5_000.0, 50_000.0] {
            let n = Sessions::identify(&trace, SessionConfig { timeout }).len();
            prop_assert!(n <= prev, "session count increased with To");
            prev = n;
        }
    }

    #[test]
    fn off_times_exceed_timeout(
        entries in prop::collection::vec(arb_entry(), 1..120),
        timeout in 0.0..5_000.0f64,
    ) {
        let trace = Trace::from_entries(entries, 100_000);
        let s = Sessions::identify(&trace, SessionConfig { timeout });
        // By construction a session OFF time is a silence longer than To.
        for off in s.off_times() {
            prop_assert!(off > timeout, "off time {off} <= timeout {timeout}");
        }
    }

    #[test]
    fn concurrency_integral_equals_active_seconds(
        entries in prop::collection::vec(arb_entry(), 0..80),
    ) {
        let horizon = 100_000u32;
        let p = ConcurrencyProfile::transfers(&entries, horizon);
        let integral: u64 = p.per_second().iter().map(|&c| u64::from(c)).sum();
        // Each transfer contributes (duration + 1) active seconds (it is
        // active during its stop second too), clipped to the horizon.
        let expected: u64 = entries
            .iter()
            .map(|e| {
                let start = e.start.min(horizon) as u64;
                let end = (e.stop() as u64 + 1).min(horizon as u64);
                end.saturating_sub(start)
            })
            .sum();
        prop_assert_eq!(integral, expected);
    }

    #[test]
    fn schedule_extraction_format_invariant(
        entries in prop::collection::vec(arb_any_entry(), 0..250),
    ) {
        // The replay schedule must not depend on which container the
        // trace arrived in: text parse + classify and ltc column decode +
        // classify are different code paths over the same rules, and the
        // kept set is all-integer, so equality is exact.
        let text = wms::format_log(&entries);
        let from_wms = Schedule::from_wms_bytes(&text);
        let image = ltc::encode(&entries).unwrap();
        let from_ltc = Schedule::from_ltc(ltc::SliceSource::new(&image)).unwrap();
        prop_assert_eq!(&from_wms.transfers, &from_ltc.transfers);
        prop_assert_eq!(from_wms.stats.examined, from_ltc.stats.examined);
        prop_assert_eq!(from_wms.stats.rejected, from_ltc.stats.rejected);
        prop_assert_eq!(from_wms.stats.malformed, 0);
        prop_assert_eq!(from_ltc.stats.corrupt_blocks, 0);
        // Every kept transfer is replayable: start-ordered and successful.
        prop_assert!(from_wms
            .transfers
            .windows(2)
            .all(|w| w[0].start <= w[1].start));
        for t in &from_wms.transfers {
            prop_assert!((200..300).contains(&t.status));
            prop_assert_eq!(u64::from(t.stop()), u64::from(t.start) + u64::from(t.duration));
        }
    }

    #[test]
    fn summary_counts_bounded(entries in prop::collection::vec(arb_entry(), 0..100)) {
        let n = entries.len();
        let trace = Trace::from_entries(entries, 100_000);
        let s = trace.summary();
        prop_assert_eq!(s.transfers, n);
        prop_assert!(s.users <= n.max(1));
        prop_assert!(s.client_ips <= n.max(1));
        prop_assert!(s.client_ases <= s.client_ips.max(1));
        let per_client: u64 = transfer_counts_per_client(&trace).iter().sum();
        prop_assert_eq!(per_client as usize, n);
    }
}
