//! Textual wire format for log entries, W3C-extended-log style.
//!
//! Real Windows Media Server 4.1 logs are space-separated text with a
//! `#Fields:` header (§2.3 / \[13\] in the paper). We emit an equivalent
//! schema so traces can be written to disk, inspected with standard Unix
//! tooling, and parsed back without loss:
//!
//! ```text
//! #Software: lsw-sim
//! #Version: 1.0
//! #Fields: x-timestamp c-start x-duration c-playerid c-ip c-as c-country cs-uri-stem x-camera sc-bytes x-avg-bandwidth c-pkts-lost-rate s-cpu-util sc-status
//! 150 100 50 7 200.17.34.5 42 BR /live/feed1.asf 12 500000 34000 0.0100 0.050 200
//! ```
//!
//! The encoder writes into a [`bytes::BytesMut`] so large traces serialize
//! without intermediate `String` churn.
//!
//! # Zero-copy parsing
//!
//! The hot ingest path parses **directly from `&[u8]`** with a hand-rolled
//! field scanner ([`parse_line_bytes`]): no intermediate `String`, no
//! `split_ascii_whitespace` iterator machinery, and no formatting on the
//! non-error path. [`LineChunks`] likewise yields raw byte chunks — the
//! streaming reader never materializes a chunk twice. The original
//! string-based parser is retained as [`legacy::parse_line_str`] purely as
//! a differential-testing oracle (see `trace/tests/parser_differential.rs`).

use crate::event::LogEntry;
use crate::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use bytes::{BufMut, BytesMut};

/// The `#Fields:` header emitted (and required) by this format.
pub const FIELDS_HEADER: &str = "#Fields: x-timestamp c-start x-duration c-playerid c-ip \
     c-as c-country cs-uri-stem x-camera sc-bytes x-avg-bandwidth c-pkts-lost-rate \
     s-cpu-util sc-status";

/// Error from parsing a WMS-style log line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number when known (0 when parsing a bare line).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WMS log parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Serializes one entry as a log line (no trailing newline).
pub fn format_entry(e: &LogEntry, out: &mut BytesMut) {
    use std::fmt::Write as _;
    // itoa-style manual formatting is overkill here; fmt::Write into a
    // reused stack string keeps allocations at zero per line.
    let mut line = String::with_capacity(96);
    let written = write!(
        line,
        "{} {} {} {} {} {} {} {} {} {} {} {:.4} {:.3} {}",
        e.timestamp,
        e.start,
        e.duration,
        e.client.0,
        e.ip,
        e.as_id.0,
        e.country,
        e.object.uri(),
        e.camera,
        e.bytes,
        e.avg_bandwidth,
        e.packet_loss,
        e.cpu_util,
        e.status
    );
    debug_assert!(written.is_ok(), "fmt::Write to String cannot fail");
    out.put_slice(line.as_bytes());
}

/// Serializes a whole trace body with headers.
pub fn format_log(entries: &[LogEntry]) -> BytesMut {
    let mut out = BytesMut::with_capacity(entries.len() * 96 + 256);
    out.put_slice(b"#Software: lsw-sim\n#Version: 1.0\n");
    out.put_slice(FIELDS_HEADER.as_bytes());
    out.put_u8(b'\n');
    for e in entries {
        format_entry(e, &mut out);
        out.put_u8(b'\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Zero-copy field scanner
// ---------------------------------------------------------------------------

/// Cursor over one log line's bytes, splitting on ASCII-whitespace runs.
///
/// Equivalent to `split_ascii_whitespace` but monomorphic, allocation-free
/// and without iterator adaptor overhead. The typed `next_*` methods fuse
/// field splitting with value parsing — one traversal per field instead of
/// a boundary scan followed by a digit scan — while accepting exactly the
/// same grammar as splitting first and parsing second (the error path
/// rescans the field, but only the error path).
struct FieldScanner<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Exact powers of ten up to `10^7`, all exactly representable in `f32`
/// (they stay below `2^24`), for the fast decimal-to-float path.
const POW10_F32: [f32; 8] = [1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7];

impl<'a> FieldScanner<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// The next whitespace-delimited field, or `None` at end of line.
    fn next_field(&mut self) -> Option<&'a [u8]> {
        while self.pos < self.buf.len() && self.buf[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= self.buf.len() {
            return None;
        }
        let start = self.pos;
        while self.pos < self.buf.len() && !self.buf[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        Some(&self.buf[start..self.pos])
    }

    /// Skips whitespace to the next field, or errors as a missing field.
    #[inline]
    fn begin_field(&mut self, i: usize) -> Result<usize, ParseError> {
        while self.pos < self.buf.len() && self.buf[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= self.buf.len() {
            return Err(field_error(i, None));
        }
        Ok(self.pos)
    }

    /// True at a field boundary (whitespace or end of line).
    #[inline]
    fn at_field_end(&self) -> bool {
        self.pos >= self.buf.len() || self.buf[self.pos].is_ascii_whitespace()
    }

    /// Consumes the rest of the current field and builds its error —
    /// cold path only, so the rescan never taxes well-formed lines.
    #[cold]
    fn bad_field(&mut self, i: usize, start: usize) -> ParseError {
        while self.pos < self.buf.len() && !self.buf[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        field_error(i, Some(&self.buf[start..self.pos]))
    }

    /// Parses the next field as unsigned decimal (`str::parse::<u64>`
    /// grammar: optional `+`, one or more digits, overflow rejected).
    #[inline]
    fn next_u64(&mut self, i: usize) -> Result<u64, ParseError> {
        let start = self.begin_field(i)?;
        if self.buf[self.pos] == b'+' {
            self.pos += 1;
        }
        let mut acc: u64 = 0;
        let mut any = false;
        while self.pos < self.buf.len() {
            let d = self.buf[self.pos].wrapping_sub(b'0');
            if d > 9 {
                break;
            }
            any = true;
            match acc
                .checked_mul(10)
                .and_then(|a| a.checked_add(u64::from(d)))
            {
                Some(a) => acc = a,
                None => return Err(self.bad_field(i, start)),
            }
            self.pos += 1;
        }
        if !any || !self.at_field_end() {
            return Err(self.bad_field(i, start));
        }
        Ok(acc)
    }

    /// [`next_u64`](Self::next_u64) narrowed to `u32`.
    #[inline]
    fn next_u32(&mut self, i: usize) -> Result<u32, ParseError> {
        let start = self.pos;
        match u32::try_from(self.next_u64(i)?) {
            Ok(v) => Ok(v),
            Err(_) => {
                // Field already consumed; rewind so the error names it.
                self.pos = start;
                let at = self.begin_field(i)?;
                Err(self.bad_field(i, at))
            }
        }
    }

    /// [`next_u64`](Self::next_u64) narrowed to `u16`.
    #[inline]
    fn next_u16(&mut self, i: usize) -> Result<u16, ParseError> {
        let start = self.pos;
        match u16::try_from(self.next_u64(i)?) {
            Ok(v) => Ok(v),
            Err(_) => {
                self.pos = start;
                let at = self.begin_field(i)?;
                Err(self.bad_field(i, at))
            }
        }
    }

    /// [`next_u64`](Self::next_u64) narrowed to `u8`.
    #[inline]
    fn next_u8(&mut self, i: usize) -> Result<u8, ParseError> {
        let start = self.pos;
        match u8::try_from(self.next_u64(i)?) {
            Ok(v) => Ok(v),
            Err(_) => {
                self.pos = start;
                let at = self.begin_field(i)?;
                Err(self.bad_field(i, at))
            }
        }
    }

    /// Parses the next field as a dotted-quad IPv4 address: four octets
    /// (each with the unsigned-decimal grammar, value <= 255) joined by
    /// single dots, nothing trailing.
    #[inline]
    fn next_ipv4(&mut self, i: usize) -> Result<Ipv4Addr, ParseError> {
        let start = self.begin_field(i)?;
        let mut octets = [0u8; 4];
        for (k, o) in octets.iter_mut().enumerate() {
            if k > 0 {
                if self.pos >= self.buf.len() || self.buf[self.pos] != b'.' {
                    return Err(self.bad_field(i, start));
                }
                self.pos += 1;
            }
            if self.pos < self.buf.len() && self.buf[self.pos] == b'+' {
                self.pos += 1;
            }
            let mut acc: u32 = 0;
            let mut any = false;
            while self.pos < self.buf.len() {
                let d = self.buf[self.pos].wrapping_sub(b'0');
                if d > 9 {
                    break;
                }
                any = true;
                // Saturate instead of overflowing: any value past 255 is
                // equally invalid, however many digits follow.
                acc = (acc * 10 + u32::from(d)).min(1000);
                self.pos += 1;
            }
            if !any || acc > 255 {
                return Err(self.bad_field(i, start));
            }
            // lsw::allow(L011): acc <= 255 is checked on the line above
            *o = acc as u8;
        }
        if !self.at_field_end() {
            return Err(self.bad_field(i, start));
        }
        Ok(Ipv4Addr::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }

    /// Parses the next field as `f32`.
    ///
    /// Fields matching `\d*\.?\d*` with 1..=7 digits take the exact fast
    /// path: a `< 2^24` integer mantissa divided by an exact power of ten
    /// is one correctly-rounded IEEE operation, bit-identical to the
    /// standard library's correctly-rounded decimal conversion. Everything
    /// else (signs, exponents, inf/NaN, long mantissas) falls back to
    /// `str::parse::<f32>` on the whole field.
    #[inline]
    fn next_f32(&mut self, i: usize) -> Result<f32, ParseError> {
        let start = self.begin_field(i)?;
        let mut mant: u32 = 0;
        let mut digits = 0u32;
        let mut frac = 0usize;
        let mut seen_dot = false;
        let mut fast = true;
        let mut p = self.pos;
        while p < self.buf.len() {
            let b = self.buf[p];
            let d = b.wrapping_sub(b'0');
            if d <= 9 {
                digits += 1;
                if digits > 7 {
                    fast = false;
                    break;
                }
                mant = mant * 10 + u32::from(d);
                frac += usize::from(seen_dot);
            } else if b == b'.' && !seen_dot {
                seen_dot = true;
            } else if b.is_ascii_whitespace() {
                break;
            } else {
                fast = false;
                break;
            }
            p += 1;
        }
        if fast && digits > 0 {
            self.pos = p;
            // lsw::allow(L011): digits <= 7 so mant < 10^7 < 2^24 is exact in f32
            return Ok(mant as f32 / POW10_F32[frac]);
        }
        // Fallback: delegate the full float grammar to the standard
        // library on the borrowed field slice.
        self.pos = start;
        let Some(field) = self.next_field() else {
            return Err(field_error(i, None));
        };
        match std::str::from_utf8(field).ok().and_then(|s| s.parse().ok()) {
            Some(v) => Ok(v),
            None => Err(field_error(i, Some(field))),
        }
    }
}

/// Parses an unsigned decimal integer with the same acceptance rules as
/// `str::parse::<uN>`: optional leading `+`, at least one ASCII digit,
/// overflow rejected. Returns `None` on any violation.
#[inline]
fn parse_u64_ascii(field: &[u8]) -> Option<u64> {
    let digits = match field.first() {
        Some(b'+') => &field[1..],
        _ => field,
    };
    if digits.is_empty() {
        return None;
    }
    let mut acc: u64 = 0;
    for &b in digits {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_add(u64::from(d))?;
    }
    Some(acc)
}

/// Range-checked downcast helper for the narrower log fields.
#[inline]
fn parse_u16_ascii(field: &[u8]) -> Option<u16> {
    parse_u64_ascii(field).and_then(|v| u16::try_from(v).ok())
}

/// Extracts the object id from a `/live/feedN.asf` URI stem (byte form).
#[inline]
fn parse_uri_bytes(uri: &[u8]) -> Option<ObjectId> {
    let rest = uri.strip_prefix(b"/live/feed")?;
    let digits = rest.strip_suffix(b".asf")?;
    parse_u16_ascii(digits).map(ObjectId)
}

/// Parses a two-letter uppercase country code from raw bytes.
#[inline]
fn parse_country_ascii(field: &[u8]) -> Option<CountryCode> {
    match field {
        [a, b] if a.is_ascii_uppercase() && b.is_ascii_uppercase() => Some(CountryCode([*a, *b])),
        _ => None,
    }
}

/// Names of the 14 fields, indexed by position — used only on the error
/// path so the hot loop never touches them.
const FIELD_NAMES: [&str; 14] = [
    "x-timestamp",
    "c-start",
    "x-duration",
    "c-playerid",
    "c-ip",
    "c-as",
    "c-country",
    "cs-uri-stem",
    "x-camera",
    "sc-bytes",
    "x-avg-bandwidth",
    "c-pkts-lost-rate",
    "s-cpu-util",
    "sc-status",
];

/// Builds the error for field index `i` — cold path only.
#[cold]
fn field_error(i: usize, field: Option<&[u8]>) -> ParseError {
    let name = FIELD_NAMES.get(i).copied().unwrap_or("?");
    let message = match field {
        None => format!("missing field {name}"),
        // lsw::allow(L006): #[cold] error constructor, off the per-record path
        Some(f) => format!("bad {name} {:?}", String::from_utf8_lossy(f)),
    };
    ParseError { line: 0, message }
}

#[cold]
fn trailing_error() -> ParseError {
    ParseError {
        line: 0,
        message: "trailing fields".into(),
    }
}

/// Parses one (non-comment) log line directly from bytes.
///
/// This is the hot-path parser: a hand-rolled field scanner over `&[u8]`
/// with zero allocations and zero formatting on the success path. Accepts
/// exactly the same lines as the legacy string parser
/// ([`legacy::parse_line_str`]); the two are differentially tested.
pub fn parse_line_bytes(line: &[u8]) -> Result<LogEntry, ParseError> {
    let mut sc = FieldScanner::new(line);
    // Monomorphic scan, one traversal per field: the typed scanner methods
    // parse while they split, and the short free-form fields (country,
    // URI stem) split first and parse second; any failure routes through
    // the cold error constructor with the field's positional name.
    macro_rules! field {
        ($i:literal, $parse:expr) => {{
            let f = sc.next_field();
            match f.and_then($parse) {
                Some(v) => v,
                None => return Err(field_error($i, f)),
            }
        }};
    }
    let timestamp = sc.next_u32(0)?;
    let start = sc.next_u32(1)?;
    let duration = sc.next_u32(2)?;
    let client = ClientId(sc.next_u32(3)?);
    let ip = sc.next_ipv4(4)?;
    let as_id = AsId(sc.next_u16(5)?);
    let country = field!(6, parse_country_ascii);
    let object = field!(7, parse_uri_bytes);
    let camera = sc.next_u8(8)?;
    let bytes = sc.next_u64(9)?;
    let avg_bandwidth = sc.next_u32(10)?;
    let packet_loss = sc.next_f32(11)?;
    let cpu_util = sc.next_f32(12)?;
    let status = sc.next_u16(13)?;
    if sc.next_field().is_some() {
        return Err(trailing_error());
    }
    Ok(LogEntry {
        timestamp,
        start,
        duration,
        client,
        ip,
        as_id,
        country,
        object,
        camera,
        bytes,
        avg_bandwidth,
        packet_loss,
        cpu_util,
        status,
    })
}

/// Parses one (non-comment) log line.
///
/// Thin wrapper over the zero-copy byte parser ([`parse_line_bytes`]).
pub fn parse_line(line: &str) -> Result<LogEntry, ParseError> {
    parse_line_bytes(line.as_bytes())
}

/// The original string-based parser, retained as a differential-testing
/// oracle for the zero-copy scanner. Not used on any hot path.
pub mod legacy {
    use super::{ParseError, ParsedLines};
    use crate::event::LogEntry;
    use crate::ids::{AsId, ClientId, CountryCode, Ipv4Addr};
    use std::str::FromStr;

    /// Parses one log line through `split_ascii_whitespace` + `FromStr`,
    /// exactly as the pre-zero-copy implementation did.
    pub fn parse_line_str(line: &str) -> Result<LogEntry, ParseError> {
        let err = |msg: String| ParseError {
            line: 0,
            message: msg,
        };
        let mut it = line.split_ascii_whitespace();
        let mut next = |name: &str| {
            it.next()
                .ok_or_else(|| err(format!("missing field {name}")))
        };

        fn num<T: FromStr>(s: &str, name: &str) -> Result<T, ParseError>
        where
            T::Err: std::fmt::Display,
        {
            s.parse::<T>().map_err(|e| ParseError {
                line: 0,
                message: format!("bad {name} {s:?}: {e}"),
            })
        }

        let timestamp: u32 = num(next("x-timestamp")?, "x-timestamp")?;
        let start: u32 = num(next("c-start")?, "c-start")?;
        let duration: u32 = num(next("x-duration")?, "x-duration")?;
        let client = ClientId(num(next("c-playerid")?, "c-playerid")?);
        let ip = Ipv4Addr::from_str(next("c-ip")?).map_err(|e| err(format!("bad c-ip: {e}")))?;
        let as_id = AsId(num(next("c-as")?, "c-as")?);
        let country =
            CountryCode::new(next("c-country")?).map_err(|e| err(format!("bad c-country: {e}")))?;
        let uri = next("cs-uri-stem")?;
        let object =
            super::parse_uri(uri).ok_or_else(|| err(format!("bad cs-uri-stem {uri:?}")))?;
        let camera: u8 = num(next("x-camera")?, "x-camera")?;
        let bytes: u64 = num(next("sc-bytes")?, "sc-bytes")?;
        let avg_bandwidth: u32 = num(next("x-avg-bandwidth")?, "x-avg-bandwidth")?;
        let packet_loss: f32 = num(next("c-pkts-lost-rate")?, "c-pkts-lost-rate")?;
        let cpu_util: f32 = num(next("s-cpu-util")?, "s-cpu-util")?;
        let status: u16 = num(next("sc-status")?, "sc-status")?;
        if it.next().is_some() {
            return Err(err("trailing fields".into()));
        }
        Ok(LogEntry {
            timestamp,
            start,
            duration,
            client,
            ip,
            as_id,
            country,
            object,
            camera,
            bytes,
            avg_bandwidth,
            packet_loss,
            cpu_util,
            status,
        })
    }

    /// Streams `text` line by line through the legacy parser — the
    /// differential counterpart of [`super::parse_lines_bytes`].
    pub fn parse_lines_str(text: &str) -> ParsedLines<'_> {
        ParsedLines::legacy(text)
    }
}

/// Extracts the object id from a `/live/feedN.asf` URI stem.
fn parse_uri(uri: &str) -> Option<ObjectId> {
    parse_uri_bytes(uri.as_bytes())
}

/// Streaming line parser: yields one `Result` per non-comment line.
///
/// Unlike [`parse_log`] this iterator *recovers* from malformed lines:
/// an `Err` item carries the 1-based line number and the iterator keeps
/// going, so callers can skip-and-count bad lines instead of aborting.
/// Comment (`#`) and blank lines are silently skipped (they still advance
/// the line numbering).
#[derive(Debug, Clone)]
pub struct ParsedLines<'a> {
    inner: std::str::Lines<'a>,
    /// 1-based number of the *next* line `inner` will yield.
    next_line: usize,
    /// Route through the legacy string parser (differential oracle).
    use_legacy: bool,
}

impl<'a> ParsedLines<'a> {
    fn legacy(text: &'a str) -> Self {
        Self {
            inner: text.lines(),
            next_line: 1,
            use_legacy: true,
        }
    }
}

impl Iterator for ParsedLines<'_> {
    /// The line number and entry on success, a numbered error otherwise.
    type Item = Result<(usize, LogEntry), ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        for raw in self.inner.by_ref() {
            let line_no = self.next_line;
            self.next_line += 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed = if self.use_legacy {
                legacy::parse_line_str(line)
            } else {
                parse_line(line)
            };
            return Some(match parsed {
                Ok(e) => Ok((line_no, e)),
                Err(mut e) => {
                    e.line = line_no;
                    Err(e)
                }
            });
        }
        None
    }
}

/// Streams `text` line by line with per-line error recovery.
pub fn parse_lines(text: &str) -> ParsedLines<'_> {
    parse_lines_from(text, 1)
}

/// Like [`parse_lines`] but numbering lines from `first_line` — for
/// callers feeding chunks of a larger stream (see [`LineChunks`]).
pub fn parse_lines_from(text: &str, first_line: usize) -> ParsedLines<'_> {
    ParsedLines {
        inner: text.lines(),
        next_line: first_line.max(1),
        use_legacy: false,
    }
}

/// Iterator over the lines of a byte buffer.
///
/// Splits on `\n` and strips one trailing `\r` per line, mirroring
/// `str::lines` — so byte-path and string-path line numbering always
/// agree. Zero-copy: each item borrows from the input buffer.
#[derive(Debug, Clone)]
pub struct ByteLines<'a> {
    rest: &'a [u8],
}

/// Splits `bytes` into lines (`\n`-terminated, trailing `\r` stripped).
pub fn byte_lines(bytes: &[u8]) -> ByteLines<'_> {
    ByteLines { rest: bytes }
}

/// Position of the first `\n` in `hay`, scanning a word at a time
/// (SWAR zero-byte trick on `hay ^ \n`); the byte loop only runs on the
/// sub-word tail.
#[inline]
fn find_newline(hay: &[u8]) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    const NL: u64 = 0x0A0A_0A0A_0A0A_0A0A;
    let mut i = 0;
    while i + 8 <= hay.len() {
        // lsw::allow(L005): an 8-byte slice always converts to [u8; 8]
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte slice")) ^ NL;
        let hit = w.wrapping_sub(LO) & !w & HI;
        if hit != 0 {
            return Some(i + (hit.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == b'\n').map(|p| i + p)
}

impl<'a> Iterator for ByteLines<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        // `str::lines` semantics: split on `\n`, strip a `\r` only when it
        // immediately precedes the `\n`; a final unterminated line keeps
        // any trailing `\r`.
        match find_newline(self.rest) {
            Some(pos) => {
                let mut line = &self.rest[..pos];
                self.rest = &self.rest[pos + 1..];
                if let Some((b'\r', head)) = line.split_last() {
                    line = head;
                }
                Some(line)
            }
            None => Some(std::mem::take(&mut self.rest)),
        }
    }
}

/// Streaming byte-line parser: the zero-copy counterpart of
/// [`ParsedLines`], yielding one `Result` per non-comment line with the
/// same skip/recover/numbering semantics.
#[derive(Debug, Clone)]
pub struct ParsedByteLines<'a> {
    inner: ByteLines<'a>,
    next_line: usize,
}

impl Iterator for ParsedByteLines<'_> {
    type Item = Result<(usize, LogEntry), ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        for raw in self.inner.by_ref() {
            let line_no = self.next_line;
            self.next_line += 1;
            let line = raw.trim_ascii();
            if line.is_empty() || line[0] == b'#' {
                continue;
            }
            return Some(match parse_line_bytes(line) {
                Ok(e) => Ok((line_no, e)),
                Err(mut e) => {
                    e.line = line_no;
                    Err(e)
                }
            });
        }
        None
    }
}

/// Streams raw bytes line by line through the zero-copy parser.
pub fn parse_lines_bytes(bytes: &[u8]) -> ParsedByteLines<'_> {
    parse_lines_bytes_from(bytes, 1)
}

/// Like [`parse_lines_bytes`] but numbering lines from `first_line`.
pub fn parse_lines_bytes_from(bytes: &[u8], first_line: usize) -> ParsedByteLines<'_> {
    ParsedByteLines {
        inner: byte_lines(bytes),
        next_line: first_line.max(1),
    }
}

/// Parses a whole log (headers + lines). Comment lines start with `#`.
///
/// Thin strict wrapper over [`parse_lines`]: stops at the first malformed
/// line and returns its error (with the line number filled in).
pub fn parse_log(text: &str) -> Result<Vec<LogEntry>, ParseError> {
    parse_lines(text).map(|r| r.map(|(_, e)| e)).collect()
}

/// One batch of complete lines from a [`LineChunks`] reader.
#[derive(Debug, Clone)]
pub struct LineChunk {
    /// The raw chunk bytes; every line in it is complete. Never re-copied:
    /// the reader hands its fill buffer over by move.
    pub bytes: Vec<u8>,
    /// 1-based number of the chunk's first line within the whole stream.
    pub first_line: usize,
}

impl LineChunk {
    /// The chunk as text, replacing invalid UTF-8 — diagnostics only; the
    /// ingest path parses [`bytes`](Self::bytes) directly.
    pub fn text_lossy(&self) -> std::borrow::Cow<'_, str> {
        // lsw::allow(L006): diagnostics helper, never called by ingest
        String::from_utf8_lossy(&self.bytes)
    }

    /// Number of lines in the chunk (a final unterminated line counts).
    pub fn line_count(&self) -> usize {
        let mut lines = self.bytes.iter().filter(|&&b| b == b'\n').count();
        if self.bytes.last().is_some_and(|&b| b != b'\n') {
            lines += 1;
        }
        lines
    }
}

/// Reads a byte stream as chunks of whole lines, in bounded memory.
///
/// Each yielded [`LineChunk`] contains only complete lines: a partial
/// trailing line is carried into the next chunk, and the final chunk
/// flushes whatever remains at EOF. This is the streaming replacement for
/// the whole-file `read_to_string` + [`parse_log`] path — memory use is
/// `chunk_bytes` plus one carried line, independent of file size. Chunks
/// are raw bytes, moved (never copied) out of the fill buffer; non-UTF-8
/// bytes simply fail field parsing downstream, surfacing as counted
/// malformed lines.
#[derive(Debug)]
pub struct LineChunks<R> {
    reader: R,
    carry: Vec<u8>,
    chunk_bytes: usize,
    next_line: usize,
    done: bool,
}

impl<R: std::io::Read> LineChunks<R> {
    /// Wraps `reader`, yielding chunks of roughly `chunk_bytes` (min 4 KiB).
    pub fn new(reader: R, chunk_bytes: usize) -> Self {
        Self {
            reader,
            carry: Vec::new(),
            chunk_bytes: chunk_bytes.max(4096),
            next_line: 1,
            done: false,
        }
    }

    fn emit(&mut self, bytes: Vec<u8>) -> LineChunk {
        let chunk = LineChunk {
            bytes,
            first_line: self.next_line,
        };
        self.next_line += chunk.line_count();
        chunk
    }
}

impl<R: std::io::Read> Iterator for LineChunks<R> {
    type Item = std::io::Result<LineChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut buf = std::mem::take(&mut self.carry);
        loop {
            let mut filled = buf.len();
            buf.resize(filled + self.chunk_bytes, 0);
            loop {
                match self.reader.read(&mut buf[filled..]) {
                    Ok(0) => {
                        // EOF: flush everything that remains.
                        buf.truncate(filled);
                        self.done = true;
                        return (!buf.is_empty()).then(|| Ok(self.emit(buf)));
                    }
                    Ok(n) => {
                        filled += n;
                        if filled == buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
            buf.truncate(filled);
            // Split at the last newline; carry the partial tail line. A
            // chunk with no newline at all keeps growing `buf` until one
            // arrives (pathological single-line input stays correct).
            if let Some(pos) = buf.iter().rposition(|&b| b == b'\n') {
                self.carry = buf.split_off(pos + 1);
                return Some(Ok(self.emit(buf)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEntryBuilder;

    fn sample_entry() -> LogEntry {
        LogEntryBuilder::new()
            .span(100, 50)
            .client(ClientId(7))
            .origin(
                Ipv4Addr::from_octets(200, 17, 34, 5),
                AsId(42),
                CountryCode(*b"BR"),
            )
            .object(ObjectId(1), 12)
            .transfer_stats(500_000, 34_000, 0.01)
            .server(0.05, 200)
            .build()
    }

    #[test]
    fn round_trip_single_entry() {
        let e = sample_entry();
        let mut buf = BytesMut::new();
        format_entry(&e, &mut buf);
        let line = std::str::from_utf8(&buf).unwrap();
        let parsed = parse_line(line).unwrap();
        assert_eq!(parsed, e);
        // The legacy oracle agrees.
        assert_eq!(legacy::parse_line_str(line).unwrap(), e);
    }

    #[test]
    fn round_trip_full_log() {
        let entries: Vec<LogEntry> = (0..100)
            .map(|i| {
                LogEntryBuilder::new()
                    .span(i * 10, (i % 7) + 1)
                    .client(ClientId(i % 13))
                    .object(ObjectId((i % 2) as u16), (i % 48) as u8)
                    .transfer_stats(u64::from(i) * 1_000, 34_000, 0.0)
                    .build()
            })
            .collect();
        let text = format_log(&entries);
        let parsed = parse_log(std::str::from_utf8(&text).unwrap()).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn header_lines_skipped() {
        let text = "#Software: x\n#Fields: whatever\n\n";
        assert!(parse_log(text).unwrap().is_empty());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "#header\n1 2 3 not-a-number\n";
        let err = parse_log(text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("1 2 3").is_err()); // too few fields
        let mut buf = BytesMut::new();
        format_entry(&sample_entry(), &mut buf);
        let line = format!("{} extra", std::str::from_utf8(&buf).unwrap());
        assert!(parse_line(&line).is_err()); // trailing field
    }

    #[test]
    fn rejects_bad_uri() {
        let mut buf = BytesMut::new();
        format_entry(&sample_entry(), &mut buf);
        let line = std::str::from_utf8(&buf)
            .unwrap()
            .replace("/live/feed1.asf", "/evil.mp4");
        assert!(parse_line(&line).is_err());
    }

    /// Runs one fused scanner method over a standalone field, requiring
    /// the whole input to be consumed — the test-side analogue of the old
    /// split-then-parse helpers.
    fn scan_one<T>(
        s: &[u8],
        f: impl FnOnce(&mut FieldScanner<'_>) -> Result<T, ParseError>,
    ) -> Option<T> {
        let mut sc = FieldScanner::new(s);
        let v = f(&mut sc).ok()?;
        sc.next_field().is_none().then_some(v)
    }

    fn scan_u32(s: &[u8]) -> Option<u32> {
        scan_one(s, |sc| sc.next_u32(0))
    }

    #[test]
    fn integer_fields_follow_std_acceptance_rules() {
        // Optional '+', no '-', no empty, overflow rejected — exactly
        // str::parse::<uN> semantics, so the legacy oracle agrees.
        assert_eq!(scan_u32(b"+5"), Some(5));
        assert_eq!(scan_u32(b"0"), Some(0));
        assert_eq!(scan_u32(b"4294967295"), Some(u32::MAX));
        assert_eq!(scan_u32(b"4294967296"), None);
        assert_eq!(scan_u32(b"-1"), None);
        assert_eq!(scan_u32(b""), None);
        assert_eq!(scan_u32(b"+"), None);
        assert_eq!(scan_u32(b"1_0"), None);
        assert_eq!(
            scan_one(b"18446744073709551615", |sc| sc.next_u64(0)),
            Some(u64::MAX)
        );
        assert_eq!(scan_one(b"18446744073709551616", |sc| sc.next_u64(0)), None);
    }

    #[test]
    fn ip_parsing_matches_fromstr() {
        use std::str::FromStr;
        for s in [
            "200.17.34.5",
            "0.0.0.0",
            "255.255.255.255",
            "1.2.3",
            "1.2.3.4.5",
            "1.2.3.256",
            "1.2.3.00000000000000256",
            "a.b.c.d",
            "...",
            "+1.+2.+3.+4",
        ] {
            let fast = scan_one(s.as_bytes(), |sc| sc.next_ipv4(0));
            let slow = Ipv4Addr::from_str(s).ok();
            assert_eq!(fast, slow, "ip {s:?}");
        }
    }

    #[test]
    fn float_fast_path_matches_std_parse() {
        // The fused f32 path must be bit-identical to str::parse::<f32>
        // on every field the encoder can emit and fall back (same bits
        // again) on everything else.
        for s in [
            "0.0100",
            "0.050",
            "0.9999",
            "1.0000",
            "12.345",
            "0.0001",
            "5.",
            ".5",
            "7",
            "9999999",
            "10000000",
            "123.4567",
            "1e3",
            "-0.5",
            "+0.5",
            "inf",
            "NaN",
            "3.40282347e38",
        ] {
            let fast = scan_one(s.as_bytes(), |sc| sc.next_f32(0));
            let slow = s.parse::<f32>().ok();
            assert_eq!(
                fast.map(f32::to_bits),
                slow.map(f32::to_bits),
                "f32 {s:?}: {fast:?} vs {slow:?}"
            );
        }
    }

    #[test]
    fn byte_and_str_parsers_agree_on_pathologies() {
        let mut buf = BytesMut::new();
        format_entry(&sample_entry(), &mut buf);
        let good = std::str::from_utf8(&buf).unwrap().to_string();
        let cases = [
            good.clone(),
            good.replace("200.17.34.5", "999.1.1.1"),
            good.replace(" BR ", " br "),
            good.replace(" BR ", " BRA "),
            format!("{good} trailing"),
            "1 2 3".to_string(),
            String::new(),
            "   \t  ".to_string(),
            good.replace("0.0100", "abc"),
        ];
        for case in &cases {
            let fast = parse_line_bytes(case.as_bytes());
            let slow = legacy::parse_line_str(case);
            assert_eq!(
                fast.is_ok(),
                slow.is_ok(),
                "parsers disagree on {case:?}: {fast:?} vs {slow:?}"
            );
            if let (Ok(a), Ok(b)) = (fast, slow) {
                assert_eq!(a, b, "payloads differ on {case:?}");
            }
        }
    }

    #[test]
    fn parse_lines_recovers_and_numbers() {
        let mut good = BytesMut::new();
        format_entry(&sample_entry(), &mut good);
        let good = std::str::from_utf8(&good).unwrap();
        let text = format!("#header\n{good}\ngarbage line\n\n{good}\n");
        let items: Vec<_> = parse_lines(&text).collect();
        assert_eq!(items.len(), 3, "two entries and one recoverable error");
        assert_eq!(items[0].as_ref().unwrap().0, 2);
        assert_eq!(items[1].as_ref().unwrap_err().line, 3);
        assert_eq!(items[2].as_ref().unwrap().0, 5);
        // Byte-path parity: same entries, same numbering.
        let byte_items: Vec<_> = parse_lines_bytes(text.as_bytes()).collect();
        assert_eq!(byte_items.len(), 3);
        assert_eq!(byte_items[0].as_ref().unwrap().0, 2);
        assert_eq!(byte_items[1].as_ref().unwrap_err().line, 3);
        assert_eq!(byte_items[2].as_ref().unwrap().0, 5);
    }

    #[test]
    fn byte_lines_match_str_lines() {
        for text in [
            "a\nb\nc",
            "a\nb\nc\n",
            "",
            "\n",
            "one line no newline",
            "crlf\r\nline\r\n",
            "trailing\r",
        ] {
            let from_str: Vec<&str> = text.lines().collect();
            let from_bytes: Vec<&[u8]> = byte_lines(text.as_bytes()).collect();
            assert_eq!(
                from_bytes.len(),
                from_str.len(),
                "line count differs on {text:?}"
            );
            for (b, s) in from_bytes.iter().zip(&from_str) {
                assert_eq!(*b, s.as_bytes(), "line differs on {text:?}");
            }
        }
    }

    #[test]
    fn parse_log_is_thin_wrapper() {
        let text = "#header\n1 2 3 not-a-number\n";
        assert_eq!(parse_log(text).unwrap_err().line, 2);
    }

    #[test]
    fn line_chunks_reassemble_stream() {
        let entries: Vec<LogEntry> = (0..57)
            .map(|i| {
                LogEntryBuilder::new()
                    .span(i * 10, (i % 7) + 1)
                    .client(ClientId(i % 13))
                    .transfer_stats(u64::from(i) * 1_000, 34_000, 0.0)
                    .build()
            })
            .collect();
        let text = format_log(&entries);
        // Tiny chunks force many carry splits.
        let mut parsed = Vec::new();
        let mut next_expected_line = 1usize;
        for chunk in LineChunks::new(&text[..], 64) {
            let chunk = chunk.unwrap();
            assert_eq!(chunk.first_line, next_expected_line);
            for item in parse_lines_bytes_from(&chunk.bytes, chunk.first_line) {
                parsed.push(item.unwrap().1);
            }
            next_expected_line += chunk.line_count();
        }
        assert_eq!(parsed, entries);
    }

    #[test]
    fn line_chunks_flush_unterminated_tail() {
        let data = b"line one\nline two without newline";
        let chunks: Vec<LineChunk> = LineChunks::new(&data[..], 4096)
            .map(|c| c.unwrap())
            .collect();
        let all: Vec<u8> = chunks.iter().flat_map(|c| c.bytes.clone()).collect();
        assert_eq!(all, data);
    }

    #[test]
    fn packet_loss_precision_preserved() {
        let mut e = sample_entry();
        e.packet_loss = 0.1234;
        let mut buf = BytesMut::new();
        format_entry(&e, &mut buf);
        let parsed = parse_line(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!((parsed.packet_loss - 0.1234).abs() < 1e-6);
    }
}
