//! Textual wire format for log entries, W3C-extended-log style.
//!
//! Real Windows Media Server 4.1 logs are space-separated text with a
//! `#Fields:` header (§2.3 / \[13\] in the paper). We emit an equivalent
//! schema so traces can be written to disk, inspected with standard Unix
//! tooling, and parsed back without loss:
//!
//! ```text
//! #Software: lsw-sim
//! #Version: 1.0
//! #Fields: x-timestamp c-start x-duration c-playerid c-ip c-as c-country cs-uri-stem x-camera sc-bytes x-avg-bandwidth c-pkts-lost-rate s-cpu-util sc-status
//! 150 100 50 7 200.17.34.5 42 BR /live/feed1.asf 12 500000 34000 0.0100 0.050 200
//! ```
//!
//! The encoder writes into a [`bytes::BytesMut`] so large traces serialize
//! without intermediate `String` churn.

use crate::event::LogEntry;
use crate::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use bytes::{BufMut, BytesMut};
use std::str::FromStr;

/// The `#Fields:` header emitted (and required) by this format.
pub const FIELDS_HEADER: &str = "#Fields: x-timestamp c-start x-duration c-playerid c-ip \
     c-as c-country cs-uri-stem x-camera sc-bytes x-avg-bandwidth c-pkts-lost-rate \
     s-cpu-util sc-status";

/// Error from parsing a WMS-style log line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number when known (0 when parsing a bare line).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WMS log parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Serializes one entry as a log line (no trailing newline).
pub fn format_entry(e: &LogEntry, out: &mut BytesMut) {
    use std::fmt::Write as _;
    // itoa-style manual formatting is overkill here; fmt::Write into a
    // reused stack string keeps allocations at zero per line.
    let mut line = String::with_capacity(96);
    let written = write!(
        line,
        "{} {} {} {} {} {} {} {} {} {} {} {:.4} {:.3} {}",
        e.timestamp,
        e.start,
        e.duration,
        e.client.0,
        e.ip,
        e.as_id.0,
        e.country,
        e.object.uri(),
        e.camera,
        e.bytes,
        e.avg_bandwidth,
        e.packet_loss,
        e.cpu_util,
        e.status
    );
    debug_assert!(written.is_ok(), "fmt::Write to String cannot fail");
    out.put_slice(line.as_bytes());
}

/// Serializes a whole trace body with headers.
pub fn format_log(entries: &[LogEntry]) -> BytesMut {
    let mut out = BytesMut::with_capacity(entries.len() * 96 + 256);
    out.put_slice(b"#Software: lsw-sim\n#Version: 1.0\n");
    out.put_slice(FIELDS_HEADER.as_bytes());
    out.put_u8(b'\n');
    for e in entries {
        format_entry(e, &mut out);
        out.put_u8(b'\n');
    }
    out
}

/// Parses one (non-comment) log line.
pub fn parse_line(line: &str) -> Result<LogEntry, ParseError> {
    let err = |msg: String| ParseError {
        line: 0,
        message: msg,
    };
    let mut it = line.split_ascii_whitespace();
    let mut next = |name: &str| {
        it.next()
            .ok_or_else(|| err(format!("missing field {name}")))
    };

    fn num<T: FromStr>(s: &str, name: &str) -> Result<T, ParseError>
    where
        T::Err: std::fmt::Display,
    {
        s.parse::<T>().map_err(|e| ParseError {
            line: 0,
            message: format!("bad {name} {s:?}: {e}"),
        })
    }

    let timestamp: u32 = num(next("x-timestamp")?, "x-timestamp")?;
    let start: u32 = num(next("c-start")?, "c-start")?;
    let duration: u32 = num(next("x-duration")?, "x-duration")?;
    let client = ClientId(num(next("c-playerid")?, "c-playerid")?);
    let ip = Ipv4Addr::from_str(next("c-ip")?).map_err(|e| err(format!("bad c-ip: {e}")))?;
    let as_id = AsId(num(next("c-as")?, "c-as")?);
    let country =
        CountryCode::new(next("c-country")?).map_err(|e| err(format!("bad c-country: {e}")))?;
    let uri = next("cs-uri-stem")?;
    let object = parse_uri(uri).ok_or_else(|| err(format!("bad cs-uri-stem {uri:?}")))?;
    let camera: u8 = num(next("x-camera")?, "x-camera")?;
    let bytes: u64 = num(next("sc-bytes")?, "sc-bytes")?;
    let avg_bandwidth: u32 = num(next("x-avg-bandwidth")?, "x-avg-bandwidth")?;
    let packet_loss: f32 = num(next("c-pkts-lost-rate")?, "c-pkts-lost-rate")?;
    let cpu_util: f32 = num(next("s-cpu-util")?, "s-cpu-util")?;
    let status: u16 = num(next("sc-status")?, "sc-status")?;
    if it.next().is_some() {
        return Err(err("trailing fields".into()));
    }
    Ok(LogEntry {
        timestamp,
        start,
        duration,
        client,
        ip,
        as_id,
        country,
        object,
        camera,
        bytes,
        avg_bandwidth,
        packet_loss,
        cpu_util,
        status,
    })
}

/// Extracts the object id from a `/live/feedN.asf` URI stem.
fn parse_uri(uri: &str) -> Option<ObjectId> {
    let rest = uri.strip_prefix("/live/feed")?;
    let digits = rest.strip_suffix(".asf")?;
    digits.parse::<u16>().ok().map(ObjectId)
}

/// Streaming line parser: yields one `Result` per non-comment line.
///
/// Unlike [`parse_log`] this iterator *recovers* from malformed lines:
/// an `Err` item carries the 1-based line number and the iterator keeps
/// going, so callers can skip-and-count bad lines instead of aborting.
/// Comment (`#`) and blank lines are silently skipped (they still advance
/// the line numbering).
#[derive(Debug, Clone)]
pub struct ParsedLines<'a> {
    inner: std::str::Lines<'a>,
    /// 1-based number of the *next* line `inner` will yield.
    next_line: usize,
}

impl Iterator for ParsedLines<'_> {
    /// The line number and entry on success, a numbered error otherwise.
    type Item = Result<(usize, LogEntry), ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        for raw in self.inner.by_ref() {
            let line_no = self.next_line;
            self.next_line += 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return Some(match parse_line(line) {
                Ok(e) => Ok((line_no, e)),
                Err(mut e) => {
                    e.line = line_no;
                    Err(e)
                }
            });
        }
        None
    }
}

/// Streams `text` line by line with per-line error recovery.
pub fn parse_lines(text: &str) -> ParsedLines<'_> {
    parse_lines_from(text, 1)
}

/// Like [`parse_lines`] but numbering lines from `first_line` — for
/// callers feeding chunks of a larger stream (see [`LineChunks`]).
pub fn parse_lines_from(text: &str, first_line: usize) -> ParsedLines<'_> {
    ParsedLines {
        inner: text.lines(),
        next_line: first_line.max(1),
    }
}

/// Parses a whole log (headers + lines). Comment lines start with `#`.
///
/// Thin strict wrapper over [`parse_lines`]: stops at the first malformed
/// line and returns its error (with the line number filled in).
pub fn parse_log(text: &str) -> Result<Vec<LogEntry>, ParseError> {
    parse_lines(text).map(|r| r.map(|(_, e)| e)).collect()
}

/// One batch of complete lines from a [`LineChunks`] reader.
#[derive(Debug, Clone)]
pub struct LineChunk {
    /// The chunk text; every line in it is complete.
    pub text: String,
    /// 1-based number of the chunk's first line within the whole stream.
    pub first_line: usize,
}

/// Reads a byte stream as chunks of whole lines, in bounded memory.
///
/// Each yielded [`LineChunk`] contains only complete lines: a partial
/// trailing line is carried into the next chunk, and the final chunk
/// flushes whatever remains at EOF. This is the streaming replacement for
/// the whole-file `read_to_string` + [`parse_log`] path — memory use is
/// `chunk_bytes` plus one carried line, independent of file size.
/// Non-UTF-8 bytes are replaced (the replacement character then fails
/// field parsing, surfacing as a counted malformed line downstream).
#[derive(Debug)]
pub struct LineChunks<R> {
    reader: R,
    carry: Vec<u8>,
    chunk_bytes: usize,
    next_line: usize,
    done: bool,
}

impl<R: std::io::Read> LineChunks<R> {
    /// Wraps `reader`, yielding chunks of roughly `chunk_bytes` (min 4 KiB).
    pub fn new(reader: R, chunk_bytes: usize) -> Self {
        Self {
            reader,
            carry: Vec::new(),
            chunk_bytes: chunk_bytes.max(4096),
            next_line: 1,
            done: false,
        }
    }

    fn emit(&mut self, bytes: Vec<u8>) -> LineChunk {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let first_line = self.next_line;
        let mut lines = text.as_bytes().iter().filter(|&&b| b == b'\n').count();
        if !text.ends_with('\n') && !text.is_empty() {
            lines += 1; // final unterminated line (EOF flush)
        }
        self.next_line += lines;
        LineChunk { text, first_line }
    }
}

impl<R: std::io::Read> Iterator for LineChunks<R> {
    type Item = std::io::Result<LineChunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut buf = std::mem::take(&mut self.carry);
        loop {
            let mut filled = buf.len();
            buf.resize(filled + self.chunk_bytes, 0);
            loop {
                match self.reader.read(&mut buf[filled..]) {
                    Ok(0) => {
                        // EOF: flush everything that remains.
                        buf.truncate(filled);
                        self.done = true;
                        return (!buf.is_empty()).then(|| Ok(self.emit(buf)));
                    }
                    Ok(n) => {
                        filled += n;
                        if filled == buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
            buf.truncate(filled);
            // Split at the last newline; carry the partial tail line. A
            // chunk with no newline at all keeps growing `buf` until one
            // arrives (pathological single-line input stays correct).
            if let Some(pos) = buf.iter().rposition(|&b| b == b'\n') {
                self.carry = buf.split_off(pos + 1);
                return Some(Ok(self.emit(buf)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEntryBuilder;

    fn sample_entry() -> LogEntry {
        LogEntryBuilder::new()
            .span(100, 50)
            .client(ClientId(7))
            .origin(
                Ipv4Addr::from_octets(200, 17, 34, 5),
                AsId(42),
                CountryCode(*b"BR"),
            )
            .object(ObjectId(1), 12)
            .transfer_stats(500_000, 34_000, 0.01)
            .server(0.05, 200)
            .build()
    }

    #[test]
    fn round_trip_single_entry() {
        let e = sample_entry();
        let mut buf = BytesMut::new();
        format_entry(&e, &mut buf);
        let line = std::str::from_utf8(&buf).unwrap();
        let parsed = parse_line(line).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn round_trip_full_log() {
        let entries: Vec<LogEntry> = (0..100)
            .map(|i| {
                LogEntryBuilder::new()
                    .span(i * 10, (i % 7) + 1)
                    .client(ClientId(i % 13))
                    .object(ObjectId((i % 2) as u16), (i % 48) as u8)
                    .transfer_stats(u64::from(i) * 1_000, 34_000, 0.0)
                    .build()
            })
            .collect();
        let text = format_log(&entries);
        let parsed = parse_log(std::str::from_utf8(&text).unwrap()).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn header_lines_skipped() {
        let text = "#Software: x\n#Fields: whatever\n\n";
        assert!(parse_log(text).unwrap().is_empty());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "#header\n1 2 3 not-a-number\n";
        let err = parse_log(text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("1 2 3").is_err()); // too few fields
        let mut buf = BytesMut::new();
        format_entry(&sample_entry(), &mut buf);
        let line = format!("{} extra", std::str::from_utf8(&buf).unwrap());
        assert!(parse_line(&line).is_err()); // trailing field
    }

    #[test]
    fn rejects_bad_uri() {
        let mut buf = BytesMut::new();
        format_entry(&sample_entry(), &mut buf);
        let line = std::str::from_utf8(&buf)
            .unwrap()
            .replace("/live/feed1.asf", "/evil.mp4");
        assert!(parse_line(&line).is_err());
    }

    #[test]
    fn parse_lines_recovers_and_numbers() {
        let mut good = BytesMut::new();
        format_entry(&sample_entry(), &mut good);
        let good = std::str::from_utf8(&good).unwrap();
        let text = format!("#header\n{good}\ngarbage line\n\n{good}\n");
        let items: Vec<_> = parse_lines(&text).collect();
        assert_eq!(items.len(), 3, "two entries and one recoverable error");
        assert_eq!(items[0].as_ref().unwrap().0, 2);
        assert_eq!(items[1].as_ref().unwrap_err().line, 3);
        assert_eq!(items[2].as_ref().unwrap().0, 5);
    }

    #[test]
    fn parse_log_is_thin_wrapper() {
        let text = "#header\n1 2 3 not-a-number\n";
        assert_eq!(parse_log(text).unwrap_err().line, 2);
    }

    #[test]
    fn line_chunks_reassemble_stream() {
        let entries: Vec<LogEntry> = (0..57)
            .map(|i| {
                LogEntryBuilder::new()
                    .span(i * 10, (i % 7) + 1)
                    .client(ClientId(i % 13))
                    .transfer_stats(u64::from(i) * 1_000, 34_000, 0.0)
                    .build()
            })
            .collect();
        let text = format_log(&entries);
        // Tiny chunks force many carry splits.
        let mut parsed = Vec::new();
        let mut next_expected_line = 1usize;
        for chunk in LineChunks::new(&text[..], 64) {
            let chunk = chunk.unwrap();
            assert_eq!(chunk.first_line, next_expected_line);
            for item in parse_lines_from(&chunk.text, chunk.first_line) {
                parsed.push(item.unwrap().1);
            }
            next_expected_line += chunk.text.lines().count();
        }
        assert_eq!(parsed, entries);
    }

    #[test]
    fn line_chunks_flush_unterminated_tail() {
        let data = b"line one\nline two without newline";
        let chunks: Vec<LineChunk> = LineChunks::new(&data[..], 4096)
            .map(|c| c.unwrap())
            .collect();
        let all: String = chunks.iter().map(|c| c.text.as_str()).collect();
        assert_eq!(all.as_bytes(), data);
    }

    #[test]
    fn packet_loss_precision_preserved() {
        let mut e = sample_entry();
        e.packet_loss = 0.1234;
        let mut buf = BytesMut::new();
        format_entry(&e, &mut buf);
        let parsed = parse_line(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!((parsed.packet_loss - 0.1234).abs() < 1e-6);
    }
}
