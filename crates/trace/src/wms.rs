//! Textual wire format for log entries, W3C-extended-log style.
//!
//! Real Windows Media Server 4.1 logs are space-separated text with a
//! `#Fields:` header (§2.3 / \[13\] in the paper). We emit an equivalent
//! schema so traces can be written to disk, inspected with standard Unix
//! tooling, and parsed back without loss:
//!
//! ```text
//! #Software: lsw-sim
//! #Version: 1.0
//! #Fields: x-timestamp c-start x-duration c-playerid c-ip c-as c-country cs-uri-stem x-camera sc-bytes x-avg-bandwidth c-pkts-lost-rate s-cpu-util sc-status
//! 150 100 50 7 200.17.34.5 42 BR /live/feed1.asf 12 500000 34000 0.0100 0.050 200
//! ```
//!
//! The encoder writes into a [`bytes::BytesMut`] so large traces serialize
//! without intermediate `String` churn.

use crate::event::LogEntry;
use crate::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use bytes::{BufMut, BytesMut};
use std::str::FromStr;

/// The `#Fields:` header emitted (and required) by this format.
pub const FIELDS_HEADER: &str = "#Fields: x-timestamp c-start x-duration c-playerid c-ip \
     c-as c-country cs-uri-stem x-camera sc-bytes x-avg-bandwidth c-pkts-lost-rate \
     s-cpu-util sc-status";

/// Error from parsing a WMS-style log line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number when known (0 when parsing a bare line).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WMS log parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Serializes one entry as a log line (no trailing newline).
pub fn format_entry(e: &LogEntry, out: &mut BytesMut) {
    use std::fmt::Write as _;
    // itoa-style manual formatting is overkill here; fmt::Write into a
    // reused stack string keeps allocations at zero per line.
    let mut line = String::with_capacity(96);
    write!(
        line,
        "{} {} {} {} {} {} {} {} {} {} {} {:.4} {:.3} {}",
        e.timestamp,
        e.start,
        e.duration,
        e.client.0,
        e.ip,
        e.as_id.0,
        e.country,
        e.object.uri(),
        e.camera,
        e.bytes,
        e.avg_bandwidth,
        e.packet_loss,
        e.cpu_util,
        e.status
    )
    .expect("write to String cannot fail");
    out.put_slice(line.as_bytes());
}

/// Serializes a whole trace body with headers.
pub fn format_log(entries: &[LogEntry]) -> BytesMut {
    let mut out = BytesMut::with_capacity(entries.len() * 96 + 256);
    out.put_slice(b"#Software: lsw-sim\n#Version: 1.0\n");
    out.put_slice(FIELDS_HEADER.as_bytes());
    out.put_u8(b'\n');
    for e in entries {
        format_entry(e, &mut out);
        out.put_u8(b'\n');
    }
    out
}

/// Parses one (non-comment) log line.
pub fn parse_line(line: &str) -> Result<LogEntry, ParseError> {
    let err = |msg: String| ParseError {
        line: 0,
        message: msg,
    };
    let mut it = line.split_ascii_whitespace();
    let mut next = |name: &str| {
        it.next()
            .ok_or_else(|| err(format!("missing field {name}")))
    };

    fn num<T: FromStr>(s: &str, name: &str) -> Result<T, ParseError>
    where
        T::Err: std::fmt::Display,
    {
        s.parse::<T>().map_err(|e| ParseError {
            line: 0,
            message: format!("bad {name} {s:?}: {e}"),
        })
    }

    let timestamp: u32 = num(next("x-timestamp")?, "x-timestamp")?;
    let start: u32 = num(next("c-start")?, "c-start")?;
    let duration: u32 = num(next("x-duration")?, "x-duration")?;
    let client = ClientId(num(next("c-playerid")?, "c-playerid")?);
    let ip = Ipv4Addr::from_str(next("c-ip")?).map_err(|e| err(format!("bad c-ip: {e}")))?;
    let as_id = AsId(num(next("c-as")?, "c-as")?);
    let country =
        CountryCode::new(next("c-country")?).map_err(|e| err(format!("bad c-country: {e}")))?;
    let uri = next("cs-uri-stem")?;
    let object = parse_uri(uri).ok_or_else(|| err(format!("bad cs-uri-stem {uri:?}")))?;
    let camera: u8 = num(next("x-camera")?, "x-camera")?;
    let bytes: u64 = num(next("sc-bytes")?, "sc-bytes")?;
    let avg_bandwidth: u32 = num(next("x-avg-bandwidth")?, "x-avg-bandwidth")?;
    let packet_loss: f32 = num(next("c-pkts-lost-rate")?, "c-pkts-lost-rate")?;
    let cpu_util: f32 = num(next("s-cpu-util")?, "s-cpu-util")?;
    let status: u16 = num(next("sc-status")?, "sc-status")?;
    if it.next().is_some() {
        return Err(err("trailing fields".into()));
    }
    Ok(LogEntry {
        timestamp,
        start,
        duration,
        client,
        ip,
        as_id,
        country,
        object,
        camera,
        bytes,
        avg_bandwidth,
        packet_loss,
        cpu_util,
        status,
    })
}

/// Extracts the object id from a `/live/feedN.asf` URI stem.
fn parse_uri(uri: &str) -> Option<ObjectId> {
    let rest = uri.strip_prefix("/live/feed")?;
    let digits = rest.strip_suffix(".asf")?;
    digits.parse::<u16>().ok().map(ObjectId)
}

/// Parses a whole log (headers + lines). Comment lines start with `#`.
pub fn parse_log(text: &str) -> Result<Vec<LogEntry>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut e = parse_line(line).map_err(|mut e| {
            e.line = i + 1;
            e
        })?;
        // Preserve the parsed entry exactly; validation is the caller's
        // (sanitizer's) job, not the parser's.
        let _ = &mut e;
        out.push(e);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEntryBuilder;

    fn sample_entry() -> LogEntry {
        LogEntryBuilder::new()
            .span(100, 50)
            .client(ClientId(7))
            .origin(
                Ipv4Addr::from_octets(200, 17, 34, 5),
                AsId(42),
                CountryCode(*b"BR"),
            )
            .object(ObjectId(1), 12)
            .transfer_stats(500_000, 34_000, 0.01)
            .server(0.05, 200)
            .build()
    }

    #[test]
    fn round_trip_single_entry() {
        let e = sample_entry();
        let mut buf = BytesMut::new();
        format_entry(&e, &mut buf);
        let line = std::str::from_utf8(&buf).unwrap();
        let parsed = parse_line(line).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn round_trip_full_log() {
        let entries: Vec<LogEntry> = (0..100)
            .map(|i| {
                LogEntryBuilder::new()
                    .span(i * 10, (i % 7) + 1)
                    .client(ClientId(i % 13))
                    .object(ObjectId((i % 2) as u16), (i % 48) as u8)
                    .transfer_stats(u64::from(i) * 1_000, 34_000, 0.0)
                    .build()
            })
            .collect();
        let text = format_log(&entries);
        let parsed = parse_log(std::str::from_utf8(&text).unwrap()).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn header_lines_skipped() {
        let text = "#Software: x\n#Fields: whatever\n\n";
        assert!(parse_log(text).unwrap().is_empty());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "#header\n1 2 3 not-a-number\n";
        let err = parse_log(text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("1 2 3").is_err()); // too few fields
        let mut buf = BytesMut::new();
        format_entry(&sample_entry(), &mut buf);
        let line = format!("{} extra", std::str::from_utf8(&buf).unwrap());
        assert!(parse_line(&line).is_err()); // trailing field
    }

    #[test]
    fn rejects_bad_uri() {
        let mut buf = BytesMut::new();
        format_entry(&sample_entry(), &mut buf);
        let line = std::str::from_utf8(&buf)
            .unwrap()
            .replace("/live/feed1.asf", "/evil.mp4");
        assert!(parse_line(&line).is_err());
    }

    #[test]
    fn packet_loss_precision_preserved() {
        let mut e = sample_entry();
        e.packet_loss = 0.1234;
        let mut buf = BytesMut::new();
        format_entry(&e, &mut buf);
        let parsed = parse_line(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!((parsed.packet_loss - 0.1234).abs() < 1e-6);
    }
}
