//! The trace container and Table-1 style summary statistics.

use crate::event::LogEntry;
use crate::ids::{AsId, ClientId, Ipv4Addr, ObjectId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// An in-memory trace: log entries plus the collection horizon.
///
/// Entries are kept sorted by transfer **start** time — the order in which
/// requests arrived at the server — because every interarrival analysis in
/// the paper is phrased over arrival order. (The on-disk WMS log is sorted
/// by stop time; [`Trace::from_entries`] re-sorts.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<LogEntry>,
    /// Collection horizon in seconds (28 days in the paper).
    horizon: u32,
}

impl Trace {
    /// Builds a trace from entries, sorting by start time (stable, so ties
    /// preserve log order).
    pub fn from_entries(mut entries: Vec<LogEntry>, horizon: u32) -> Self {
        entries.sort_by_key(|e| (e.start, e.timestamp, e.client));
        Self { entries, horizon }
    }

    /// The trace horizon in seconds.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// All entries, sorted by start time.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of transfers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Transfer start times, in seconds, in arrival order.
    pub fn start_times(&self) -> impl Iterator<Item = f64> + '_ {
        self.entries.iter().map(|e| e.start as f64)
    }

    /// Computes the Table-1 style summary.
    pub fn summary(&self) -> TraceSummary {
        let mut clients: HashSet<ClientId> = HashSet::new();
        let mut ips: HashSet<Ipv4Addr> = HashSet::new();
        let mut ases: HashSet<AsId> = HashSet::new();
        let mut countries: HashSet<[u8; 2]> = HashSet::new();
        let mut objects: HashSet<ObjectId> = HashSet::new();
        let mut bytes: u64 = 0;
        for e in &self.entries {
            clients.insert(e.client);
            ips.insert(e.ip);
            ases.insert(e.as_id);
            countries.insert(e.country.0);
            objects.insert(e.object);
            bytes = bytes.saturating_add(e.bytes);
        }
        TraceSummary {
            days: self.horizon as f64 / 86_400.0,
            objects: objects.len(),
            client_ases: ases.len(),
            countries: countries.len(),
            client_ips: ips.len(),
            users: clients.len(),
            transfers: self.entries.len(),
            bytes,
        }
    }
}

/// Basic statistics of a trace — the rows of the paper's Table 1.
///
/// (Session count is deliberately absent: it depends on the sessionization
/// timeout `T_o` and is reported by [`crate::session::Sessions`].)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Log period in days.
    pub days: f64,
    /// Total number of live objects.
    pub objects: usize,
    /// Total number of client autonomous systems.
    pub client_ases: usize,
    /// Total number of client countries.
    pub countries: usize,
    /// Total number of distinct client IPs.
    pub client_ips: usize,
    /// Total number of users (player IDs).
    pub users: usize,
    /// Total number of transfers.
    pub transfers: usize,
    /// Total content served in bytes.
    pub bytes: u64,
}

impl TraceSummary {
    /// Total content served in terabytes (Table 1 reports "> 8 TB").
    pub fn terabytes(&self) -> f64 {
        self.bytes as f64 / (1u64 << 40) as f64
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Log period              {:.1} days", self.days)?;
        writeln!(f, "Total # of live objects {}", self.objects)?;
        writeln!(f, "Total # of client ASs   {}", self.client_ases)?;
        writeln!(f, "Total # of countries    {}", self.countries)?;
        writeln!(f, "Total # of client IPs   {}", self.client_ips)?;
        writeln!(f, "Total # of users        {}", self.users)?;
        writeln!(f, "Total # of transfers    {}", self.transfers)?;
        write!(f, "Total content served    {:.2} TB", self.terabytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEntryBuilder;
    use crate::ids::CountryCode;

    fn entry(start: u32, dur: u32, client: u32, ip: u32, as_id: u16, obj: u16) -> LogEntry {
        LogEntryBuilder::new()
            .span(start, dur)
            .client(ClientId(client))
            .origin(Ipv4Addr(ip), AsId(as_id), CountryCode(*b"BR"))
            .object(ObjectId(obj), 0)
            .transfer_stats(1_000, 34_000, 0.0)
            .build()
    }

    #[test]
    fn entries_sorted_by_start() {
        let t = Trace::from_entries(
            vec![
                entry(50, 5, 1, 1, 1, 0),
                entry(10, 5, 2, 2, 1, 0),
                entry(30, 5, 3, 3, 2, 1),
            ],
            100,
        );
        let starts: Vec<u32> = t.entries().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![10, 30, 50]);
    }

    #[test]
    fn summary_counts_distinct() {
        let t = Trace::from_entries(
            vec![
                entry(0, 1, 1, 10, 1, 0),
                entry(1, 1, 1, 10, 1, 0), // same client/ip/AS
                entry(2, 1, 2, 20, 1, 1),
                entry(3, 1, 3, 30, 2, 0),
            ],
            86_400,
        );
        let s = t.summary();
        assert_eq!(s.users, 3);
        assert_eq!(s.client_ips, 3);
        assert_eq!(s.client_ases, 2);
        assert_eq!(s.objects, 2);
        assert_eq!(s.transfers, 4);
        assert_eq!(s.bytes, 4_000);
        assert_eq!(s.countries, 1);
        assert!((s.days - 1.0).abs() < 1e-12);
    }

    #[test]
    fn terabytes_conversion() {
        let s = TraceSummary {
            days: 28.0,
            objects: 2,
            client_ases: 1,
            countries: 1,
            client_ips: 1,
            users: 1,
            transfers: 1,
            bytes: 9 * (1u64 << 40),
        };
        assert!((s.terabytes() - 9.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("9.00 TB"));
        assert!(text.contains("28.0 days"));
    }

    #[test]
    fn empty_trace() {
        let t = Trace::from_entries(vec![], 100);
        assert!(t.is_empty());
        let s = t.summary();
        assert_eq!(s.transfers, 0);
        assert_eq!(s.users, 0);
    }
}
