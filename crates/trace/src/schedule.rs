//! Replay schedule extraction: a trace, reduced to what a load driver
//! needs to re-offer it to a live server.
//!
//! A [`Schedule`] is the start-ordered list of §2.4-clean transfers with
//! only the *replayable* fields kept: when to connect, as whom, for which
//! feed, for how long, and how many bytes the original transfer carried.
//! Fields that describe the original server's state rather than the
//! client's request (`cpu_util`, `packet_loss`, the redundant stop-time
//! `timestamp`) are dropped — deliberately, because they are exactly the
//! fields the text format rounds: a schedule extracted from a `wms` log
//! and one extracted from the equivalent `ltc` container are **equal**,
//! field for field (`crates/trace/tests/proptests.rs` pins this).
//!
//! Extraction is format-native: the text path goes through the zero-copy
//! byte scanner, and the `ltc` path reads block columns directly —
//! per-block column slices feed the schedule without materializing
//! intermediate [`LogEntry`] values. Records the sanitizer would reject
//! are *counted* and skipped (replaying a failed or inconsistent transfer
//! would re-offer traffic the characterization on the other end of the
//! loop is defined to ignore), as are corrupt `ltc` blocks and malformed
//! text lines.

use crate::event::LogEntry;
use crate::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use crate::ltc;
use crate::sanitize::classify;
use crate::wms;
use serde::{Deserialize, Serialize};
use std::io;

/// One transfer to replay: the client-visible request parameters of a
/// kept log record. All times are trace seconds since the log epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledTransfer {
    /// When to open the connection, trace seconds.
    pub start: u32,
    /// How long the original transfer lasted, trace seconds.
    pub duration: u32,
    /// The requesting client (player id).
    pub client: ClientId,
    /// Client IP at request time.
    pub ip: Ipv4Addr,
    /// Autonomous system of the IP.
    pub as_id: AsId,
    /// Country of the AS.
    pub country: CountryCode,
    /// Requested live object (feed).
    pub object: ObjectId,
    /// Camera the feed was showing at start.
    pub camera: u8,
    /// Bytes the original transfer delivered.
    pub bytes: u64,
    /// Average bandwidth of the original transfer, bits per second.
    pub avg_bandwidth: u32,
    /// Protocol status (always 2xx for kept records).
    pub status: u16,
}

impl ScheduledTransfer {
    /// Reduces one kept log record to its replayable fields.
    pub fn from_entry(e: &LogEntry) -> Self {
        Self {
            start: e.start,
            duration: e.duration,
            client: e.client,
            ip: e.ip,
            as_id: e.as_id,
            country: e.country,
            object: e.object,
            camera: e.camera,
            bytes: e.bytes,
            avg_bandwidth: e.avg_bandwidth,
            status: e.status,
        }
    }

    /// Transfer stop time, trace seconds.
    pub fn stop(&self) -> u32 {
        self.start.saturating_add(self.duration)
    }

    /// Duration under the paper's `⌊t⌋+1` display convention — what the
    /// admission model charges as viewer-seconds.
    pub fn display_duration(&self) -> f64 {
        f64::from(self.duration) + 1.0
    }

    /// Byte rate of the original transfer under the `⌊t⌋+1` display
    /// convention (bytes per trace second, never zero for `bytes > 0`).
    pub fn byte_rate(&self) -> u64 {
        self.bytes.div_ceil(u64::from(self.duration) + 1)
    }

    /// Re-expands the scheduled transfer into a synthetic log record
    /// (`timestamp = stop`, zero loss/CPU) — the reference entry the
    /// closed-loop characterization is diffed against.
    pub fn to_entry(&self) -> LogEntry {
        LogEntry {
            timestamp: self.stop(),
            start: self.start,
            duration: self.duration,
            client: self.client,
            ip: self.ip,
            as_id: self.as_id,
            country: self.country,
            object: self.object,
            camera: self.camera,
            bytes: self.bytes,
            avg_bandwidth: self.avg_bandwidth,
            packet_loss: 0.0,
            cpu_util: 0.0,
            status: self.status,
        }
    }
}

/// Skip accounting of one extraction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Records examined (parsed or decoded).
    pub examined: u64,
    /// Records skipped by the §2.4 classification rules.
    pub rejected: u64,
    /// Malformed text lines (text extraction only).
    pub malformed: u64,
    /// Corrupt blocks skipped (`ltc` extraction only).
    pub corrupt_blocks: u64,
    /// Records lost inside corrupt blocks (`ltc` extraction only).
    pub corrupt_records: u64,
}

/// A start-ordered replay schedule plus its extraction accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Transfers in nondecreasing start order (stable: records with equal
    /// starts keep their source order, which both formats preserve).
    pub transfers: Vec<ScheduledTransfer>,
    /// What extraction examined and skipped.
    pub stats: ScheduleStats,
}

impl Schedule {
    /// Builds a schedule from in-memory records, applying the §2.4 keep
    /// rules with an unbounded horizon (the replay horizon is the
    /// schedule's own extent).
    pub fn from_entries<'a, I: IntoIterator<Item = &'a LogEntry>>(entries: I) -> Self {
        let mut schedule = Schedule::default();
        for e in entries {
            schedule.push_classified(e);
        }
        schedule.seal();
        schedule
    }

    /// Extracts a schedule from WMS-format text bytes. Malformed lines
    /// are counted and skipped, mirroring the streaming engine.
    pub fn from_wms_bytes(bytes: &[u8]) -> Self {
        let mut schedule = Schedule::default();
        for parsed in wms::parse_lines_bytes(bytes) {
            match parsed {
                Ok((_, e)) => schedule.push_classified(&e),
                Err(_) => schedule.stats.malformed += 1,
            }
        }
        schedule.seal();
        schedule
    }

    /// Extracts a schedule from any `ltc` [`ltc::BlockSource`], reading
    /// block columns directly — kept records are assembled straight from
    /// the per-block column slices. Corrupt blocks are counted and
    /// skipped, never fatal.
    pub fn from_ltc<S: ltc::BlockSource>(mut src: S) -> io::Result<Self> {
        let index = ltc::read_index(&mut src)?;
        let mut schedule = Schedule::default();
        let mut block = ltc::RecordBlock::default();
        for meta in &index.blocks {
            let len = ltc::BLOCK_HEADER_LEN + meta.payload_len as usize;
            let raw = src.view(meta.offset, len)?;
            let ok = ltc::parse_block_header(raw)
                .filter(|h| h.payload_len == meta.payload_len && h.n_records == meta.n_records)
                .is_some_and(|h| ltc::decode_block(&raw[ltc::BLOCK_HEADER_LEN..], h, &mut block));
            if !ok {
                schedule.stats.corrupt_blocks += 1;
                schedule.stats.corrupt_records += u64::from(meta.n_records);
                continue;
            }
            schedule.push_block_columns(&block);
        }
        schedule.seal();
        Ok(schedule)
    }

    /// Extracts a schedule from an `ltc` file in bounded memory (one
    /// block resident at a time, plus the schedule itself).
    pub fn from_ltc_path(path: &std::path::Path) -> io::Result<Self> {
        Self::from_ltc(ltc::FileSource::open(path)?)
    }

    /// Classifies one record and appends it if kept.
    fn push_classified(&mut self, e: &LogEntry) {
        self.stats.examined += 1;
        if classify(e, u32::MAX).is_some() {
            self.stats.rejected += 1;
        } else {
            self.transfers.push(ScheduledTransfer::from_entry(e));
        }
    }

    /// Appends one decoded block's kept records from its column slices.
    fn push_block_columns(&mut self, b: &ltc::RecordBlock) {
        self.stats.examined += b.len() as u64;
        self.transfers.reserve(b.len());
        for i in 0..b.len() {
            // Column-native §2.4 classification — the same predicates
            // `sanitize::classify` applies under an unbounded horizon
            // (where SpansTracePeriod never fires and StartsBeyondHorizon
            // reduces to `start == u32::MAX`), on the raw columns.
            let stop = u64::from(b.start[i]) + u64::from(b.duration[i]);
            let clean = b.start[i] != u32::MAX
                && stop <= u64::from(u32::MAX)
                && u64::from(b.timestamp[i]) == stop
                && (200..300).contains(&b.status[i])
                && (0.0..=1.0).contains(&b.packet_loss[i])
                && (0.0..=1.0).contains(&b.cpu_util[i]);
            if !clean {
                self.stats.rejected += 1;
                continue;
            }
            self.transfers.push(ScheduledTransfer {
                start: b.start[i],
                duration: b.duration[i],
                client: ClientId(b.client[i]),
                ip: Ipv4Addr(b.ip[i]),
                as_id: AsId(b.as_id[i]),
                country: CountryCode(b.country[i]),
                object: ObjectId(b.object[i]),
                camera: b.camera[i],
                bytes: b.bytes[i],
                avg_bandwidth: b.avg_bandwidth[i],
                status: b.status[i],
            });
        }
    }

    /// Fixes the start order (stable, so equal starts keep file order —
    /// identical across formats because both preserve record order).
    fn seal(&mut self) {
        self.transfers.sort_by_key(|t| t.start);
    }

    /// Transfers in the schedule.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// True when nothing survived extraction.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// The replay horizon: one second past the last stop (0 when empty).
    pub fn horizon(&self) -> u32 {
        self.transfers
            .iter()
            .map(|t| t.stop())
            .max()
            .map_or(0, |s| s.saturating_add(1))
    }

    /// Distinct objects and the *encoded byte rate* of each — the highest
    /// per-transfer byte rate observed for the feed, i.e. the rate the
    /// uncongested stream was encoded at. Returned ascending by object id.
    ///
    /// Pacing a feed's broadcast at this rate guarantees every transfer's
    /// byte budget fits inside its duration: for each kept transfer,
    /// `encoded_rate * (duration + 1) >= bytes`.
    pub fn object_rates(&self) -> Vec<(ObjectId, u64)> {
        let mut rates: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
        for t in &self.transfers {
            let r = rates.entry(t.object.0).or_insert(0);
            *r = (*r).max(t.byte_rate());
        }
        rates.into_iter().map(|(o, r)| (ObjectId(o), r)).collect()
    }

    /// Total bytes across all scheduled transfers.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// The longest transfer duration — the look-ahead window a
    /// completion-ordered tap needs to restore start order exactly.
    pub fn max_duration(&self) -> u32 {
        self.transfers.iter().map(|t| t.duration).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEntryBuilder;

    fn entries() -> Vec<LogEntry> {
        (0..50u32)
            .map(|i| {
                LogEntryBuilder::new()
                    .span(1000 - i * 20, (i % 7) + 2)
                    .client(ClientId(i % 5))
                    .object(ObjectId((i % 3) as u16), 1)
                    .transfer_stats(u64::from(i) * 512 + 100, 24_000, 0.0)
                    .build()
            })
            .collect()
    }

    #[test]
    fn schedule_is_start_ordered_and_complete() {
        let es = entries();
        let s = Schedule::from_entries(&es);
        assert_eq!(s.len(), 50);
        assert!(s.transfers.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(s.stats.examined, 50);
        assert_eq!(s.stats.rejected, 0);
        assert_eq!(s.horizon(), es.iter().map(|e| e.stop()).max().unwrap() + 1);
    }

    #[test]
    fn rejects_are_counted_not_scheduled() {
        let mut es = entries();
        es[3].status = 404; // failed transfer
        es[7].timestamp = es[7].timestamp.wrapping_add(9); // inconsistent
        let s = Schedule::from_entries(&es);
        assert_eq!(s.stats.rejected, 2);
        assert_eq!(s.len(), 48);
    }

    #[test]
    fn wms_and_ltc_extraction_agree() {
        let es = entries();
        let text = wms::format_log(&es);
        let image = crate::ltc::encode(&es).unwrap();
        let from_text = Schedule::from_wms_bytes(&text);
        let from_ltc = Schedule::from_ltc(crate::ltc::SliceSource::new(&image)).unwrap();
        assert_eq!(from_text.transfers, from_ltc.transfers);
        assert_eq!(from_text.stats.examined, from_ltc.stats.examined);
    }

    #[test]
    fn object_rates_cover_budgets() {
        let s = Schedule::from_entries(&entries());
        let rates = s.object_rates();
        assert_eq!(rates.len(), 3);
        for t in &s.transfers {
            let (_, r) = rates[t.object.0 as usize];
            assert!(r * (u64::from(t.duration) + 1) >= t.bytes);
        }
    }

    #[test]
    fn byte_rate_survives_zero_duration() {
        let t = ScheduledTransfer::from_entry(
            &LogEntryBuilder::new()
                .span(5, 0)
                .transfer_stats(999, 10_000, 0.0)
                .build(),
        );
        assert_eq!(t.byte_rate(), 999);
    }
}
