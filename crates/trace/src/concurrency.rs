//! Sweep-line concurrency counting.
//!
//! The paper's Figs 3/4 plot the number of concurrently *active clients*
//! `c(t)` and Figs 15/16 the number of concurrent *transfers* over time.
//! Both are interval-overlap counts, computed here with a single sorted
//! sweep over `(time, +1/−1)` events — `O(n log n)` once, then every bin
//! query is `O(1)`.

use crate::event::LogEntry;
use crate::session::Session;
use lsw_stats::par::Parallelism;
use lsw_stats::timeseries::BinnedSeries;

/// A step function: number of active intervals at each whole second.
#[derive(Debug, Clone)]
pub struct ConcurrencyProfile {
    /// `counts[t]` = active intervals during second `t`.
    counts: Vec<u32>,
}

impl ConcurrencyProfile {
    /// Builds the profile from `(start, stop)` pairs over `[0, horizon)`.
    ///
    /// An interval is active during seconds `start..=stop.min(horizon-1)`;
    /// zero-length intervals (sub-second transfers rounded down by the
    /// 1-second log resolution) still count as active for their start
    /// second, matching how the server would have seen them.
    pub fn from_intervals(intervals: impl Iterator<Item = (u32, u32)>, horizon: u32) -> Self {
        let mut sweep = ConcurrencySweep::new(horizon);
        for (start, stop) in intervals {
            sweep.add(start, stop);
        }
        sweep.finish()
    }

    /// Builds the profile from a slice of `(start, stop)` pairs, sharding
    /// the sweep across `par` workers.
    ///
    /// Addition is associative and commutative, so each worker accumulates
    /// a private difference array over its interval chunk; the arrays sum
    /// element-wise and one prefix scan finishes the job. The result is
    /// identical to [`from_intervals`](Self::from_intervals) at every
    /// worker count.
    pub fn from_intervals_par(intervals: &[(u32, u32)], horizon: u32, par: Parallelism) -> Self {
        let h = horizon as usize;
        let ranges = par.chunk_ranges(intervals.len());
        if ranges.len() == 1 {
            return Self::from_intervals(intervals.iter().copied(), horizon);
        }
        let deltas: Vec<Vec<i32>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|r| {
                    let chunk = &intervals[r.clone()];
                    s.spawn(move || {
                        let mut delta = vec![0i32; h + 1];
                        for &(start, stop) in chunk {
                            let lo = (start as usize).min(h);
                            if lo >= h {
                                continue;
                            }
                            let hi = ((stop as usize) + 1).min(h);
                            delta[lo] += 1;
                            delta[hi] -= 1;
                        }
                        delta
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|hd| match hd.join() {
                    Ok(delta) => delta,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut total = vec![0i32; h + 1];
        for delta in deltas {
            for (t, d) in total.iter_mut().zip(delta) {
                *t += d;
            }
        }
        let mut counts = Vec::with_capacity(h);
        let mut acc = 0i32;
        for d in total.iter().take(h) {
            acc += d;
            debug_assert!(acc >= 0, "sweep went negative");
            counts.push(acc as u32);
        }
        Self { counts }
    }

    /// Concurrent **transfers** over time (Figs 15/16).
    pub fn transfers(entries: &[LogEntry], horizon: u32) -> Self {
        let spans: Vec<(u32, u32)> = entries.iter().map(|e| (e.start, e.stop())).collect();
        Self::from_intervals_par(&spans, horizon, Parallelism::auto())
    }

    /// Concurrent **clients with an active session** over time (Figs 3/4).
    pub fn clients(sessions: &[Session], horizon: u32) -> Self {
        Self::from_intervals(sessions.iter().map(|s| (s.start, s.end)), horizon)
    }

    /// Active count during second `t` (0 beyond the horizon).
    pub fn at(&self, t: u32) -> u32 {
        self.counts.get(t as usize).copied().unwrap_or(0)
    }

    /// The per-second counts.
    pub fn per_second(&self) -> &[u32] {
        &self.counts
    }

    /// Maximum concurrency over the horizon.
    pub fn peak(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Per-second counts as `f64` (for the marginal-distribution figures).
    pub fn samples(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Mean count per `bin_width`-second bin (Figs 4/16: 900-second bins).
    pub fn binned_mean(&self, bin_width: u32) -> BinnedSeries {
        assert!(bin_width > 0, "bin width must be positive");
        let mut values = Vec::with_capacity(self.counts.len() / bin_width as usize + 1);
        for chunk in self.counts.chunks(bin_width as usize) {
            let sum: u64 = chunk.iter().map(|&c| u64::from(c)).sum();
            values.push(sum as f64 / chunk.len() as f64);
        }
        BinnedSeries::new(values, f64::from(bin_width))
    }
}

/// Incremental builder for [`ConcurrencyProfile`]: feed intervals in any
/// order — e.g. block by block straight from `ltc` start/stop columns,
/// with no interval vector materialized — then [`finish`](Self::finish)
/// once. Addition into the difference array is order-free, so the result
/// equals [`ConcurrencyProfile::from_intervals`] on the same multiset.
#[derive(Debug, Clone)]
pub struct ConcurrencySweep {
    /// Difference array: +1 at start, −1 after stop.
    delta: Vec<i32>,
    horizon: usize,
}

impl ConcurrencySweep {
    /// An empty sweep over `[0, horizon)` seconds.
    pub fn new(horizon: u32) -> Self {
        let h = horizon as usize;
        Self {
            delta: vec![0i32; h + 1],
            horizon: h,
        }
    }

    /// Accumulates one interval (active during `start..=stop`, clipped to
    /// the horizon; zero-length intervals count for their start second).
    #[inline]
    pub fn add(&mut self, start: u32, stop: u32) {
        let h = self.horizon;
        let s = (start as usize).min(h);
        if s >= h {
            return;
        }
        let e = ((stop as usize) + 1).min(h);
        self.delta[s] += 1;
        self.delta[e] -= 1;
    }

    /// Prefix-scans the accumulated deltas into the per-second profile.
    pub fn finish(self) -> ConcurrencyProfile {
        let h = self.horizon;
        let mut counts = Vec::with_capacity(h);
        let mut acc = 0i32;
        for d in self.delta.iter().take(h) {
            acc += d;
            debug_assert!(acc >= 0, "sweep went negative");
            counts.push(acc as u32);
        }
        ConcurrencyProfile { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_overlap_counting() {
        // Intervals: [0,5], [3,8], [10,10] (a zero-length one).
        let p = ConcurrencyProfile::from_intervals(vec![(0, 5), (3, 8), (10, 10)].into_iter(), 15);
        assert_eq!(p.at(0), 1);
        assert_eq!(p.at(3), 2);
        assert_eq!(p.at(5), 2);
        assert_eq!(p.at(6), 1);
        assert_eq!(p.at(8), 1);
        assert_eq!(p.at(9), 0);
        assert_eq!(p.at(10), 1); // zero-length interval is active at its second
        assert_eq!(p.at(11), 0);
        assert_eq!(p.peak(), 2);
    }

    #[test]
    fn intervals_clipped_to_horizon() {
        let p = ConcurrencyProfile::from_intervals(vec![(8, 100), (50, 60)].into_iter(), 10);
        assert_eq!(p.at(8), 1);
        assert_eq!(p.at(9), 1);
        assert_eq!(p.per_second().len(), 10);
        // The (50, 60) interval starts beyond the horizon: ignored.
        assert_eq!(p.per_second().iter().map(|&c| c as u64).sum::<u64>(), 2);
    }

    #[test]
    fn binned_mean_averages() {
        let p = ConcurrencyProfile::from_intervals(vec![(0, 3)].into_iter(), 8);
        // counts: [1,1,1,1,0,0,0,0]; mean over 4-second bins: [1.0, 0.0].
        let b = p.binned_mean(4);
        assert_eq!(b.values, vec![1.0, 0.0]);
        assert_eq!(b.bin_width, 4.0);
    }

    #[test]
    fn binned_mean_partial_last_bin() {
        let p = ConcurrencyProfile::from_intervals(vec![(0, 9)].into_iter(), 10);
        let b = p.binned_mean(4);
        // bins of 4, 4, 2 seconds — all fully active.
        assert_eq!(b.values, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_profile() {
        let p = ConcurrencyProfile::from_intervals(std::iter::empty(), 5);
        assert_eq!(p.peak(), 0);
        assert_eq!(p.samples(), vec![0.0; 5]);
    }

    #[test]
    fn parallel_matches_sequential_at_every_worker_count() {
        // A messy interval soup, including clipped and zero-length spans.
        let intervals: Vec<(u32, u32)> = (0..500u32)
            .map(|i| {
                let start = (i * 37) % 400;
                (start, start + (i * 13) % 90)
            })
            .collect();
        let seq = ConcurrencyProfile::from_intervals(intervals.iter().copied(), 450);
        for workers in [1, 2, 3, 8, 64] {
            let par = ConcurrencyProfile::from_intervals_par(
                &intervals,
                450,
                Parallelism::fixed(workers),
            );
            assert_eq!(par.per_second(), seq.per_second(), "workers = {workers}");
        }
    }

    #[test]
    fn parallel_empty_input() {
        let p = ConcurrencyProfile::from_intervals_par(&[], 5, Parallelism::fixed(4));
        assert_eq!(p.samples(), vec![0.0; 5]);
    }

    #[test]
    fn heavy_overlap() {
        // 1000 identical intervals — peak must be exactly 1000.
        let p = ConcurrencyProfile::from_intervals(std::iter::repeat((2u32, 4u32)).take(1000), 6);
        assert_eq!(p.peak(), 1000);
        assert_eq!(p.at(1), 0);
        assert_eq!(p.at(2), 1000);
        assert_eq!(p.at(4), 1000);
        assert_eq!(p.at(5), 0);
    }
}
