//! `ltc` — the columnar binary trace container (the pipeline fast path).
//!
//! The W3C-style [`crate::wms`] text format is the *interchange* format;
//! `ltc` is the *replay* format: once a log has been converted, every
//! re-analysis pays column decode instead of text parse. The layout is
//! block-structured so ingest can fan blocks out to parallel workers and
//! skip damaged regions without losing the rest of the file:
//!
//! ```text
//! file   := header block* footer
//! header := "LTC1" | version u8 (=1) | flags u8 (=0) | reserved u16
//! block  := payload_len u32 LE | n_records u32 LE | crc32 u32 LE | payload
//! footer := fpayload | crc32(fpayload) u32 LE | fpayload_len u32 LE | "LTCF"
//! ```
//!
//! Each block holds up to [`DEFAULT_BLOCK_RECORDS`] records as
//! struct-of-arrays column segments (`uvarint(len) ++ bytes` each, in
//! [`LogEntry`] field order): `start` and `timestamp` are
//! delta-plus-zigzag varints (resetting at block boundaries so blocks
//! decode independently), numeric ids and byte counts are plain varints,
//! `country`/`object`/`status` are dictionary-encoded per block in
//! first-appearance order, `camera` is one raw byte per record, `ip` is
//! a raw little-endian word (address bits are too random for varints),
//! and the two `f32` fields are raw little-endian bits so records round-trip
//! *bit-identically* — including §2.4-corrupt records (bad status,
//! inconsistent timestamps) that the sanitizer will later reject.
//!
//! The footer carries the block index (payload lengths and record
//! counts, from which block offsets are a prefix sum), the total record
//! count, and a `sorted` flag set when the writer saw records in
//! nondecreasing `(start, timestamp)` order — the streaming engine uses
//! it to bypass its look-ahead reorder heap. A reader that finds the
//! footer missing or damaged falls back to a sequential block-header
//! scan, recovering every intact leading block of a truncated file; a
//! block whose CRC fails is *counted* and skipped, never fatal —
//! mirroring how malformed text lines are handled.
//!
//! Reading goes through the [`BlockSource`] trait: [`SliceSource`] lends
//! zero-copy views of an in-memory buffer; [`FileSource`] seeks and
//! reads into a reusable scratch buffer, holding one block resident at a
//! time (the workspace forbids `unsafe`, so a memory-mapped source is
//! deliberately out of scope — it would slot behind the same trait).

pub mod codec;

use crate::event::LogEntry;
use crate::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use codec::{crc32, read_uvarint, unzigzag, write_uvarint, zigzag};
use std::collections::BTreeMap;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// File magic ("LTC1").
pub const MAGIC: [u8; 4] = *b"LTC1";
/// Footer magic ("LTCF"), the last four bytes of a complete file.
pub const FOOTER_MAGIC: [u8; 4] = *b"LTCF";
/// Container version this module reads and writes.
pub const VERSION: u8 = 1;
/// File header length in bytes.
pub const HEADER_LEN: u64 = 8;
/// Per-block header length in bytes (payload_len, n_records, crc).
pub const BLOCK_HEADER_LEN: usize = 12;
/// Footer tail length in bytes (crc, payload_len, magic).
const FOOTER_TAIL_LEN: usize = 12;
/// Default records per block (~64k: 3 MB decoded, well under a cache of
/// typical per-worker working sets).
pub const DEFAULT_BLOCK_RECORDS: usize = 64 * 1024;

/// Sniffs whether a byte prefix looks like an `ltc` file.
pub fn is_ltc(prefix: &[u8]) -> bool {
    prefix.len() >= MAGIC.len() && prefix[..MAGIC.len()] == MAGIC
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn eof(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, msg)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// What [`LtcWriter::finish`] reports about the written file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtcSummary {
    /// Records written.
    pub records: u64,
    /// Blocks written.
    pub blocks: u64,
    /// Bytes written, including header and footer.
    pub bytes: u64,
    /// Whether the record stream was nondecreasing in `(start, timestamp)`.
    pub sorted: bool,
}

/// Streaming `ltc` encoder over any [`Write`] sink.
///
/// Buffers up to one block of records, encodes columns on block
/// boundaries, and writes the footer index on [`finish`](Self::finish).
/// Memory is bounded by one block regardless of trace size.
#[derive(Debug)]
pub struct LtcWriter<W: Write> {
    sink: W,
    pending: Vec<LogEntry>,
    block_records: usize,
    /// Per-block (payload_len, n_records), in file order.
    index: Vec<(u32, u32)>,
    records: u64,
    bytes: u64,
    sorted: bool,
    prev_key: Option<(u32, u32)>,
    payload: Vec<u8>,
    col: Vec<u8>,
}

impl<W: Write> LtcWriter<W> {
    /// Starts a writer with the default block size; writes the header.
    pub fn new(sink: W) -> io::Result<Self> {
        Self::with_block_records(sink, DEFAULT_BLOCK_RECORDS)
    }

    /// Starts a writer with an explicit records-per-block bound.
    pub fn with_block_records(mut sink: W, block_records: usize) -> io::Result<Self> {
        let mut header = [0u8; HEADER_LEN as usize];
        header[..4].copy_from_slice(&MAGIC);
        header[4] = VERSION;
        sink.write_all(&header)?;
        Ok(Self {
            sink,
            pending: Vec::new(),
            block_records: block_records.max(1),
            index: Vec::new(),
            records: 0,
            bytes: HEADER_LEN,
            sorted: true,
            prev_key: None,
            payload: Vec::new(),
            col: Vec::new(),
        })
    }

    /// Appends one record, flushing a block when full.
    pub fn push(&mut self, e: &LogEntry) -> io::Result<()> {
        let key = (e.start, e.timestamp);
        if let Some(prev) = self.prev_key {
            if key < prev {
                self.sorted = false;
            }
        }
        self.prev_key = Some(key);
        self.pending.push(*e);
        if self.pending.len() >= self.block_records {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        encode_columns(&self.pending, &mut self.payload, &mut self.col);
        let payload_len = u32::try_from(self.payload.len())
            .map_err(|_| invalid("ltc block payload exceeds u32"))?;
        let n_records = u32::try_from(self.pending.len())
            .map_err(|_| invalid("ltc block record count exceeds u32"))?;
        let crc = crc32(&self.payload);
        let mut header = [0u8; BLOCK_HEADER_LEN];
        header[..4].copy_from_slice(&payload_len.to_le_bytes());
        header[4..8].copy_from_slice(&n_records.to_le_bytes());
        header[8..12].copy_from_slice(&crc.to_le_bytes());
        self.sink.write_all(&header)?;
        self.sink.write_all(&self.payload)?;
        self.bytes += (BLOCK_HEADER_LEN + self.payload.len()) as u64;
        self.index.push((payload_len, n_records));
        self.records += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the tail block, writes the footer index, and returns the
    /// file summary.
    pub fn finish(mut self) -> io::Result<LtcSummary> {
        self.flush_block()?;
        let mut fpayload = Vec::new();
        write_uvarint(&mut fpayload, self.index.len() as u64);
        for &(payload_len, n_records) in &self.index {
            write_uvarint(&mut fpayload, u64::from(payload_len));
            write_uvarint(&mut fpayload, u64::from(n_records));
        }
        write_uvarint(&mut fpayload, self.records);
        fpayload.push(u8::from(self.sorted));
        let fpayload_len =
            u32::try_from(fpayload.len()).map_err(|_| invalid("ltc footer exceeds u32"))?;
        let crc = crc32(&fpayload);
        self.sink.write_all(&fpayload)?;
        self.sink.write_all(&crc.to_le_bytes())?;
        self.sink.write_all(&fpayload_len.to_le_bytes())?;
        self.sink.write_all(&FOOTER_MAGIC)?;
        self.sink.flush()?;
        self.bytes += fpayload.len() as u64 + FOOTER_TAIL_LEN as u64;
        Ok(LtcSummary {
            records: self.records,
            blocks: self.index.len() as u64,
            bytes: self.bytes,
            sorted: self.sorted,
        })
    }
}

/// Encodes a whole entry slice through a writer (tests, CLI, bench).
pub fn write_entries<W: Write>(entries: &[LogEntry], sink: W) -> io::Result<LtcSummary> {
    let mut w = LtcWriter::new(sink)?;
    for e in entries {
        w.push(e)?;
    }
    w.finish()
}

/// Encodes entries into an in-memory `ltc` image.
pub fn encode(entries: &[LogEntry]) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    write_entries(entries, &mut out)?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Column codecs
// ---------------------------------------------------------------------------

/// Closes one column segment: length prefix + bytes, then resets `col`.
fn seg(payload: &mut Vec<u8>, col: &mut Vec<u8>) {
    write_uvarint(payload, col.len() as u64);
    payload.extend_from_slice(col);
    col.clear();
}

/// Appends a delta+zigzag encoded column (deltas reset per block).
fn encode_delta_u32(records: &[LogEntry], field: fn(&LogEntry) -> u32, col: &mut Vec<u8>) {
    let mut prev = 0i64;
    for e in records {
        let v = i64::from(field(e));
        write_uvarint(col, zigzag(v - prev));
        prev = v;
    }
}

/// Encodes `records` into the 14 column segments of one block payload.
fn encode_columns(records: &[LogEntry], payload: &mut Vec<u8>, col: &mut Vec<u8>) {
    payload.clear();

    // start, timestamp: delta + zigzag.
    encode_delta_u32(records, |e| e.start, col);
    seg(payload, col);
    encode_delta_u32(records, |e| e.timestamp, col);
    seg(payload, col);
    // duration, client, as_id: plain varints.
    for e in records {
        write_uvarint(col, u64::from(e.duration));
    }
    seg(payload, col);
    for e in records {
        write_uvarint(col, u64::from(e.client.0));
    }
    seg(payload, col);
    // ip: raw LE u32 — address bits are effectively random, so a varint
    // averages five bytes and a fixed word is both smaller and decodes
    // with a single load.
    for e in records {
        col.extend_from_slice(&e.ip.0.to_le_bytes());
    }
    seg(payload, col);
    for e in records {
        write_uvarint(col, u64::from(e.as_id.0));
    }
    seg(payload, col);
    // country: per-block dictionary, first-appearance order.
    {
        let mut dict: Vec<[u8; 2]> = Vec::new();
        let mut slots: BTreeMap<[u8; 2], u64> = BTreeMap::new();
        let indices: Vec<u64> = records
            .iter()
            .map(|e| {
                *slots.entry(e.country.0).or_insert_with(|| {
                    dict.push(e.country.0);
                    dict.len() as u64 - 1
                })
            })
            .collect();
        write_uvarint(col, dict.len() as u64);
        for c in &dict {
            col.extend_from_slice(c);
        }
        for i in indices {
            write_uvarint(col, i);
        }
        seg(payload, col);
    }
    // object: per-block dictionary over small integers.
    encode_dict_u16(records, |e| e.object.0, col);
    seg(payload, col);
    // camera: raw byte per record.
    for e in records {
        col.push(e.camera);
    }
    seg(payload, col);
    // bytes, avg_bandwidth: plain varints.
    for e in records {
        write_uvarint(col, e.bytes);
    }
    seg(payload, col);
    for e in records {
        write_uvarint(col, u64::from(e.avg_bandwidth));
    }
    seg(payload, col);
    // packet_loss, cpu_util: raw LE f32 bits (bit-identical round-trip).
    for e in records {
        col.extend_from_slice(&e.packet_loss.to_bits().to_le_bytes());
    }
    seg(payload, col);
    for e in records {
        col.extend_from_slice(&e.cpu_util.to_bits().to_le_bytes());
    }
    seg(payload, col);
    // status: dictionary.
    encode_dict_u16(records, |e| e.status, col);
    seg(payload, col);
}

fn encode_dict_u16(records: &[LogEntry], field: impl Fn(&LogEntry) -> u16, col: &mut Vec<u8>) {
    let mut dict: Vec<u16> = Vec::new();
    let mut slots: BTreeMap<u16, u64> = BTreeMap::new();
    let indices: Vec<u64> = records
        .iter()
        .map(|e| {
            *slots.entry(field(e)).or_insert_with(|| {
                dict.push(field(e));
                dict.len() as u64 - 1
            })
        })
        .collect();
    write_uvarint(col, dict.len() as u64);
    for &v in &dict {
        write_uvarint(col, u64::from(v));
    }
    for i in indices {
        write_uvarint(col, i);
    }
}

/// One decoded block: borrowable struct-of-arrays column slices, reused
/// across blocks so steady-state decode performs no per-record (or even
/// per-block) allocation.
#[derive(Debug, Default, Clone)]
pub struct RecordBlock {
    /// Transfer start seconds.
    pub start: Vec<u32>,
    /// Log timestamps (stop seconds for §2.4-clean records).
    pub timestamp: Vec<u32>,
    /// Transfer durations.
    pub duration: Vec<u32>,
    /// Player ids.
    pub client: Vec<u32>,
    /// Client IPs (big-endian u32 form, as in [`Ipv4Addr`]).
    pub ip: Vec<u32>,
    /// Autonomous system ids.
    pub as_id: Vec<u16>,
    /// Country codes.
    pub country: Vec<[u8; 2]>,
    /// Object (feed) ids.
    pub object: Vec<u16>,
    /// Camera indices.
    pub camera: Vec<u8>,
    /// Bytes delivered.
    pub bytes: Vec<u64>,
    /// Average bandwidth, bits/s.
    pub avg_bandwidth: Vec<u32>,
    /// Packet loss fractions.
    pub packet_loss: Vec<f32>,
    /// Server CPU utilization fractions.
    pub cpu_util: Vec<f32>,
    /// Protocol status codes.
    pub status: Vec<u16>,
}

impl RecordBlock {
    /// Records in this block.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// True when the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    fn clear(&mut self) {
        self.start.clear();
        self.timestamp.clear();
        self.duration.clear();
        self.client.clear();
        self.ip.clear();
        self.as_id.clear();
        self.country.clear();
        self.object.clear();
        self.camera.clear();
        self.bytes.clear();
        self.avg_bandwidth.clear();
        self.packet_loss.clear();
        self.cpu_util.clear();
        self.status.clear();
    }

    /// Materializes record `i` (panics on out-of-range, like slice index).
    pub fn entry(&self, i: usize) -> LogEntry {
        LogEntry {
            timestamp: self.timestamp[i],
            start: self.start[i],
            duration: self.duration[i],
            client: ClientId(self.client[i]),
            ip: Ipv4Addr(self.ip[i]),
            as_id: AsId(self.as_id[i]),
            country: CountryCode(self.country[i]),
            object: ObjectId(self.object[i]),
            camera: self.camera[i],
            bytes: self.bytes[i],
            avg_bandwidth: self.avg_bandwidth[i],
            packet_loss: self.packet_loss[i],
            cpu_util: self.cpu_util[i],
            status: self.status[i],
        }
    }

    /// Materializes every record in block order.
    pub fn entries(&self) -> impl Iterator<Item = LogEntry> + '_ {
        (0..self.len()).map(|i| self.entry(i))
    }
}

fn take_segment<'a>(payload: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let len = usize::try_from(read_uvarint(payload, pos)?).ok()?;
    let end = pos.checked_add(len)?;
    let seg = payload.get(*pos..end)?;
    *pos = end;
    Some(seg)
}

fn decode_delta_u32(seg: &[u8], n: usize, out: &mut Vec<u32>) -> Option<()> {
    let mut pos = 0;
    let mut prev = 0i64;
    for _ in 0..n {
        let v = prev + unzigzag(read_uvarint(seg, &mut pos)?);
        out.push(u32::try_from(v).ok()?);
        prev = v;
    }
    (pos == seg.len()).then_some(())
}

fn decode_uvarint_col<T: TryFrom<u64>>(seg: &[u8], n: usize, out: &mut Vec<T>) -> Option<()> {
    let mut pos = 0;
    for _ in 0..n {
        out.push(T::try_from(read_uvarint(seg, &mut pos)?).ok()?);
    }
    (pos == seg.len()).then_some(())
}

fn decode_dict_u16(seg: &[u8], n: usize, out: &mut Vec<u16>) -> Option<()> {
    let mut pos = 0;
    let dict_len = usize::try_from(read_uvarint(seg, &mut pos)?).ok()?;
    if dict_len > n.max(1) {
        return None; // a dictionary can never outgrow its block
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(u16::try_from(read_uvarint(seg, &mut pos)?).ok()?);
    }
    for _ in 0..n {
        let i = usize::try_from(read_uvarint(seg, &mut pos)?).ok()?;
        out.push(*dict.get(i)?);
    }
    (pos == seg.len()).then_some(())
}

fn decode_u32_col(seg: &[u8], n: usize, out: &mut Vec<u32>) -> Option<()> {
    if seg.len() != n * 4 {
        return None;
    }
    for chunk in seg.chunks_exact(4) {
        out.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Some(())
}

fn decode_f32_col(seg: &[u8], n: usize, out: &mut Vec<f32>) -> Option<()> {
    if seg.len() != n * 4 {
        return None;
    }
    for chunk in seg.chunks_exact(4) {
        let bits = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        out.push(f32::from_bits(bits));
    }
    Some(())
}

/// Decodes one CRC-verified block payload into `out`. Returns `None` on
/// any structural violation (the caller treats that as a corrupt block).
fn decode_columns(payload: &[u8], n_records: usize, out: &mut RecordBlock) -> Option<()> {
    out.clear();
    let n = n_records;
    let mut pos = 0;
    decode_delta_u32(take_segment(payload, &mut pos)?, n, &mut out.start)?;
    decode_delta_u32(take_segment(payload, &mut pos)?, n, &mut out.timestamp)?;
    decode_uvarint_col(take_segment(payload, &mut pos)?, n, &mut out.duration)?;
    decode_uvarint_col(take_segment(payload, &mut pos)?, n, &mut out.client)?;
    decode_u32_col(take_segment(payload, &mut pos)?, n, &mut out.ip)?;
    decode_uvarint_col(take_segment(payload, &mut pos)?, n, &mut out.as_id)?;
    {
        let seg = take_segment(payload, &mut pos)?;
        let mut spos = 0;
        let dict_len = usize::try_from(read_uvarint(seg, &mut spos)?).ok()?;
        if dict_len > n.max(1) {
            return None;
        }
        let mut dict = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            let pair = seg.get(spos..spos + 2)?;
            dict.push([pair[0], pair[1]]);
            spos += 2;
        }
        for _ in 0..n {
            let i = usize::try_from(read_uvarint(seg, &mut spos)?).ok()?;
            out.country.push(*dict.get(i)?);
        }
        if spos != seg.len() {
            return None;
        }
    }
    decode_dict_u16(take_segment(payload, &mut pos)?, n, &mut out.object)?;
    {
        let seg = take_segment(payload, &mut pos)?;
        if seg.len() != n {
            return None;
        }
        out.camera.extend_from_slice(seg);
    }
    decode_uvarint_col(take_segment(payload, &mut pos)?, n, &mut out.bytes)?;
    decode_uvarint_col(take_segment(payload, &mut pos)?, n, &mut out.avg_bandwidth)?;
    decode_f32_col(take_segment(payload, &mut pos)?, n, &mut out.packet_loss)?;
    decode_f32_col(take_segment(payload, &mut pos)?, n, &mut out.cpu_util)?;
    decode_dict_u16(take_segment(payload, &mut pos)?, n, &mut out.status)?;
    (pos == payload.len()).then_some(())
}

// ---------------------------------------------------------------------------
// Block sources
// ---------------------------------------------------------------------------

/// Random-access byte provider the reader layers over.
///
/// The contract is *lend a view of `len` bytes at `offset`*: an in-memory
/// source lends zero-copy subslices; a file source reads into a scratch
/// buffer it owns, so memory stays bounded by one view regardless of file
/// size. A short file yields `ErrorKind::UnexpectedEof`.
pub trait BlockSource {
    /// Total length in bytes.
    fn len(&self) -> u64;

    /// True when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lends `len` bytes starting at `offset`.
    fn view(&mut self, offset: u64, len: usize) -> io::Result<&[u8]>;
}

/// Zero-copy [`BlockSource`] over an in-memory image.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    bytes: &'a [u8],
}

impl<'a> SliceSource<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }
}

impl BlockSource for SliceSource<'_> {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn view(&mut self, offset: u64, len: usize) -> io::Result<&[u8]> {
        let start = usize::try_from(offset).map_err(|_| eof("ltc view beyond slice"))?;
        self.bytes
            .get(start..start.saturating_add(len))
            .ok_or_else(|| eof("ltc view beyond slice"))
    }
}

/// Bounded-memory [`BlockSource`] over a file: seek + read into a
/// reusable scratch buffer (one block resident at a time).
#[derive(Debug)]
pub struct FileSource {
    file: std::fs::File,
    len: u64,
    scratch: Vec<u8>,
}

impl FileSource {
    /// Opens a file for block reading.
    pub fn open(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            len,
            scratch: Vec::new(),
        })
    }
}

impl BlockSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn view(&mut self, offset: u64, len: usize) -> io::Result<&[u8]> {
        if offset.saturating_add(len as u64) > self.len {
            return Err(eof("ltc view beyond file"));
        }
        self.file.seek(SeekFrom::Start(offset))?;
        self.scratch.resize(len, 0);
        self.file.read_exact(&mut self.scratch)?;
        Ok(&self.scratch)
    }
}

// ---------------------------------------------------------------------------
// Index + reader
// ---------------------------------------------------------------------------

/// Location and claimed size of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Byte offset of the block header.
    pub offset: u64,
    /// Payload length claimed by the index.
    pub payload_len: u32,
    /// Record count claimed by the index.
    pub n_records: u32,
}

/// The file's block index, from the footer or a recovery scan.
#[derive(Debug, Clone)]
pub struct LtcIndex {
    /// Blocks in file order.
    pub blocks: Vec<BlockMeta>,
    /// Total records claimed across blocks.
    pub records: u64,
    /// Whether the writer saw nondecreasing `(start, timestamp)` order.
    pub sorted: bool,
    /// False when the footer was damaged and the index was rebuilt by a
    /// sequential block scan (which conservatively clears `sorted`).
    pub from_footer: bool,
}

/// Validates the 8-byte header and builds the block index, falling back
/// to a sequential scan when the footer is missing or damaged.
pub fn read_index<S: BlockSource>(src: &mut S) -> io::Result<LtcIndex> {
    let header = src
        .view(0, HEADER_LEN as usize)
        .map_err(|_| invalid("not an ltc file: shorter than the 8-byte header"))?;
    if header[..4] != MAGIC {
        return Err(invalid("not an ltc file: bad magic"));
    }
    if header[4] != VERSION {
        return Err(invalid("unsupported ltc version"));
    }
    if let Some(index) = read_footer_index(src) {
        return Ok(index);
    }
    scan_index(src)
}

/// Attempts the O(footer) index path; `None` sends the caller to the scan.
fn read_footer_index<S: BlockSource>(src: &mut S) -> Option<LtcIndex> {
    let len = src.len();
    if len < HEADER_LEN + FOOTER_TAIL_LEN as u64 {
        return None;
    }
    let tail = src
        .view(len - FOOTER_TAIL_LEN as u64, FOOTER_TAIL_LEN)
        .ok()?;
    if tail[8..12] != FOOTER_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let fpayload_len = u64::from(u32::from_le_bytes([tail[4], tail[5], tail[6], tail[7]]));
    let footer_start = (len - FOOTER_TAIL_LEN as u64).checked_sub(fpayload_len)?;
    if footer_start < HEADER_LEN {
        return None;
    }
    let fpayload = src.view(footer_start, fpayload_len as usize).ok()?;
    if crc32(fpayload) != crc {
        return None;
    }
    let mut pos = 0;
    let n_blocks = usize::try_from(read_uvarint(fpayload, &mut pos)?).ok()?;
    let mut blocks = Vec::with_capacity(n_blocks.min(1 << 20));
    let mut offset = HEADER_LEN;
    let mut total = 0u64;
    for _ in 0..n_blocks {
        let payload_len = u32::try_from(read_uvarint(fpayload, &mut pos)?).ok()?;
        let n_records = u32::try_from(read_uvarint(fpayload, &mut pos)?).ok()?;
        blocks.push(BlockMeta {
            offset,
            payload_len,
            n_records,
        });
        offset = offset.checked_add(BLOCK_HEADER_LEN as u64 + u64::from(payload_len))?;
        total += u64::from(n_records);
    }
    // The blocks must exactly tile the space between header and footer.
    if offset != footer_start {
        return None;
    }
    let records = read_uvarint(fpayload, &mut pos)?;
    let flags = *fpayload.get(pos)?;
    pos += 1;
    if pos != fpayload.len() || records != total {
        return None;
    }
    Some(LtcIndex {
        blocks,
        records,
        sorted: flags & 1 != 0,
        from_footer: true,
    })
}

/// Sequentially walks block headers from the top of the file, keeping
/// every block that fits; recovers the intact prefix of truncated files.
fn scan_index<S: BlockSource>(src: &mut S) -> io::Result<LtcIndex> {
    let len = src.len();
    let mut blocks = Vec::new();
    let mut records = 0u64;
    let mut offset = HEADER_LEN;
    while offset + BLOCK_HEADER_LEN as u64 <= len {
        let header = src.view(offset, BLOCK_HEADER_LEN)?;
        let payload_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let n_records = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let next = offset + BLOCK_HEADER_LEN as u64 + u64::from(payload_len);
        if next > len {
            break; // truncated tail block
        }
        blocks.push(BlockMeta {
            offset,
            payload_len,
            n_records,
        });
        records += u64::from(n_records);
        offset = next;
    }
    Ok(LtcIndex {
        blocks,
        records,
        sorted: false,
        from_footer: false,
    })
}

/// Corruption accounting of a read pass (mirrors the text path's
/// malformed-line counts: damage is counted, never fatal).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Blocks rejected (CRC mismatch, header/index disagreement, or
    /// undecodable columns).
    pub corrupt_blocks: u64,
    /// Records lost inside rejected blocks, per the index claim.
    pub corrupt_records: u64,
    /// First corruption observed, for diagnostics.
    pub first_corrupt: Option<String>,
}

impl ReadStats {
    fn note(&mut self, block: usize, n_records: u32, what: &str) {
        self.corrupt_blocks += 1;
        self.corrupt_records += u64::from(n_records);
        if self.first_corrupt.is_none() {
            self.first_corrupt = Some(format!("block {block}: {what}"));
        }
    }
}

/// Sequential block reader: verifies CRCs, decodes each block into a
/// reused [`RecordBlock`], and skips (while counting) corrupt blocks.
#[derive(Debug)]
pub struct BlockReader<S: BlockSource> {
    src: S,
    index: LtcIndex,
    next: usize,
    block: RecordBlock,
    stats: ReadStats,
}

impl<S: BlockSource> BlockReader<S> {
    /// Opens a source: header validation plus index construction.
    pub fn open(mut src: S) -> io::Result<Self> {
        let index = read_index(&mut src)?;
        Ok(Self {
            src,
            index,
            next: 0,
            block: RecordBlock::default(),
            stats: ReadStats::default(),
        })
    }

    /// The block index in use.
    pub fn index(&self) -> &LtcIndex {
        &self.index
    }

    /// Corruption accounting so far.
    pub fn stats(&self) -> &ReadStats {
        &self.stats
    }

    /// Decodes the next intact block, skipping and counting corrupt ones.
    /// Returns `None` at end of file.
    pub fn next_block(&mut self) -> io::Result<Option<&RecordBlock>> {
        while self.next < self.index.blocks.len() {
            let i = self.next;
            self.next += 1;
            let meta = self.index.blocks[i];
            match fetch_block(&mut self.src, meta, &mut self.block) {
                Ok(()) => return Ok(Some(&self.block)),
                Err(FetchError::Corrupt(what)) => {
                    self.stats.note(i, meta.n_records, what);
                }
                Err(FetchError::Io(e)) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Materializes every intact record, returning corruption stats.
    pub fn read_all(mut self) -> io::Result<(Vec<LogEntry>, ReadStats)> {
        let mut out = Vec::new();
        while let Some(block) = self.next_block()? {
            out.extend(block.entries());
        }
        Ok((out, self.stats))
    }
}

enum FetchError {
    /// The block is damaged; skip and count it.
    Corrupt(&'static str),
    /// The source itself failed; abort the read.
    Io(io::Error),
}

/// A parsed 12-byte block header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Payload bytes following the header.
    pub payload_len: u32,
    /// Records encoded in the payload.
    pub n_records: u32,
    /// IEEE CRC-32 of the payload.
    pub crc: u32,
}

/// Parses a [`BLOCK_HEADER_LEN`]-byte block header.
pub fn parse_block_header(bytes: &[u8]) -> Option<BlockHeader> {
    let bytes = bytes.get(..BLOCK_HEADER_LEN)?;
    Some(BlockHeader {
        payload_len: u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
        n_records: u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        crc: u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
    })
}

/// CRC-checks and decodes one block payload into `out`; `false` means
/// the block is corrupt (the caller should count and skip it). Used by
/// the parallel block-ingest workers, which fetch payload bytes
/// themselves.
pub fn decode_block(payload: &[u8], header: BlockHeader, out: &mut RecordBlock) -> bool {
    payload.len() == header.payload_len as usize
        && crc32(payload) == header.crc
        && decode_columns(payload, header.n_records as usize, out).is_some()
}

/// Reads, CRC-checks and decodes one block into `out`.
fn fetch_block<S: BlockSource>(
    src: &mut S,
    meta: BlockMeta,
    out: &mut RecordBlock,
) -> Result<(), FetchError> {
    let header = match src.view(meta.offset, BLOCK_HEADER_LEN) {
        Ok(h) => h,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            return Err(FetchError::Corrupt("truncated block header"));
        }
        Err(e) => return Err(FetchError::Io(e)),
    };
    let Some(parsed) = parse_block_header(header) else {
        return Err(FetchError::Corrupt("truncated block header"));
    };
    if parsed.payload_len != meta.payload_len || parsed.n_records != meta.n_records {
        return Err(FetchError::Corrupt("block header disagrees with index"));
    }
    let payload = match src.view(
        meta.offset + BLOCK_HEADER_LEN as u64,
        parsed.payload_len as usize,
    ) {
        Ok(p) => p,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            return Err(FetchError::Corrupt("truncated block payload"));
        }
        Err(e) => return Err(FetchError::Io(e)),
    };
    if crc32(payload) != parsed.crc {
        return Err(FetchError::Corrupt("crc mismatch"));
    }
    if decode_columns(payload, parsed.n_records as usize, out).is_none() {
        return Err(FetchError::Corrupt("undecodable columns"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEntryBuilder;
    use crate::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};

    fn sample_entries(n: u32) -> Vec<LogEntry> {
        (0..n)
            .map(|i| {
                LogEntryBuilder::new()
                    .span(i * 7, (i % 13) + 1)
                    .client(ClientId(i % 29))
                    .origin(
                        Ipv4Addr(0x0A00_0000 | i),
                        AsId((i % 11) as u16),
                        CountryCode(if i % 3 == 0 { *b"BR" } else { *b"US" }),
                    )
                    .object(ObjectId((i % 2) as u16), (i % 48) as u8)
                    .transfer_stats(u64::from(i) * 1_000, 34_000 + i, 0.01)
                    .server(0.05, if i % 50 == 0 { 404 } else { 200 })
                    .build()
            })
            .collect()
    }

    #[test]
    fn round_trips_bit_identically() {
        let entries = sample_entries(1_000);
        let image = encode(&entries).expect("encode");
        assert!(is_ltc(&image));
        let (back, stats) = BlockReader::open(SliceSource::new(&image))
            .expect("open")
            .read_all()
            .expect("read");
        assert_eq!(back, entries);
        assert_eq!(stats, ReadStats::default());
    }

    #[test]
    fn round_trips_across_block_boundaries() {
        let entries = sample_entries(700);
        let mut image = Vec::new();
        let mut w = LtcWriter::with_block_records(&mut image, 256).expect("writer");
        for e in &entries {
            w.push(e).expect("push");
        }
        let summary = w.finish().expect("finish");
        assert_eq!(summary.records, 700);
        assert_eq!(summary.blocks, 3);
        assert!(summary.sorted);
        assert_eq!(summary.bytes, image.len() as u64);
        let reader = BlockReader::open(SliceSource::new(&image)).expect("open");
        assert!(reader.index().from_footer);
        assert!(reader.index().sorted);
        assert_eq!(reader.index().records, 700);
        let (back, _) = reader.read_all().expect("read");
        assert_eq!(back, entries);
    }

    #[test]
    fn preserves_corrupt_records_and_odd_floats() {
        // §2.4-reject material (bad status, inconsistent timestamps,
        // out-of-range fractions) must survive the round trip untouched.
        let mut entries = sample_entries(10);
        entries[1].timestamp = entries[1].start; // inconsistent vs stop
        entries[2].status = 500;
        entries[3].packet_loss = 1.5;
        entries[4].cpu_util = -0.0;
        entries[5].packet_loss = f32::from_bits(0x7FC0_0001); // NaN payload
        let image = encode(&entries).expect("encode");
        let (back, _) = BlockReader::open(SliceSource::new(&image))
            .expect("open")
            .read_all()
            .expect("read");
        assert_eq!(back.len(), entries.len());
        for (a, b) in back.iter().zip(&entries) {
            assert_eq!(a.packet_loss.to_bits(), b.packet_loss.to_bits());
            assert_eq!(a.cpu_util.to_bits(), b.cpu_util.to_bits());
            assert_eq!(a.status, b.status);
            assert_eq!(a.timestamp, b.timestamp);
        }
    }

    #[test]
    fn unsorted_input_clears_the_sorted_flag() {
        let mut entries = sample_entries(50);
        entries.swap(10, 40);
        let image = encode(&entries).expect("encode");
        let reader = BlockReader::open(SliceSource::new(&image)).expect("open");
        assert!(!reader.index().sorted);
        let (back, _) = reader.read_all().expect("read");
        assert_eq!(back, entries); // order is preserved either way
    }

    #[test]
    fn bit_flip_rejects_only_the_damaged_block() {
        let entries = sample_entries(900);
        let mut image = Vec::new();
        let mut w = LtcWriter::with_block_records(&mut image, 300).expect("writer");
        for e in &entries {
            w.push(e).expect("push");
        }
        w.finish().expect("finish");
        // Flip one payload bit in the middle block.
        let index = read_index(&mut SliceSource::new(&image)).expect("index");
        let mid = index.blocks[1];
        let at = usize::try_from(mid.offset).expect("offset") + BLOCK_HEADER_LEN + 17;
        image[at] ^= 0x10;
        let (back, stats) = BlockReader::open(SliceSource::new(&image))
            .expect("open")
            .read_all()
            .expect("read");
        assert_eq!(stats.corrupt_blocks, 1);
        assert_eq!(stats.corrupt_records, 300);
        assert!(stats
            .first_corrupt
            .as_deref()
            .is_some_and(|s| s.contains("crc")));
        let mut expect = entries[..300].to_vec();
        expect.extend_from_slice(&entries[600..]);
        assert_eq!(back, expect);
    }

    #[test]
    fn truncated_file_recovers_leading_blocks() {
        let entries = sample_entries(900);
        let mut image = Vec::new();
        let mut w = LtcWriter::with_block_records(&mut image, 300).expect("writer");
        for e in &entries {
            w.push(e).expect("push");
        }
        w.finish().expect("finish");
        let index = read_index(&mut SliceSource::new(&image)).expect("index");
        // Cut mid-way through the last block's payload (footer lost too).
        let cut = usize::try_from(index.blocks[2].offset).expect("offset") + BLOCK_HEADER_LEN + 5;
        let truncated = &image[..cut];
        let reader = BlockReader::open(SliceSource::new(truncated)).expect("open");
        assert!(!reader.index().from_footer);
        assert!(!reader.index().sorted); // recovery is conservative
        assert_eq!(reader.index().blocks.len(), 2);
        let (back, stats) = reader.read_all().expect("read");
        assert_eq!(back, entries[..600]);
        assert_eq!(stats.corrupt_blocks, 0);
    }

    #[test]
    fn corrupt_footer_falls_back_to_scan() {
        let entries = sample_entries(400);
        let mut image = encode(&entries).expect("encode");
        let at = image.len() - 5; // inside the footer tail
        image[at] ^= 0xFF;
        let reader = BlockReader::open(SliceSource::new(&image)).expect("open");
        assert!(!reader.index().from_footer);
        let (back, _) = reader.read_all().expect("read");
        assert_eq!(back, entries);
    }

    #[test]
    fn rejects_non_ltc_input() {
        assert!(BlockReader::open(SliceSource::new(b"not a trace")).is_err());
        assert!(BlockReader::open(SliceSource::new(b"")).is_err());
        assert!(!is_ltc(b"LTCx"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let image = encode(&[]).expect("encode");
        let reader = BlockReader::open(SliceSource::new(&image)).expect("open");
        assert!(reader.index().from_footer);
        assert_eq!(reader.index().records, 0);
        let (back, stats) = reader.read_all().expect("read");
        assert!(back.is_empty());
        assert_eq!(stats.corrupt_blocks, 0);
    }

    #[test]
    fn file_source_matches_slice_source() {
        let entries = sample_entries(500);
        let image = encode(&entries).expect("encode");
        let dir = std::env::temp_dir().join("lsw-ltc-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join(format!("roundtrip-{}.ltc", std::process::id()));
        std::fs::write(&path, &image).expect("write");
        let (from_file, _) = BlockReader::open(FileSource::open(&path).expect("open file"))
            .expect("reader")
            .read_all()
            .expect("read");
        std::fs::remove_file(&path).ok();
        assert_eq!(from_file, entries);
    }

    #[test]
    fn compresses_against_the_text_format() {
        let entries = sample_entries(4_096);
        let image = encode(&entries).expect("encode");
        let text = crate::wms::format_log(&entries);
        assert!(
            image.len() * 2 < text.len(),
            "ltc ({}) should be well under half of wms text ({})",
            image.len(),
            text.len()
        );
    }
}
