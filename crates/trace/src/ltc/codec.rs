//! Primitive encodings of the `ltc` container: LEB128 varints, zigzag
//! mapping for signed deltas, and the IEEE CRC-32 that guards each block.
//!
//! Every decoder is bounds-checked and total: malformed input yields
//! `None`, never a panic — the container layer turns that into a corrupt
//! block that is counted and skipped. These functions are pure and
//! allocation-free, which also makes them the Miri entry point for the
//! format (`ltc::codec::tests`).

/// Longest legal LEB128 encoding of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_UVARINT_BYTES: usize = 10;

/// Appends the LEB128 encoding of `v` to `out`.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        // lsw::allow(L011): LEB128 keeps the low 7 bits per byte on purpose
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    // lsw::allow(L011): loop guard proves v < 0x80, so the cast is exact
    out.push(v as u8);
}

/// Decodes one LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos` past it. Returns `None` on truncation, on an encoding longer
/// than [`MAX_UVARINT_BYTES`], or on bits overflowing 64.
#[inline]
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    // Single-byte fast path: most column values (deltas, dictionary
    // indices, small ids) fit in 7 bits, and this sits on the block
    // decode hot path once per value.
    let &first = buf.get(*pos)?;
    if first < 0x80 {
        *pos += 1;
        return Some(u64::from(first));
    }
    read_uvarint_multi(buf, pos)
}

/// Multi-byte continuation of [`read_uvarint`].
fn read_uvarint_multi(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return None; // would overflow u64
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None; // more than MAX_UVARINT_BYTES continuation bits
        }
    }
}

/// Maps a signed delta onto the unsigned varint domain so small negative
/// and positive deltas both encode in one byte.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup tables
/// for slicing-by-8, built at compile time. `CRC_TABLES[0]` is the
/// classic byte-at-a-time table; table `k` advances a byte `k` positions.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        // lsw::allow(L011): table index is bounded by the loop guard at 256
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// IEEE CRC-32 of `bytes` (the common `crc32`/zlib checksum), processed
/// eight bytes per step (slicing-by-8) — the checksum runs over every
/// block payload, so the byte-at-a-time version would tax block decode
/// by tens of nanoseconds per record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trips_edge_values() {
        let cases = [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            assert!(buf.len() <= MAX_UVARINT_BYTES);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_round_trips_exhaustive_small() {
        let mut buf = Vec::new();
        for v in 0u64..=70_000 {
            buf.clear();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn uvarint_rejects_truncation() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf[..cut], &mut pos), None, "cut {cut}");
        }
    }

    #[test]
    fn uvarint_rejects_overlong_and_overflow() {
        // Eleven continuation bytes: more bits than u64 holds.
        let overlong = [0x80u8; 10];
        let mut buf = overlong.to_vec();
        buf.push(0x01);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), None);
        // Ten bytes whose top byte sets bits beyond 64.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x7f);
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [
            0i64,
            1,
            -1,
            2,
            -2,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        // Small magnitudes stay small: one-byte varints either sign.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-64), 127);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_sliced_matches_bytewise() {
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
            }
            !crc
        }
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 65, 1024] {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
