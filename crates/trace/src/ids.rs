//! Compact typed identifiers.
//!
//! The paper identifies a *client* by the player ID recorded in each log
//! entry (§2.2), maps client IPs to autonomous systems and countries
//! (§3.1), and distinguishes two live objects (§2.1). These newtypes keep
//! those spaces from being confused while staying 4 bytes or less, so a
//! 5.5-million-entry trace stays comfortably in memory.

use serde::{Deserialize, Serialize};

/// A client, identified by its media-player ID (one per user install).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl ClientId {
    /// The player-ID string as it would appear in a WMS log
    /// (a GUID-shaped identifier derived deterministically from the id).
    pub fn player_guid(&self) -> String {
        // Derive 128 pseudo-random-looking bits from the id with two rounds
        // of a 64-bit mixer; purely cosmetic but stable.
        let a = mix(self.0 as u64 ^ 0x5851_f42d_4c95_7f2d);
        let b = mix(a ^ 0x1405_7b7e_f767_814f);
        format!(
            "{{{:08x}-{:04x}-{:04x}-{:04x}-{:012x}}}",
            (a >> 32) as u32,
            (a >> 16) as u16,
            a as u16,
            (b >> 48) as u16,
            b & 0xffff_ffff_ffff
        )
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

/// A live streaming object (feed). The paper's trace has exactly two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u16);

impl ObjectId {
    /// The URI stem as it would appear in a WMS log.
    pub fn uri(&self) -> String {
        format!("/live/feed{}.asf", self.0)
    }
}

/// An autonomous system (AS) number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsId(pub u16);

/// An IPv4 address stored as a host-order u32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Self(u32::from(a) << 24 | u32::from(b) << 16 | u32::from(c) << 8 | u32::from(d))
    }

    /// The four octets, most significant first.
    pub fn octets(&self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl std::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl std::str::FromStr for Ipv4Addr {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in &mut octets {
            *o = parts
                .next()
                .ok_or_else(|| format!("bad IPv4 address: {s}"))?
                .parse::<u8>()
                .map_err(|e| format!("bad IPv4 address {s}: {e}"))?;
        }
        if parts.next().is_some() {
            return Err(format!("bad IPv4 address: {s}"));
        }
        Ok(Self::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }
}

/// ISO-3166-ish two-letter country code, stored as two ASCII bytes.
///
/// The paper's client population spans 11 countries (Fig 2 right):
/// BR, US, AR, JP, DE, CH, AU, BE, BO, SG, SV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Creates a country code from a 2-letter string.
    pub fn new(code: &str) -> Result<Self, String> {
        let bytes = code.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_uppercase()) {
            return Err(format!(
                "country code must be two uppercase ASCII letters, got {code:?}"
            ));
        }
        Ok(Self([bytes[0], bytes[1]]))
    }

    /// The code as a `&str`.
    pub fn as_str(&self) -> &str {
        // lsw::allow(L005): new() only accepts two ASCII uppercase bytes
        std::str::from_utf8(&self.0).expect("constructed from ASCII")
    }

    /// The 11 countries observed in the paper's trace (Fig 2 right),
    /// ordered by transfer share (Brazil first, overwhelmingly).
    pub const PAPER_COUNTRIES: [&'static str; 11] = [
        "BR", "US", "AR", "JP", "DE", "CH", "AU", "BE", "BO", "SG", "SV",
    ];
}

impl std::fmt::Display for CountryCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn player_guid_is_stable_and_distinct() {
        let a = ClientId(1).player_guid();
        let b = ClientId(1).player_guid();
        let c = ClientId(2).player_guid();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 38); // {8-4-4-4-12}
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn object_uri() {
        assert_eq!(ObjectId(0).uri(), "/live/feed0.asf");
        assert_eq!(ObjectId(1).uri(), "/live/feed1.asf");
    }

    #[test]
    fn ipv4_round_trip() {
        let ip = Ipv4Addr::from_octets(200, 17, 34, 5);
        assert_eq!(ip.to_string(), "200.17.34.5");
        assert_eq!(Ipv4Addr::from_str("200.17.34.5").unwrap(), ip);
        assert_eq!(ip.octets(), [200, 17, 34, 5]);
    }

    #[test]
    fn ipv4_rejects_garbage() {
        assert!(Ipv4Addr::from_str("1.2.3").is_err());
        assert!(Ipv4Addr::from_str("1.2.3.4.5").is_err());
        assert!(Ipv4Addr::from_str("1.2.3.256").is_err());
        assert!(Ipv4Addr::from_str("a.b.c.d").is_err());
    }

    #[test]
    fn country_code_validation() {
        assert_eq!(CountryCode::new("BR").unwrap().as_str(), "BR");
        assert!(CountryCode::new("br").is_err());
        assert!(CountryCode::new("BRA").is_err());
        assert!(CountryCode::new("B").is_err());
        assert_eq!(CountryCode::PAPER_COUNTRIES.len(), 11);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ClientId(1) < ClientId(2));
        assert!(AsId(5) > AsId(4));
    }
}
