//! The per-transfer log record, modeled on Windows Media Server logging.
//!
//! §2.3 of the paper lists what each WMS log entry carries: client
//! identification (IP, player ID), requested object URI, transfer
//! statistics (packet loss, average bandwidth), server load (CPU), status,
//! and a timestamp in *seconds* — the coarse resolution responsible for the
//! paper's `⌊t⌋+1` display convention. [`LogEntry`] captures those fields
//! compactly (48 bytes) so the full 5.5M-transfer trace fits in memory.

use crate::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use serde::{Deserialize, Serialize};

/// One client/server request/response pair: a single unicast transfer.
///
/// Times are seconds since the trace epoch (the start of log collection).
/// Like the real WMS, the entry is *logged when the transfer stops*;
/// [`LogEntry::timestamp`] therefore equals [`LogEntry::stop`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// When the entry was written (== transfer stop time), whole seconds.
    pub timestamp: u32,
    /// Transfer start time, whole seconds.
    pub start: u32,
    /// Transfer duration in seconds (`stop - start`).
    pub duration: u32,
    /// The requesting client (player ID).
    pub client: ClientId,
    /// Client IP address at request time.
    pub ip: Ipv4Addr,
    /// Autonomous system the IP maps to.
    pub as_id: AsId,
    /// Country the AS is registered in.
    pub country: CountryCode,
    /// Which live object (feed) was requested.
    pub object: ObjectId,
    /// Camera the feed was showing when the transfer started (0..48).
    pub camera: u8,
    /// Bytes delivered over the transfer.
    pub bytes: u64,
    /// Average bandwidth over the transfer, bits per second.
    pub avg_bandwidth: u32,
    /// Packet loss rate over the transfer, fraction in [0, 1].
    pub packet_loss: f32,
    /// Server CPU utilization when the entry was logged, fraction in [0, 1].
    pub cpu_util: f32,
    /// Protocol status code (200 = OK; the sanitizer keeps only 2xx).
    pub status: u16,
}

impl LogEntry {
    /// Transfer stop time in whole seconds.
    pub fn stop(&self) -> u32 {
        self.start.saturating_add(self.duration)
    }

    /// Transfer duration under the paper's `⌊t⌋+1` log-display convention.
    pub fn display_duration(&self) -> f64 {
        self.duration as f64 + 1.0
    }

    /// True when the transfer succeeded (2xx status).
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Internal consistency check; returns a description of the first
    /// violated invariant, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.timestamp != self.stop() {
            return Err(format!(
                "timestamp {} != stop {} (WMS logs at transfer stop)",
                self.timestamp,
                self.stop()
            ));
        }
        if !(0.0..=1.0).contains(&self.packet_loss) {
            return Err(format!("packet_loss {} outside [0,1]", self.packet_loss));
        }
        if !(0.0..=1.0).contains(&self.cpu_util) {
            return Err(format!("cpu_util {} outside [0,1]", self.cpu_util));
        }
        Ok(())
    }
}

/// Convenience builder used by the generator, the simulator and tests.
#[derive(Debug, Clone)]
pub struct LogEntryBuilder {
    entry: LogEntry,
}

impl Default for LogEntryBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LogEntryBuilder {
    /// Starts from an all-defaults entry (zero times, client 0, feed 0).
    pub fn new() -> Self {
        Self {
            entry: LogEntry {
                timestamp: 0,
                start: 0,
                duration: 0,
                client: ClientId(0),
                ip: Ipv4Addr(0),
                as_id: AsId(0),
                country: CountryCode(*b"BR"),
                object: ObjectId(0),
                camera: 0,
                bytes: 0,
                avg_bandwidth: 0,
                packet_loss: 0.0,
                cpu_util: 0.0,
                status: 200,
            },
        }
    }

    /// Sets start time and duration (and the stop-time timestamp).
    pub fn span(mut self, start: u32, duration: u32) -> Self {
        self.entry.start = start;
        self.entry.duration = duration;
        self.entry.timestamp = start.saturating_add(duration);
        self
    }

    /// Sets the client.
    pub fn client(mut self, client: ClientId) -> Self {
        self.entry.client = client;
        self
    }

    /// Sets network origin fields.
    pub fn origin(mut self, ip: Ipv4Addr, as_id: AsId, country: CountryCode) -> Self {
        self.entry.ip = ip;
        self.entry.as_id = as_id;
        self.entry.country = country;
        self
    }

    /// Sets the requested object and camera.
    pub fn object(mut self, object: ObjectId, camera: u8) -> Self {
        self.entry.object = object;
        self.entry.camera = camera;
        self
    }

    /// Sets transfer statistics.
    pub fn transfer_stats(mut self, bytes: u64, avg_bandwidth: u32, packet_loss: f32) -> Self {
        self.entry.bytes = bytes;
        self.entry.avg_bandwidth = avg_bandwidth;
        self.entry.packet_loss = packet_loss;
        self
    }

    /// Sets server-side fields.
    pub fn server(mut self, cpu_util: f32, status: u16) -> Self {
        self.entry.cpu_util = cpu_util;
        self.entry.status = status;
        self
    }

    /// Finishes the entry.
    pub fn build(self) -> LogEntry {
        self.entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_consistent_entry() {
        let e = LogEntryBuilder::new()
            .span(100, 50)
            .client(ClientId(7))
            .object(ObjectId(1), 12)
            .transfer_stats(500_000, 34_000, 0.01)
            .server(0.05, 200)
            .build();
        assert_eq!(e.stop(), 150);
        assert_eq!(e.timestamp, 150);
        assert!(e.is_success());
        assert!(e.validate().is_ok());
        assert_eq!(e.display_duration(), 51.0);
    }

    #[test]
    fn validate_catches_timestamp_mismatch() {
        let mut e = LogEntryBuilder::new().span(10, 5).build();
        e.timestamp = 99;
        assert!(e.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_fractions() {
        let mut e = LogEntryBuilder::new().span(0, 1).build();
        e.packet_loss = 1.5;
        assert!(e.validate().is_err());
        e.packet_loss = 0.0;
        e.cpu_util = -0.1;
        assert!(e.validate().is_err());
    }

    #[test]
    fn zero_duration_transfers_allowed() {
        // The 1-second log resolution means sub-second transfers appear as
        // duration 0; the paper's ⌊t⌋+1 convention displays them as 1.
        let e = LogEntryBuilder::new().span(42, 0).build();
        assert_eq!(e.stop(), 42);
        assert_eq!(e.display_duration(), 1.0);
        assert!(e.validate().is_ok());
    }

    #[test]
    fn non_success_status() {
        let e = LogEntryBuilder::new().span(0, 1).server(0.0, 404).build();
        assert!(!e.is_success());
    }

    #[test]
    fn entry_is_compact() {
        // Keep the record small: a 5.5M-entry trace must stay in memory.
        assert!(std::mem::size_of::<LogEntry>() <= 56);
    }
}
