//! # lsw-trace — trace data model for live streaming media workloads
//!
//! This crate defines everything that touches *trace data* in the
//! reproduction of Veloso et al. (IMC 2002):
//!
//! * [`ids`] — compact typed identifiers (clients, objects, ASes, IPs, …).
//! * [`event`] — the per-transfer [`LogEntry`] record
//!   modeled on Windows Media Server 4.1 logging (§2.3 of the paper),
//!   including its 1-second timestamp resolution.
//! * [`wms`] — a textual, W3C-style wire format for log entries with a
//!   writer and a strict parser, so traces can round-trip through files.
//! * [`ltc`] — the columnar binary trace container: blocked
//!   struct-of-arrays encoding with per-block CRCs and a footer index,
//!   the fast path for repeated re-analysis of the same trace.
//! * [`trace`] — the [`Trace`] container with summary
//!   statistics (Table 1).
//! * [`sanitize`] — the paper's §2.4 log sanitization: dropping entries
//!   that span log-harvest boundaries, and the server-overload audit.
//! * [`concurrency`] — sweep-line counting of concurrent transfers and
//!   concurrent clients over time (Figs 3, 4, 15, 16).
//! * [`schedule`] — replay schedule extraction: reducing a trace (text
//!   or columnar) to the start-ordered, replayable transfer list that
//!   drives the `lsw-replay` load harness.
//! * [`session`] — the sessionizer: grouping a client's transfers into
//!   sessions under the timeout `T_o` (§2.2), exposing session ON/OFF
//!   times, transfers-per-session and intra-session interarrivals
//!   (Figs 9–14).
//!
//! The crate is deliberately independent of *how* traces are produced —
//! both the synthetic generator (`lsw-core`) and the simulator (`lsw-sim`)
//! emit [`event::LogEntry`] values, and the characterizer (`lsw-analysis`)
//! consumes them through [`trace::Trace`].

#![warn(missing_docs)]

pub mod concurrency;
pub mod event;
pub mod ids;
pub mod ltc;
pub mod sanitize;
pub mod schedule;
pub mod session;
pub mod trace;
pub mod wms;

pub use event::LogEntry;
pub use ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
pub use session::{Session, SessionConfig, Sessions};
pub use trace::{Trace, TraceSummary};
