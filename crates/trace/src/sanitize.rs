//! Log sanitization, after §2.4 of the paper.
//!
//! The paper found a small number of pathological entries — activities
//! "spanning durations longer than the 28-day period of the trace",
//! attributed to accesses that crossed multiple daily log harvests — and
//! excluded them. It also audited server CPU load to rule out overload
//! effects (utilization below 10% for over 99.99% of the time).
//!
//! [`sanitize`] reproduces both steps: it drops invalid entries into a
//! typed reject pile and computes the overload audit from the surviving
//! entries.

use crate::event::LogEntry;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Why an entry was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// Duration exceeds the whole trace period (the paper's harvest-spanning
    /// anomaly).
    SpansTracePeriod,
    /// The transfer starts after the collection horizon.
    StartsBeyondHorizon,
    /// Stop time overflows or precedes start.
    InconsistentTimestamps,
    /// Non-2xx protocol status.
    FailedStatus,
    /// Malformed statistics (loss/CPU outside [0, 1]).
    MalformedStats,
}

/// Outcome of sanitizing a raw entry list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SanitizeReport {
    /// Entries examined.
    pub examined: usize,
    /// Entries kept.
    pub kept: usize,
    /// Rejects per reason.
    pub rejects: Vec<(RejectReason, usize)>,
    /// Fraction of (per-second) time the server CPU stayed below 10%.
    pub underload_time_fraction: f64,
    /// Fraction of transfers logged while server CPU was below 10%.
    pub underload_transfer_fraction: f64,
}

impl SanitizeReport {
    /// Total rejected entries.
    pub fn rejected(&self) -> usize {
        self.rejects.iter().map(|(_, n)| n).sum()
    }

    /// The paper's §2.4 conclusion holds when overloads are "extremely
    /// rare": below-threshold fractions above the given bar.
    pub fn overload_is_rare(&self, bar: f64) -> bool {
        self.underload_time_fraction >= bar && self.underload_transfer_fraction >= bar
    }
}

/// CPU threshold used in the §2.4 audit.
pub const CPU_THRESHOLD: f32 = 0.10;

/// Sanitizes raw entries into a [`Trace`], reproducing §2.4.
///
/// `horizon` is the collection period in seconds. Rejected entries are
/// counted by reason; surviving entries feed the CPU-load audit, which
/// averages the per-entry CPU readings into one-second bins (as the paper
/// did) and reports the fraction of bins below 10%.
pub fn sanitize(entries: Vec<LogEntry>, horizon: u32) -> (Trace, SanitizeReport) {
    let examined = entries.len();
    let mut kept = Vec::with_capacity(entries.len());
    let mut counts: std::collections::HashMap<RejectReason, usize> =
        std::collections::HashMap::new();

    for e in entries {
        let reason = classify(&e, horizon);
        match reason {
            None => kept.push(e),
            Some(r) => *counts.entry(r).or_insert(0) += 1,
        }
    }

    // CPU audit: average readings per 1-second bin over bins that have
    // readings, then measure the below-threshold fraction (§2.4).
    let mut bin_sum: std::collections::HashMap<u32, (f64, u32)> = std::collections::HashMap::new();
    let mut under_transfers = 0usize;
    for e in &kept {
        let slot = bin_sum.entry(e.timestamp).or_insert((0.0, 0));
        slot.0 += e.cpu_util as f64;
        slot.1 += 1;
        if e.cpu_util < CPU_THRESHOLD {
            under_transfers += 1;
        }
    }
    let under_bins = bin_sum
        .values() // lsw::allow(L001): count() of a predicate is order-insensitive
        .filter(|(s, n)| s / f64::from(*n) < f64::from(CPU_THRESHOLD))
        .count();
    let underload_time_fraction = if bin_sum.is_empty() {
        1.0
    } else {
        under_bins as f64 / bin_sum.len() as f64
    };
    let underload_transfer_fraction = if kept.is_empty() {
        1.0
    } else {
        under_transfers as f64 / kept.len() as f64
    };

    // The sort key below is a total order (count desc, then reason), so
    // the hash-ordered starting permutation cannot reach the output.
    // lsw::allow(L001): re-sorted below under a total order
    let mut rejects: Vec<(RejectReason, usize)> = counts.into_iter().collect();
    rejects.sort_by_key(|&(reason, n)| (std::cmp::Reverse(n), reason));

    let report = SanitizeReport {
        examined,
        kept: kept.len(),
        rejects,
        underload_time_fraction,
        underload_transfer_fraction,
    };
    (Trace::from_entries(kept, horizon), report)
}

/// Classifies an entry against the §2.4 rules; `None` means it is clean.
///
/// Public so the streaming engine (`lsw-stream`) can apply the *same*
/// per-entry rejection rules at ingest time and report the same
/// accounting as this batch path.
pub fn classify(e: &LogEntry, horizon: u32) -> Option<RejectReason> {
    if e.duration as u64 > horizon as u64 {
        return Some(RejectReason::SpansTracePeriod);
    }
    if e.start >= horizon {
        return Some(RejectReason::StartsBeyondHorizon);
    }
    if e.timestamp != e.stop() || (e.start as u64 + e.duration as u64) > u32::MAX as u64 {
        return Some(RejectReason::InconsistentTimestamps);
    }
    if !e.is_success() {
        return Some(RejectReason::FailedStatus);
    }
    if !(0.0..=1.0).contains(&e.packet_loss) || !(0.0..=1.0).contains(&e.cpu_util) {
        return Some(RejectReason::MalformedStats);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEntryBuilder;
    use crate::ids::ClientId;

    const DAY: u32 = 86_400;

    fn ok_entry(start: u32, dur: u32) -> LogEntry {
        LogEntryBuilder::new()
            .span(start, dur)
            .client(ClientId(1))
            .build()
    }

    #[test]
    fn clean_entries_survive() {
        let (trace, report) = sanitize(vec![ok_entry(0, 10), ok_entry(100, 5)], DAY);
        assert_eq!(trace.len(), 2);
        assert_eq!(report.rejected(), 0);
        assert_eq!(report.kept, 2);
        assert_eq!(report.examined, 2);
    }

    #[test]
    fn spanning_entries_dropped() {
        // The §2.4 anomaly: durations longer than the whole trace period.
        let bad = ok_entry(10, DAY + 1);
        let (trace, report) = sanitize(vec![ok_entry(0, 10), bad], DAY);
        assert_eq!(trace.len(), 1);
        assert_eq!(report.rejects, vec![(RejectReason::SpansTracePeriod, 1)]);
    }

    #[test]
    fn late_starts_dropped() {
        let bad = ok_entry(DAY + 5, 1);
        let (trace, report) = sanitize(vec![bad], DAY);
        assert!(trace.is_empty());
        assert_eq!(report.rejects, vec![(RejectReason::StartsBeyondHorizon, 1)]);
    }

    #[test]
    fn failed_status_dropped() {
        let mut bad = ok_entry(0, 1);
        bad.status = 404;
        let (trace, report) = sanitize(vec![bad], DAY);
        assert!(trace.is_empty());
        assert_eq!(report.rejects, vec![(RejectReason::FailedStatus, 1)]);
    }

    #[test]
    fn malformed_stats_dropped() {
        let mut bad = ok_entry(0, 1);
        bad.packet_loss = 2.0;
        let (_, report) = sanitize(vec![bad], DAY);
        assert_eq!(report.rejects, vec![(RejectReason::MalformedStats, 1)]);
    }

    #[test]
    fn inconsistent_timestamp_dropped() {
        let mut bad = ok_entry(5, 10);
        bad.timestamp = 7;
        let (_, report) = sanitize(vec![bad], DAY);
        assert_eq!(
            report.rejects,
            vec![(RejectReason::InconsistentTimestamps, 1)]
        );
    }

    #[test]
    fn cpu_audit_fractions() {
        let mut hot = ok_entry(0, 1);
        hot.cpu_util = 0.5;
        let cool1 = ok_entry(100, 1);
        let cool2 = ok_entry(200, 1);
        let (_, report) = sanitize(vec![hot, cool1, cool2], DAY);
        // 1 of 3 one-second bins is hot; 1 of 3 transfers is hot.
        assert!((report.underload_time_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert!((report.underload_transfer_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert!(!report.overload_is_rare(0.9));
        assert!(report.overload_is_rare(0.5));
    }

    #[test]
    fn empty_input() {
        let (trace, report) = sanitize(vec![], DAY);
        assert!(trace.is_empty());
        assert_eq!(report.examined, 0);
        assert_eq!(report.underload_time_fraction, 1.0);
    }
}
