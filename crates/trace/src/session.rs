//! The sessionizer: grouping each client's transfers into sessions.
//!
//! §2.2 of the paper defines a *client session* as the interval during
//! which a client is actively requesting live objects, such that no gap
//! with zero active transfers exceeds the timeout `T_o` (1,500 s in the
//! paper, §4.1). A session's ON time is its span; the OFF time is the gap
//! to the same client's next session (Fig 12); the transfers inside a
//! session yield the per-session counts (Fig 13) and the intra-session
//! interarrivals (Fig 14).

use crate::event::LogEntry;
use crate::ids::ClientId;
use crate::trace::Trace;
use lsw_stats::par::Parallelism;
use serde::{Deserialize, Serialize};

/// Sessionization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Session timeout `T_o` in seconds: a silence longer than this ends
    /// the session.
    pub timeout: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            timeout: lsw_stats::paper::SESSION_TIMEOUT_SECS,
        }
    }
}

/// One identified session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// The client owning the session.
    pub client: ClientId,
    /// Session start (first transfer's start), seconds.
    pub start: u32,
    /// Session end (latest transfer stop seen), seconds.
    pub end: u32,
    /// Offset of the session's first transfer in [`Sessions::entry_order`].
    pub first: u32,
    /// Number of transfers in the session.
    pub transfers: u32,
}

impl Session {
    /// Session ON time in seconds (`end − start`).
    pub fn on_time(&self) -> u32 {
        self.end - self.start
    }
}

/// The result of sessionizing a trace: sessions in arrival order, plus the
/// transfer ordering that ties each session back to trace entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sessions {
    config: SessionConfig,
    /// Sessions sorted by start time.
    sessions: Vec<Session>,
    /// Indices into `Trace::entries()`, grouped contiguously by session and
    /// sorted by transfer start within each session.
    entry_order: Vec<u32>,
}

/// Borrowed column views of the four transfer fields sessionization
/// reads — the `ltc` columnar fast path hands these straight out of block
/// columns, so no `LogEntry` array is ever materialized.
///
/// All slices must have equal length; record `i` is the transfer
/// `(client[i], start[i], timestamp[i], stop[i])`.
#[derive(Debug, Clone, Copy)]
pub struct TransferColumns<'a> {
    /// Client ids.
    pub client: &'a [u32],
    /// Transfer start times (seconds).
    pub start: &'a [u32],
    /// Log timestamps (seconds) — the canonical-order tiebreak.
    pub timestamp: &'a [u32],
    /// Transfer stop times (seconds).
    pub stop: &'a [u32],
}

/// Uniform read access to the transfer fields the sessionizer needs, so
/// one core algorithm serves both the entry-array path and the columnar
/// (`ltc`) path.
trait TransferView: Sync {
    fn len(&self) -> usize;
    fn client(&self, i: u32) -> ClientId;
    fn start(&self, i: u32) -> u32;
    fn timestamp(&self, i: u32) -> u32;
    fn stop(&self, i: u32) -> u32;
}

impl TransferView for &[LogEntry] {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn client(&self, i: u32) -> ClientId {
        self[i as usize].client
    }
    fn start(&self, i: u32) -> u32 {
        self[i as usize].start
    }
    fn timestamp(&self, i: u32) -> u32 {
        self[i as usize].timestamp
    }
    fn stop(&self, i: u32) -> u32 {
        self[i as usize].stop()
    }
}

impl TransferView for TransferColumns<'_> {
    fn len(&self) -> usize {
        self.client.len()
    }
    fn client(&self, i: u32) -> ClientId {
        ClientId(self.client[i as usize])
    }
    fn start(&self, i: u32) -> u32 {
        self.start[i as usize]
    }
    fn timestamp(&self, i: u32) -> u32 {
        self.timestamp[i as usize]
    }
    fn stop(&self, i: u32) -> u32 {
        self.stop[i as usize]
    }
}

impl Sessions {
    /// Identifies sessions in a trace, using the automatic worker count.
    ///
    /// Two transfers of the same client belong to the same session when the
    /// silent gap between them (previous session end to next transfer
    /// start) does not exceed `config.timeout`. Overlapping transfers (a
    /// client watching both feeds, Fig 1) always share a session.
    pub fn identify(trace: &Trace, config: SessionConfig) -> Self {
        Self::identify_with(trace, config, Parallelism::auto())
    }

    /// Identifies sessions with an explicit worker count. The result is
    /// identical at every worker count: transfers are ordered by the
    /// canonical total key `(client, start, stop, index)`, the ordered
    /// index list is partitioned at client boundaries, and each worker
    /// sessionizes whole clients independently.
    pub fn identify_with(trace: &Trace, config: SessionConfig, par: Parallelism) -> Self {
        Self::identify_view(&trace.entries(), config, par)
    }

    /// Identifies sessions directly from column slices — the `ltc`
    /// columnar fast path. Produces exactly what [`identify`](Self::identify)
    /// produces on the equivalent entry array: the canonical `(client,
    /// start, timestamp, index)` sort makes [`Sessions::all`] independent
    /// of the input record order.
    pub fn identify_columns(
        cols: TransferColumns<'_>,
        config: SessionConfig,
        par: Parallelism,
    ) -> Self {
        assert!(
            cols.start.len() == cols.client.len()
                && cols.timestamp.len() == cols.client.len()
                && cols.stop.len() == cols.client.len(),
            "transfer columns must have equal lengths"
        );
        Self::identify_view(&cols, config, par)
    }

    /// The shared core behind both identify paths.
    fn identify_view<V: TransferView>(view: &V, config: SessionConfig, par: Parallelism) -> Self {
        assert!(config.timeout >= 0.0, "negative session timeout");
        // Canonical order: (client, start, stop, index) is a total key, so
        // the unstable sort is deterministic even on duplicate entries.
        let mut order: Vec<u32> = (0..view.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (view.client(i), view.start(i), view.timestamp(i), i));

        // Partition the ordered list into contiguous shards, nudging each
        // boundary forward to the next client boundary so no client's run
        // is split across workers.
        let shards = client_shards(&order, view, par.threads());
        let parts: Vec<(Vec<Session>, Vec<u32>)> = if shards.len() == 1 {
            vec![sessionize_run(&order, view, config.timeout)]
        } else {
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|r| {
                        let run = &order[r.clone()];
                        s.spawn(move || sessionize_run(run, view, config.timeout))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(shard) => shard,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        };

        // Concatenate in shard order: shards are contiguous slices of the
        // canonical order, so the joined entry_order equals the sequential
        // one exactly; session `first` offsets shift by the prefix length.
        let mut sessions = Vec::new();
        let mut entry_order = Vec::with_capacity(view.len());
        for (mut shard_sessions, mut shard_order) in parts {
            let offset = entry_order.len() as u32;
            for s in &mut shard_sessions {
                s.first += offset;
            }
            sessions.append(&mut shard_sessions);
            entry_order.append(&mut shard_order);
        }
        // (start, end, client) is unique across sessions — one client's
        // sessions are time-disjoint — so this sort is deterministic too.
        sessions.sort_by_key(|s| (s.start, s.end, s.client));
        Self {
            config,
            sessions,
            entry_order,
        }
    }

    /// The configuration used.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Sessions in start-time order.
    pub fn all(&self) -> &[Session] {
        &self.sessions
    }

    /// Number of sessions identified (the y-axis of Fig 9).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions were identified.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The session-grouped transfer index order (into `Trace::entries()`).
    pub fn entry_order(&self) -> &[u32] {
        &self.entry_order
    }

    /// The trace entries of one session.
    pub fn entries_of<'t>(&self, s: &Session, trace: &'t Trace) -> Vec<&'t LogEntry> {
        self.entry_order[s.first as usize..(s.first + s.transfers) as usize]
            .iter()
            .map(|&i| &trace.entries()[i as usize])
            .collect()
    }

    /// Session ON times `l(i)` in seconds (Fig 11).
    pub fn on_times(&self) -> Vec<f64> {
        self.sessions.iter().map(|s| s.on_time() as f64).collect()
    }

    /// Session OFF times `f(i)` in seconds (Fig 12): for consecutive
    /// sessions `i, j` of the *same* client, `t(j) − t(i) − l(i)`.
    pub fn off_times(&self) -> Vec<f64> {
        // Group by client: collect (client, start, end) and sort.
        let mut by_client: Vec<(ClientId, u32, u32)> = self
            .sessions
            .iter()
            .map(|s| (s.client, s.start, s.end))
            .collect();
        by_client.sort_unstable();
        let mut out = Vec::new();
        for w in by_client.windows(2) {
            let (c1, _, end1) = w[0];
            let (c2, start2, _) = w[1];
            if c1 == c2 {
                out.push(start2 as f64 - end1 as f64);
            }
        }
        out
    }

    /// Transfers per session (Fig 13).
    pub fn transfers_per_session(&self) -> Vec<u64> {
        self.sessions
            .iter()
            .map(|s| u64::from(s.transfers))
            .collect()
    }

    /// Interarrival times between transfers *within* the same session
    /// (Fig 14), across all sessions.
    pub fn intra_session_interarrivals(&self, trace: &Trace) -> Vec<f64> {
        let entries = trace.entries();
        let mut out = Vec::new();
        for s in &self.sessions {
            let idxs = &self.entry_order[s.first as usize..(s.first + s.transfers) as usize];
            for w in idxs.windows(2) {
                let a = entries[w[0] as usize].start as f64;
                let b = entries[w[1] as usize].start as f64;
                debug_assert!(b >= a, "session transfers out of order");
                out.push(b - a);
            }
        }
        out
    }

    /// Session arrival times `t(i)` in start order.
    pub fn arrival_times(&self) -> Vec<f64> {
        self.sessions.iter().map(|s| s.start as f64).collect()
    }

    /// Client interarrival times (§3.3): gaps between consecutive session
    /// arrivals that belong to *different* clients.
    pub fn client_interarrivals(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for w in self.sessions.windows(2) {
            if w[0].client != w[1].client {
                out.push(w[1].start as f64 - w[0].start as f64);
            }
        }
        out
    }

    /// Sessions per client, as counts keyed by client (Fig 7 right).
    pub fn session_counts_per_client(&self) -> Vec<u64> {
        // BTreeMap: RankFrequency keeps insertion order for tied counts, so
        // the count vector must come out in a process-independent order.
        let mut counts: std::collections::BTreeMap<ClientId, u64> =
            std::collections::BTreeMap::new();
        for s in &self.sessions {
            *counts.entry(s.client).or_insert(0) += 1;
        }
        counts.into_values().collect()
    }
}

/// Splits the canonically ordered index list into at most `workers`
/// contiguous shards whose boundaries always coincide with client
/// boundaries (a client's whole run lands in exactly one shard).
fn client_shards<V: TransferView>(
    order: &[u32],
    view: &V,
    workers: usize,
) -> Vec<std::ops::Range<usize>> {
    let n = order.len();
    let workers = workers.min(n).max(1);
    let mut shards = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 1..=workers {
        if start >= n {
            break;
        }
        let mut end = if w == workers {
            n
        } else {
            (n * w / workers).max(start + 1)
        };
        // Advance to the next client boundary.
        while end < n && view.client(order[end]) == view.client(order[end - 1]) {
            end += 1;
        }
        shards.push(start..end);
        start = end;
    }
    if shards.is_empty() {
        shards.push(0..0);
    }
    shards
}

/// Sessionizes one canonical-order run of transfer indices (whole clients
/// only). Returns sessions in client-run order plus the run's entry order;
/// `Session::first` offsets are local to the returned entry order.
fn sessionize_run<V: TransferView>(
    order: &[u32],
    view: &V,
    timeout: f64,
) -> (Vec<Session>, Vec<u32>) {
    let mut sessions = Vec::new();
    let mut entry_order = Vec::with_capacity(order.len());
    let mut i = 0usize;
    while i < order.len() {
        let client = view.client(order[i]);
        // The run of this client's transfers.
        let mut j = i;
        while j < order.len() && view.client(order[j]) == client {
            j += 1;
        }
        // Split the run into sessions.
        let mut s_start = view.start(order[i]);
        let mut s_end = view.stop(order[i]);
        let mut first = entry_order.len() as u32;
        let mut count = 1u32;
        entry_order.push(order[i]);
        for &idx in &order[i + 1..j] {
            let (e_start, e_stop) = (view.start(idx), view.stop(idx));
            let gap = e_start as f64 - s_end as f64;
            if gap > timeout {
                sessions.push(Session {
                    client,
                    start: s_start,
                    end: s_end,
                    first,
                    transfers: count,
                });
                s_start = e_start;
                s_end = e_stop;
                first = entry_order.len() as u32;
                count = 1;
            } else {
                s_end = s_end.max(e_stop);
                count += 1;
            }
            entry_order.push(idx);
        }
        sessions.push(Session {
            client,
            start: s_start,
            end: s_end,
            first,
            transfers: count,
        });
        i = j;
    }
    (sessions, entry_order)
}

/// Transfers per client, as counts (Fig 7 left). Lives here (not on
/// [`Sessions`]) because it needs only the trace.
pub fn transfer_counts_per_client(trace: &Trace) -> Vec<u64> {
    // BTreeMap for the same reason as `session_counts_per_client`: tied
    // counts must rank in a process-independent order.
    let mut counts: std::collections::BTreeMap<ClientId, u64> = std::collections::BTreeMap::new();
    for e in trace.entries() {
        *counts.entry(e.client).or_insert(0) += 1;
    }
    counts.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogEntryBuilder;

    fn entry(client: u32, start: u32, dur: u32) -> LogEntry {
        LogEntryBuilder::new()
            .span(start, dur)
            .client(ClientId(client))
            .build()
    }

    fn cfg(timeout: f64) -> SessionConfig {
        SessionConfig { timeout }
    }

    #[test]
    fn single_client_gap_splits_sessions() {
        // Transfers at 0-10 and 2000-2010 with To = 1500: two sessions.
        let t = Trace::from_entries(vec![entry(1, 0, 10), entry(1, 2000, 10)], 86_400);
        let s = Sessions::identify(&t, cfg(1500.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.all()[0].transfers, 1);
        // OFF time = 2000 - 10 = 1990.
        assert_eq!(s.off_times(), vec![1990.0]);
    }

    #[test]
    fn gap_equal_to_timeout_does_not_split() {
        // "does not exceed" To ⇒ gap == To stays in-session.
        let t = Trace::from_entries(vec![entry(1, 0, 10), entry(1, 1510, 5)], 86_400);
        let s = Sessions::identify(&t, cfg(1500.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.all()[0].transfers, 2);
        assert_eq!(s.all()[0].on_time(), 1515);
    }

    #[test]
    fn overlapping_transfers_share_session() {
        // Client watches both feeds simultaneously (Fig 1).
        let t = Trace::from_entries(vec![entry(1, 0, 100), entry(1, 20, 30)], 86_400);
        let s = Sessions::identify(&t, cfg(1500.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.all()[0].on_time(), 100);
        assert_eq!(s.all()[0].transfers, 2);
    }

    #[test]
    fn session_end_is_max_stop_not_last_stop() {
        // Second transfer ends before the first: end must stay at 100.
        let t = Trace::from_entries(vec![entry(1, 0, 100), entry(1, 50, 10)], 86_400);
        let s = Sessions::identify(&t, cfg(1500.0));
        assert_eq!(s.all()[0].end, 100);
        // A transfer at 1700 is within To of end=100? gap = 1600 > 1500 ⇒ split.
        let t2 = Trace::from_entries(
            vec![entry(1, 0, 100), entry(1, 50, 10), entry(1, 1700, 5)],
            86_400,
        );
        let s2 = Sessions::identify(&t2, cfg(1500.0));
        assert_eq!(s2.len(), 2);
    }

    #[test]
    fn clients_sessionized_independently() {
        let t = Trace::from_entries(
            vec![
                entry(1, 0, 10),
                entry(2, 5, 10),
                entry(1, 100, 10),
                entry(2, 5000, 1),
            ],
            86_400,
        );
        let s = Sessions::identify(&t, cfg(1500.0));
        // Client 1: one session (gap 90 ≤ 1500). Client 2: two sessions.
        assert_eq!(s.len(), 3);
        let per_client = s.session_counts_per_client();
        let mut pc = per_client.clone();
        pc.sort_unstable();
        assert_eq!(pc, vec![1, 2]);
    }

    #[test]
    fn transfers_per_session_and_intra_arrivals() {
        let t = Trace::from_entries(
            vec![entry(1, 0, 10), entry(1, 30, 10), entry(1, 90, 10)],
            86_400,
        );
        let s = Sessions::identify(&t, cfg(1500.0));
        assert_eq!(s.transfers_per_session(), vec![3]);
        assert_eq!(s.intra_session_interarrivals(&t), vec![30.0, 60.0]);
    }

    #[test]
    fn client_interarrivals_skip_same_client() {
        let t = Trace::from_entries(
            vec![entry(1, 0, 1), entry(2, 10, 1), entry(3, 25, 1)],
            86_400,
        );
        let s = Sessions::identify(&t, cfg(1500.0));
        assert_eq!(s.client_interarrivals(), vec![10.0, 15.0]);
    }

    #[test]
    fn timeout_sweep_monotone() {
        // Fig 9's premise: smaller To ⇒ more sessions, monotonically.
        let mut entries = Vec::new();
        for c in 0..20u32 {
            for k in 0..30u32 {
                entries.push(entry(c, k * 700 + c * 13, 20));
            }
        }
        let t = Trace::from_entries(entries, 86_400);
        let mut prev = usize::MAX;
        for to in [60.0, 300.0, 700.0, 1_500.0, 4_000.0] {
            let n = Sessions::identify(&t, cfg(to)).len();
            assert!(n <= prev, "sessions must not increase with To");
            prev = n;
        }
        // Extremes: To=0 ⇒ almost every transfer its own session;
        // To=huge ⇒ one session per client.
        assert_eq!(Sessions::identify(&t, cfg(1e9)).len(), 20);
    }

    #[test]
    fn entries_of_returns_session_transfers() {
        let t = Trace::from_entries(
            vec![entry(1, 0, 10), entry(1, 30, 10), entry(1, 5_000, 10)],
            86_400,
        );
        let s = Sessions::identify(&t, cfg(1500.0));
        assert_eq!(s.len(), 2);
        let first = s.entries_of(&s.all()[0], &t);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].start, 0);
        assert_eq!(first[1].start, 30);
        let second = s.entries_of(&s.all()[1], &t);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].start, 5_000);
    }

    #[test]
    fn transfer_counts_per_client_totals() {
        let t = Trace::from_entries(vec![entry(1, 0, 1), entry(1, 5, 1), entry(2, 9, 1)], 86_400);
        let mut counts = transfer_counts_per_client(&t);
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn sharded_identify_matches_sequential() {
        // Many interleaved clients with multi-session timelines, so the
        // shard boundaries land mid-list and must snap to client runs.
        let mut entries = Vec::new();
        for c in 0..37u32 {
            for k in 0..12u32 {
                entries.push(entry(c, k * 1_600 + c * 7, 25 + (k % 5)));
            }
        }
        let t = Trace::from_entries(entries, 86_400);
        let seq = Sessions::identify_with(&t, cfg(1500.0), Parallelism::fixed(1));
        assert!(seq.len() > 37, "fixture must split sessions");
        for workers in [2, 3, 8, 64] {
            let par = Sessions::identify_with(&t, cfg(1500.0), Parallelism::fixed(workers));
            assert_eq!(par.all(), seq.all(), "sessions differ at {workers} workers");
            assert_eq!(
                par.entry_order(),
                seq.entry_order(),
                "entry order differs at {workers} workers"
            );
        }
    }

    #[test]
    fn columnar_path_matches_entry_path() {
        // Unsorted, interleaved record order: the canonical sort inside
        // identify makes both paths agree session-for-session.
        let mut entries = Vec::new();
        for c in 0..23u32 {
            for k in 0..9u32 {
                entries.push(entry(c, ((k * 1_700 + c * 31) % 20_000) + k, 10 + (k % 7)));
            }
        }
        let t = Trace::from_entries(entries.clone(), 86_400);
        let from_trace = Sessions::identify(&t, cfg(1500.0));

        // Columns in raw (pre-sort) record order.
        let client: Vec<u32> = entries.iter().map(|e| e.client.0).collect();
        let start: Vec<u32> = entries.iter().map(|e| e.start).collect();
        let timestamp: Vec<u32> = entries.iter().map(|e| e.timestamp).collect();
        let stop: Vec<u32> = entries.iter().map(|e| e.stop()).collect();
        for workers in [1, 3, 8] {
            let from_cols = Sessions::identify_columns(
                TransferColumns {
                    client: &client,
                    start: &start,
                    timestamp: &timestamp,
                    stop: &stop,
                },
                cfg(1500.0),
                Parallelism::fixed(workers),
            );
            assert_eq!(from_cols.all(), from_trace.all(), "workers = {workers}");
        }
    }

    #[test]
    fn empty_trace_yields_no_sessions() {
        let t = Trace::from_entries(vec![], 100);
        let s = Sessions::identify(&t, SessionConfig::default());
        assert!(s.is_empty());
        assert!(s.off_times().is_empty());
        assert!(s.client_interarrivals().is_empty());
    }
}
