//! End-to-end socket replay: serve a small schedule on localhost at high
//! compression, drive it, and close the characterization loop.

use lsw_replay::{
    closed_loop, drive, reference_report, Registry, ReplayServer, ServerConfig, WallClock,
};
use lsw_sim::server::AdmissionPolicy;
use lsw_stream::StreamConfig;
use lsw_trace::event::{LogEntry, LogEntryBuilder};
use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use lsw_trace::schedule::Schedule;
use std::sync::Arc;

fn schedule(n: u32, span_secs: u32) -> Schedule {
    let entries: Vec<LogEntry> = (0..n)
        .map(|i| {
            let start = (i * span_secs) / n;
            LogEntryBuilder::new()
                .span(start, (i % 40) + 20)
                .client(ClientId(i % 13))
                .origin(
                    Ipv4Addr(0x0a000000 + (i % 13)),
                    AsId((i % 4) as u16),
                    CountryCode(*b"BR"),
                )
                .object(ObjectId((i % 3) as u16), (i % 2) as u8)
                .transfer_stats(u64::from(i % 7 + 1) * 40_000, 350_000, 0.0)
                .build()
        })
        .collect();
    Schedule::from_entries(&entries)
}

#[test]
fn socket_replay_closes_the_loop() {
    // ~1 simulated hour compressed 2000x => under 2s of wall time.
    let s = schedule(120, 3600);
    let compression = 2000.0;
    let clock = Arc::new(WallClock::start());
    let registry = Arc::new(Registry::new());
    let server = ReplayServer::start(
        ServerConfig {
            compression,
            workers: 2,
            lookahead: s.max_duration(),
            ..ServerConfig::default()
        },
        &s.object_rates(),
        Arc::clone(&clock),
        Arc::clone(&registry),
    )
    .expect("bind localhost");

    let driver_cfg = lsw_replay::DriverConfig::new(server.local_addr(), compression);
    let outcome = drive(&s, &driver_cfg, &clock, &registry).expect("drive");
    assert_eq!(outcome.launched, 120, "all transfers offered");
    assert_eq!(outcome.connect_failures, 0);
    assert_eq!(outcome.rejected, 0);
    assert_eq!(outcome.completed, 120, "all wire budgets delivered");

    let served = server.finish();
    assert_eq!(served.admission.accepted, 120);
    assert_eq!(served.tap.accounting.kept, 120);

    let reference = reference_report(&s, StreamConfig::default());
    let diff = closed_loop(&reference, &served.tap);
    assert!(
        diff.within_bounds(),
        "closed-loop diff exceeded sketch bounds:\n{}",
        diff.render()
    );

    // The wire really moved (compressed) payload.
    let snap = served.metrics;
    let sent = snap.value("srv.bytes_sent").unwrap_or(0);
    assert!(sent > 0, "no payload served");
    assert_eq!(sent, outcome.bytes_received, "driver saw what server sent");
}

#[test]
fn admission_rejections_travel_the_wire() {
    let s = schedule(60, 600);
    let compression = 2000.0;
    let clock = Arc::new(WallClock::start());
    let registry = Arc::new(Registry::new());
    let server = ReplayServer::start(
        ServerConfig {
            compression,
            admission: AdmissionPolicy::RejectAbove { max_concurrent: 2 },
            workers: 1,
            lookahead: s.max_duration(),
            ..ServerConfig::default()
        },
        &s.object_rates(),
        Arc::clone(&clock),
        Arc::clone(&registry),
    )
    .expect("bind localhost");

    let driver_cfg = lsw_replay::DriverConfig::new(server.local_addr(), compression);
    let outcome = drive(&s, &driver_cfg, &clock, &registry).expect("drive");
    let served = server.finish();

    assert_eq!(outcome.launched, 60);
    assert_eq!(outcome.rejected, served.admission.rejected);
    assert_eq!(
        outcome.completed + outcome.rejected + outcome.short,
        60,
        "every offer is accounted"
    );
    assert!(served.admission.rejected > 0, "the tiny cap must bite");
    assert!(served.admission.denied_viewer_seconds > 0.0);
    // Rejected transfers reach the tap as failed-status records.
    assert_eq!(
        served.tap.accounting.kept,
        outcome.completed + outcome.short
    );
}
