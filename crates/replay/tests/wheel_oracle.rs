//! Property test: the hierarchical timing wheel against a BinaryHeap
//! oracle.
//!
//! The oracle mirrors the wheel's documented quantization — a deadline
//! maps to tick `(deadline >> shift).max(now_tick + 1)` at schedule
//! time — and fires everything with `tick <= now_tick` in `(tick,
//! insertion seq)` order on advance. Arbitrary interleavings of
//! schedule / advance / cancel must pop identical `(deadline, item)`
//! sequences from both, regardless of how entries cascade through
//! wheel levels or wrap past the horizon.

use lsw_replay::TimingWheel;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + delta` nanoseconds.
    Schedule { delta: u64 },
    /// Advance the clock by `delta` nanoseconds.
    Advance { delta: u64 },
    /// Cancel the `nth` most recent still-known timer id.
    Cancel { nth: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Discriminant-weighted mix: half schedules, three-eighths
    // advances, one-eighth cancels.
    (0u8..8, 0u64..=1 << 40, 0usize..8).prop_map(|(disc, delta, nth)| match disc {
        0..=3 => Op::Schedule { delta },
        4..=6 => Op::Advance {
            delta: delta >> 2, // advances a bit shorter than horizons
        },
        _ => Op::Cancel { nth },
    })
}

/// The reference model: exact `(tick, seq)` ordering via a min-heap.
struct Oracle {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>, // (tick, seq, deadline)
    cancelled: HashSet<u64>,
    now_tick: u64,
    shift: u32,
}

impl Oracle {
    fn new(resolution: u64) -> Self {
        Self {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            now_tick: 0,
            shift: resolution.max(1).next_power_of_two().trailing_zeros(),
        }
    }

    fn schedule(&mut self, deadline: u64, seq: u64) {
        let tick = (deadline >> self.shift).max(self.now_tick + 1);
        self.heap.push(Reverse((tick, seq, deadline)));
    }

    fn advance(&mut self, now: u64, fired: &mut Vec<(u64, u64)>) {
        let target = now >> self.shift;
        if target <= self.now_tick {
            return;
        }
        self.now_tick = target;
        while let Some(&Reverse((tick, seq, deadline))) = self.heap.peek() {
            if tick > target {
                break;
            }
            self.heap.pop();
            if !self.cancelled.remove(&seq) {
                fired.push((deadline, seq));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_matches_heap_oracle(
        resolution in prop_oneof![Just(1u64), Just(1 << 10), Just(1 << 17)],
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut wheel: TimingWheel<u64> = TimingWheel::with_resolution(resolution);
        let mut oracle = Oracle::new(resolution);
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut live_ids = Vec::new(); // (TimerId, seq), newest last
        let mut wheel_fired = Vec::new();
        let mut oracle_fired = Vec::new();

        for op in ops {
            match op {
                Op::Schedule { delta } => {
                    let deadline = now.saturating_add(delta);
                    let id = wheel.schedule(deadline, seq);
                    oracle.schedule(deadline, seq);
                    live_ids.push((id, seq));
                    seq += 1;
                }
                Op::Advance { delta } => {
                    now = now.saturating_add(delta);
                    wheel.advance(now, &mut wheel_fired);
                    oracle.advance(now, &mut oracle_fired);
                    prop_assert_eq!(&wheel_fired, &oracle_fired,
                        "fire sequences diverged at now={}", now);
                }
                Op::Cancel { nth } => {
                    if live_ids.is_empty() {
                        continue;
                    }
                    let (id, s) = live_ids.remove(nth % live_ids.len());
                    let wheel_says = wheel.cancel(id);
                    // The oracle tombstones; liveness must agree: a
                    // cancel succeeds iff the entry has not fired yet.
                    let already_fired = wheel_fired.iter().any(|&(_, v)| v == s);
                    prop_assert_eq!(wheel_says, !already_fired);
                    if wheel_says {
                        oracle.cancelled.insert(s);
                    }
                }
            }
        }
        // Drain both to the far future: everything pending fires, in
        // the same order, with the same reported deadlines.
        wheel.advance(u64::MAX, &mut wheel_fired);
        oracle.advance(u64::MAX, &mut oracle_fired);
        prop_assert_eq!(&wheel_fired, &oracle_fired, "drain diverged");
        prop_assert!(wheel.is_empty());
    }
}
