//! # lsw-replay — trace replay over live sockets, closed-loop
//!
//! The rest of the workspace characterizes, models, and simulates the
//! paper's workload *analytically*. This crate exercises it the way the
//! ROADMAP north star demands: by **serving it**. It pairs
//!
//! * a multithreaded localhost TCP server ([`server`]) that paces each
//!   live feed's broadcast at its encoded bitrate, admits transfers
//!   through the simulator's pluggable [`AdmissionPolicy`], bounds every
//!   per-client send backlog, and drains gracefully on shutdown, with
//! * a trace-driven load driver ([`driver`]) that replays a
//!   [`Schedule`] extracted from a wms/ltc trace at a configurable
//!   time-compression factor over real concurrent connections.
//!
//! Both sides share one wire [`proto`]col and one lock-free [`metrics`]
//! registry. Every transfer the server completes is logged — WMS-style,
//! at completion time — into an embedded `lsw-stream` analyzer (the
//! *tap*), so a replay run ends by re-characterizing the traffic it just
//! served and [`diff`]ing that against the input trace's own
//! characterization: the loop is closed when they agree to within the
//! sketches' documented error bounds.
//!
//! ## Virtual time
//!
//! `--virtual-time` swaps the wall [`clock`] for a deterministic logical
//! one and runs the whole serve-and-replay exchange as a single-threaded
//! event simulation ([`virt`]) over the same pacing, admission, logging,
//! and tap code paths' semantics. No sockets, no threads, no ambient
//! time: byte-identical reports on every run, at any `--shards` count.
//!
//! [`AdmissionPolicy`]: lsw_sim::server::AdmissionPolicy
//! [`Schedule`]: lsw_trace::schedule::Schedule

#![warn(missing_docs)]

pub mod clock;
pub mod diff;
pub mod driver;
pub mod metrics;
pub mod payload;
pub mod proto;
pub mod server;
pub mod slab;
pub mod virt;
pub mod wheel;

pub use clock::WallClock;
pub use diff::{closed_loop, reference_report, LoopDiff};
pub use driver::{drive, DriveOutcome, DriverConfig};
pub use metrics::{Registry, Snapshot};
pub use server::{DataPlane, ReplayServer, ServeOutcome, ServerConfig, SlowClientPolicy};
pub use slab::{Key, Slab};
pub use virt::{pacing_profile, run_virtual, PacingProfile, VirtualOutcome};
pub use wheel::{TimerId, TimingWheel};

/// Wire status logged for transfers the admission policy turned away.
pub const STATUS_REJECTED: u16 = 503;
/// Wire status logged for transfers truncated by the slow-client drop
/// policy or a forced drain.
pub const STATUS_TRUNCATED: u16 = 408;
