//! The shared immutable payload arena and preformatted response lines.
//!
//! Payload content is irrelevant to the characterization — only bytes
//! on the wire matter — so every connection streams slices of one
//! `'static` preformatted pattern block via vectored writes. The arena
//! is borrowed, never copied: a `write_vectored` call covers up to
//! [`MAX_SLICES`] × [`BLOCK`]-byte iovecs (2 MiB) in one syscall,
//! against the tick loop's one 8 KiB `write` per call.
//!
//! **Lifetime argument.** The block is a `static` item: it lives for
//! the program, is never written after initialization (it is a `const`
//! fill), and is shared by plain `&'static [u8]` borrows — no `Arc`,
//! no refcount traffic, no per-connection copy, and nothing to tear
//! down while a connection still holds a slice.

use std::io::IoSlice;

/// Bytes per arena block — one iovec's worth.
pub const BLOCK: usize = 64 * 1024;

/// Max iovecs per vectored write (Linux caps at `UIO_MAXIOV` = 1024;
/// 32 keeps a single call under 2 MiB, plenty to fill a socket buffer).
pub const MAX_SLICES: usize = 32;

/// The pattern block all connections stream from.
static PATTERN: [u8; BLOCK] = [0x5A; BLOCK];

/// Rejection line sent when admission turns a request away.
pub const BUSY_LINE: &[u8] = b"BUSY\n";

/// The whole pattern block, for callers doing plain (non-vectored)
/// writes — the tick plane slices its historical 8 KiB chunk off this.
pub fn block() -> &'static [u8] {
    &PATTERN
}

/// Fills `out` with arena slices covering `want` bytes (capped at
/// `MAX_SLICES * BLOCK`); returns how many slices and bytes it staged.
pub fn stage(want: u64, out: &mut [IoSlice<'static>; MAX_SLICES]) -> (usize, u64) {
    let mut staged = 0u64;
    let mut n = 0;
    while n < MAX_SLICES && staged < want {
        let take = (want - staged).min(BLOCK as u64) as usize;
        out[n] = IoSlice::new(&PATTERN[..take]);
        staged += take as u64;
        n += 1;
    }
    (n, staged)
}

/// Renders `OK {budget}\n` into a fixed stack buffer without
/// allocating; returns the filled prefix.
pub fn ok_line(budget: u64, buf: &mut [u8; 32]) -> &[u8] {
    buf[0] = b'O';
    buf[1] = b'K';
    buf[2] = b' ';
    // Digits emitted least-significant first into the tail, then the
    // filled range is shifted against the "OK " prefix.
    let mut digits = [0u8; 20];
    let mut v = budget;
    let mut nd = 0;
    loop {
        digits[nd] = b'0' + (v % 10) as u8;
        v /= 10;
        nd += 1;
        if v == 0 {
            break;
        }
    }
    for i in 0..nd {
        buf[3 + i] = digits[nd - 1 - i];
    }
    buf[3 + nd] = b'\n';
    &buf[..4 + nd]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_covers_exact_byte_counts() {
        let mut slices = [IoSlice::new(&[]); MAX_SLICES];
        let (n, bytes) = stage(10, &mut slices);
        assert_eq!((n, bytes), (1, 10));
        assert_eq!(slices[0].len(), 10);

        let (n, bytes) = stage(BLOCK as u64 + 1, &mut slices);
        assert_eq!((n, bytes), (2, BLOCK as u64 + 1));
        assert_eq!(slices[0].len(), BLOCK);
        assert_eq!(slices[1].len(), 1);

        // Oversized wants cap at one full vectored call.
        let (n, bytes) = stage(u64::MAX, &mut slices);
        assert_eq!(n, MAX_SLICES);
        assert_eq!(bytes, (MAX_SLICES * BLOCK) as u64);

        let (n, bytes) = stage(0, &mut slices);
        assert_eq!((n, bytes), (0, 0));
    }

    #[test]
    fn ok_line_matches_format() {
        let mut buf = [0u8; 32];
        assert_eq!(ok_line(0, &mut buf), b"OK 0\n");
        assert_eq!(ok_line(42, &mut buf), b"OK 42\n");
        assert_eq!(ok_line(u64::MAX, &mut buf), b"OK 18446744073709551615\n");
        for v in [1u64, 9, 10, 99, 100, 12345, 1 << 40] {
            assert_eq!(ok_line(v, &mut buf), format!("OK {v}\n").as_bytes());
        }
    }

    #[test]
    fn pattern_is_the_documented_fill() {
        let mut slices = [IoSlice::new(&[]); MAX_SLICES];
        stage(16, &mut slices);
        assert!(slices[0].iter().all(|&b| b == 0x5A));
    }
}
