//! Replay time: nanoseconds since the run's origin.
//!
//! Every wall-time acquisition in this crate happens through
//! [`WallClock`], so the determinism lint surface is one reasoned site —
//! not a file exemption. The virtual-time executor never constructs a
//! `WallClock` at all; it advances a plain integer ([`virt`]).
//!
//! [`virt`]: crate::virt

use std::time::{Duration, Instant};

/// Nanoseconds of replay time (since a clock's origin).
pub type Nanos = u64;

/// One nanosecond-resolution monotonic clock anchored at construction.
///
/// Shared (via `Arc`) by the server's pacing loops and the driver's
/// schedule so both sides agree on what "now" means.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Anchors a clock at the current instant.
    pub fn start() -> Self {
        // The replay harness is the one workspace component whose whole
        // point is real elapsed time; acquisition is confined to this
        // constructor and `now` below.
        #[allow(clippy::disallowed_methods)]
        Self {
            // lsw::allow(L002): replay pacing is anchored to real time by design
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the origin.
    pub fn now(&self) -> Nanos {
        #[allow(clippy::disallowed_methods)]
        // lsw::allow(L002): single sanctioned wall-time read for pacing loops
        let elapsed = Instant::now() - self.origin;
        saturating_nanos(elapsed)
    }

    /// Sleeps until the given replay time (returns immediately if past).
    pub fn sleep_until(&self, t: Nanos) {
        let now = self.now();
        if t > now {
            std::thread::sleep(Duration::from_nanos(t - now));
        }
    }
}

fn saturating_nanos(d: Duration) -> Nanos {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Converts trace seconds to replay nanoseconds under a compression
/// factor: `t` trace seconds pass in `t / compression` wall seconds.
pub fn trace_to_nanos(trace_secs: u32, compression: f64) -> Nanos {
    let wall = f64::from(trace_secs) / compression.max(1e-9);
    if wall >= u64::MAX as f64 / 1e9 {
        u64::MAX
    } else {
        (wall * 1e9) as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let c = WallClock::start();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn sleep_until_reaches_target() {
        let c = WallClock::start();
        c.sleep_until(2_000_000); // 2 ms
        assert!(c.now() >= 2_000_000);
    }

    #[test]
    fn compression_scales_trace_time() {
        assert_eq!(trace_to_nanos(100, 100.0), 1_000_000_000);
        assert_eq!(trace_to_nanos(1, 1.0), 1_000_000_000);
        assert_eq!(trace_to_nanos(0, 50.0), 0);
    }
}
