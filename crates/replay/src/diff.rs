//! The closed-loop check: does the traffic we served re-characterize to
//! the trace we replayed?
//!
//! [`reference_report`] characterizes the *schedule itself* (every
//! transfer fed straight into a fresh `lsw-stream` analyzer), and
//! [`closed_loop`] compares a replay tap against it, headline by
//! headline, each with the error bound its sketch documents — uniques
//! come from HyperLogLog (≤2% per side), quantiles from log-bucket
//! sketches (≤1% per side), counts and byte totals from exact counters.
//! Using the schedule as the reference isolates replay fidelity from
//! sanitization differences: both sides saw exactly the same candidate
//! transfers.

use lsw_stream::{StreamAnalyzer, StreamConfig, StreamReport};
use lsw_trace::schedule::Schedule;
use lsw_trace::LogEntry;

/// Characterizes a schedule directly — the reference end of the loop.
pub fn reference_report(schedule: &Schedule, cfg: StreamConfig) -> StreamReport {
    let mut analyzer = StreamAnalyzer::new(cfg);
    analyzer.preset_lookahead(schedule.max_duration());
    let entries: Vec<LogEntry> = schedule.transfers.iter().map(|t| t.to_entry()).collect();
    analyzer.ingest_entries(&entries);
    analyzer.finalize()
}

/// One compared headline metric.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Metric name.
    pub name: &'static str,
    /// Reference (input trace) value.
    pub reference: f64,
    /// Observed (replay tap) value.
    pub observed: f64,
    /// `|observed - reference| / max(|reference|, 1e-12)`.
    pub rel_err: f64,
    /// Documented sketch error bound for this metric (two-sided).
    pub bound: f64,
}

/// The closed-loop comparison.
#[derive(Debug, Clone, Default)]
pub struct LoopDiff {
    /// All compared rows.
    pub rows: Vec<DiffRow>,
}

impl LoopDiff {
    /// True when every metric is within its documented bound.
    pub fn within_bounds(&self) -> bool {
        self.rows.iter().all(|r| r.rel_err <= r.bound)
    }

    /// Rows exceeding their bound.
    pub fn violations(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.rel_err > r.bound).collect()
    }

    /// Aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "metric                     reference      observed       rel-err   bound\n",
        );
        for r in &self.rows {
            let flag = if r.rel_err > r.bound { "  EXCEEDS" } else { "" };
            out.push_str(&format!(
                "{:<25} {:>13.4} {:>13.4}  {:>8.4}  {:>6.3}{}\n",
                r.name, r.reference, r.observed, r.rel_err, r.bound, flag
            ));
        }
        out
    }

    /// JSON rendering of the table plus the verdict.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("metric".to_string(), Value::Str(r.name.to_string())),
                    ("reference".to_string(), Value::F64(r.reference)),
                    ("observed".to_string(), Value::F64(r.observed)),
                    ("rel_err".to_string(), Value::F64(r.rel_err)),
                    ("bound".to_string(), Value::F64(r.bound)),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "within_bounds".to_string(),
                Value::Bool(self.within_bounds()),
            ),
            ("rows".to_string(), Value::Array(rows)),
        ])
    }
}

fn row(name: &'static str, reference: f64, observed: f64, bound: f64) -> DiffRow {
    let rel_err = (observed - reference).abs() / reference.abs().max(1e-12);
    DiffRow {
        name,
        reference,
        observed,
        rel_err,
        bound,
    }
}

/// Bound for a HyperLogLog-vs-HyperLogLog comparison: ≤2% standard error
/// per side at the default precision, with headroom for both sides
/// erring in opposite directions.
const UNIQUES_BOUND: f64 = 0.05;
/// Bound for log-bucket quantile comparisons: ≤1% bucket width per side.
const QUANTILE_BOUND: f64 = 0.03;
/// Bound for exact counters: a perfect replay matches exactly; any slack
/// here is lost transfers, which the caller wants to see.
const EXACT_BOUND: f64 = 1e-9;
/// Bound for order-sensitive accumulations (sessionization, concurrency
/// sweep): identical entries, but tap arrival order may differ slightly
/// around the look-ahead watermark.
const ORDER_BOUND: f64 = 0.01;

/// Compares a replay tap report against the reference characterization.
pub fn closed_loop(reference: &StreamReport, observed: &StreamReport) -> LoopDiff {
    let mut rows = vec![
        row(
            "users (hll)",
            reference.summary.users,
            observed.summary.users,
            UNIQUES_BOUND,
        ),
        row(
            "client_ips (hll)",
            reference.summary.client_ips,
            observed.summary.client_ips,
            UNIQUES_BOUND,
        ),
        row(
            "objects",
            reference.summary.objects as f64,
            observed.summary.objects as f64,
            EXACT_BOUND,
        ),
        row(
            "transfers",
            reference.summary.transfers as f64,
            observed.summary.transfers as f64,
            EXACT_BOUND,
        ),
        row(
            "terabytes",
            reference.summary.terabytes,
            observed.summary.terabytes,
            EXACT_BOUND,
        ),
        row(
            "sessions",
            reference.n_sessions as f64,
            observed.n_sessions as f64,
            ORDER_BOUND,
        ),
        row(
            "concurrency peak",
            f64::from(reference.concurrency.peak),
            f64::from(observed.concurrency.peak),
            ORDER_BOUND,
        ),
        row(
            "concurrency mean",
            reference.concurrency.mean,
            observed.concurrency.mean,
            ORDER_BOUND,
        ),
    ];
    if let (Some(r), Some(o)) = (&reference.on_quantiles, &observed.on_quantiles) {
        rows.push(row("session ON p50", r.p50, o.p50, QUANTILE_BOUND));
        rows.push(row("session ON p95", r.p95, o.p95, QUANTILE_BOUND));
    }
    if let (Some(r), Some(o)) = (
        &reference.transfer_length_quantiles,
        &observed.transfer_length_quantiles,
    ) {
        rows.push(row("transfer len p50", r.p50, o.p50, QUANTILE_BOUND));
        rows.push(row("transfer len p95", r.p95, o.p95, QUANTILE_BOUND));
    }
    // Top-k overlap: the heaviest AS must appear on both sides with a
    // consistent count (SpaceSaving is exact for heavy hitters at this
    // capacity).
    if let (Some(&(r_as, r_n)), Some(&(o_as, o_n))) =
        (reference.top_ases.first(), observed.top_ases.first())
    {
        rows.push(row(
            "top AS id",
            f64::from(r_as),
            f64::from(o_as),
            EXACT_BOUND,
        ));
        rows.push(row("top AS count", r_n as f64, o_n as f64, ORDER_BOUND));
    }
    LoopDiff { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virt::run_virtual;
    use lsw_sim::server::AdmissionPolicy;
    use lsw_trace::event::LogEntryBuilder;
    use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};

    fn schedule() -> Schedule {
        let entries: Vec<LogEntry> = (0..500u32)
            .map(|i| {
                LogEntryBuilder::new()
                    .span((i / 2) * 7, (i % 13) + 3)
                    .client(ClientId(i % 31))
                    .origin(
                        Ipv4Addr(i % 31 + 1),
                        AsId((i % 5) as u16),
                        CountryCode(*b"BR"),
                    )
                    .object(ObjectId((i % 3) as u16), 0)
                    .transfer_stats(u64::from(i) * 321 + 10, 48_000, 0.0)
                    .build()
            })
            .collect();
        Schedule::from_entries(&entries)
    }

    #[test]
    fn perfect_replay_closes_the_loop() {
        let s = schedule();
        let reference = reference_report(&s, StreamConfig::default());
        let out = run_virtual(
            &s,
            AdmissionPolicy::AcceptAll,
            StreamConfig::default(),
            &crate::metrics::Registry::new(),
        );
        let diff = closed_loop(&reference, &out.tap);
        assert!(
            diff.within_bounds(),
            "closed-loop diff exceeded bounds:\n{}",
            diff.render()
        );
        assert_eq!(
            diff.to_json().field("within_bounds").ok(),
            Some(&serde_json::Value::Bool(true))
        );
    }

    #[test]
    fn lost_transfers_break_the_loop() {
        let s = schedule();
        let reference = reference_report(&s, StreamConfig::default());
        // An admission policy that turns traffic away must be visible as
        // a closed-loop violation — that is the point of the check.
        let out = run_virtual(
            &s,
            AdmissionPolicy::RejectAbove { max_concurrent: 2 },
            StreamConfig::default(),
            &crate::metrics::Registry::new(),
        );
        let diff = closed_loop(&reference, &out.tap);
        assert!(!diff.within_bounds());
        assert!(!diff.violations().is_empty());
        assert!(diff.render().contains("EXCEEDS"));
    }
}
