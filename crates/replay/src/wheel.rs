//! A hierarchical timing wheel: the nanosecond-scale sibling of the
//! DES calendar queue, sized for per-connection pacing deadlines.
//!
//! Six levels of 64 slots each; level `l` spans `64^l` ticks per slot,
//! so the wheel covers `64^6 ≈ 6.9 × 10^10` ticks (~100 days at the
//! default 2^17 ns ≈ 131 µs resolution) before the overflow policy
//! kicks in. Deadlines beyond the horizon park in the top level and
//! re-cascade each time their slot comes around — past-horizon entries
//! can fire late, never early.
//!
//! **Determinism contract.** A deadline quantizes to tick
//! `deadline >> shift`, clamped to the tick after `now` (nothing fires
//! in the past). [`TimingWheel::advance`] delivers every pending entry
//! with `tick <= now_tick` in the total order `(tick, insertion seq)`,
//! independent of cascade timing — the property the virtual-time
//! executor and the proptest oracle both pin.
//!
//! **Placement invariant.** An entry lands at the *smallest* level
//! whose parent slot fields of `tick` and `now` agree (the
//! Varghese–Lauck rule), which guarantees its slot's next boundary is
//! at or before its tick: a pending entry never hides in the slot `now`
//! currently occupies, so the next-boundary bitmap scan is exact.

use crate::clock::Nanos;
use std::collections::BTreeSet;

/// log2(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level; one `u64` occupancy bitmap covers a level exactly.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; the in-range horizon is `SLOTS^LEVELS` ticks.
pub(crate) const LEVELS: usize = 6;

/// Handle for cancelling a scheduled entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry<T> {
    /// Quantized fire tick (absolute, after clamping).
    tick: u64,
    /// Original deadline in nanoseconds, reported back on fire.
    deadline: Nanos,
    seq: u64,
    item: T,
}

/// The wheel. `T` is the per-timer payload (the reactor schedules slab
/// keys; the virtual executor schedules completion records).
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Resolution exponent: one tick is `1 << shift` nanoseconds.
    shift: u32,
    /// Current tick; every entry at or before it has been delivered.
    now: u64,
    seq: u64,
    /// Seqs that are scheduled and neither fired nor cancelled.
    pending: BTreeSet<u64>,
    /// `LEVELS * SLOTS` buckets, flattened level-major.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level slot-occupancy bitmaps for O(1) next-slot scans.
    occupied: [u64; LEVELS],
    /// Scratch for in-tick seq sorting, reused across advances.
    batch: Vec<Entry<T>>,
}

impl<T> TimingWheel<T> {
    /// A wheel with ~131 µs ticks (2^17 ns): fine enough that pacing
    /// error is invisible next to scheduler jitter, coarse enough that
    /// an 86 400-second virtual day is a cheap bitmap walk.
    pub fn new() -> Self {
        Self::with_resolution(1 << 17)
    }

    /// A wheel whose tick is `resolution` nanoseconds rounded up to a
    /// power of two (minimum 1 ns).
    pub fn with_resolution(resolution: Nanos) -> Self {
        let shift = resolution.max(1).next_power_of_two().trailing_zeros();
        Self {
            shift,
            now: 0,
            seq: 0,
            pending: BTreeSet::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            batch: Vec::new(),
        }
    }

    /// One tick, in nanoseconds.
    pub fn resolution(&self) -> Nanos {
        1 << self.shift
    }

    /// Live entries (scheduled and not yet fired or cancelled).
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Level-major bucket index for `tick` as seen from `self.now`:
    /// the smallest level whose parent fields agree (see the placement
    /// invariant in the module docs), else the top level.
    fn bucket(&self, tick: u64) -> usize {
        debug_assert!(tick > self.now);
        let mut level = LEVELS - 1;
        for l in 0..LEVELS - 1 {
            let parent_bits = SLOT_BITS * (l as u32 + 1);
            if tick >> parent_bits == self.now >> parent_bits {
                level = l;
                break;
            }
        }
        let slot = (tick >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
        level * SLOTS + slot
    }

    fn insert(&mut self, e: Entry<T>) {
        let bucket = self.bucket(e.tick);
        // One slot entry per live timer; bounded by live connections.
        self.slots[bucket].push(e);
        self.occupied[bucket / SLOTS] |= 1 << (bucket % SLOTS);
    }

    /// Schedules `item` for `deadline`; returns a cancellation handle.
    /// A deadline at or before the current tick fires on the next
    /// [`advance`](Self::advance) past `now`.
    pub fn schedule(&mut self, deadline: Nanos, item: T) -> TimerId {
        let seq = self.seq;
        self.seq += 1;
        let tick = (deadline >> self.shift).max(self.now + 1);
        self.pending.insert(seq);
        self.insert(Entry {
            tick,
            deadline,
            seq,
            item,
        });
        TimerId(seq)
    }

    /// Cancels a pending entry; its slot residue is dropped lazily at
    /// fire time. Returns false if it already fired or was cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Earliest possible pending deadline, as a conservative lower
    /// bound in nanoseconds: exact for level-0 entries, the slot-start
    /// bound for coarser levels. Sleeping until this bound never
    /// oversleeps a deadline; a wake that fires nothing re-arms at a
    /// refined bound (at most [`LEVELS`] spurious wakes per deadline).
    pub fn next_deadline(&self) -> Option<Nanos> {
        if self.pending.is_empty() {
            return None;
        }
        self.next_boundary().map(|tick| tick << self.shift)
    }

    /// The next tick at which something fires or cascades.
    fn next_boundary(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let span_bits = SLOT_BITS * level as u32;
            let base = self.now >> span_bits;
            // Rotate the bitmap so bit 0 is the slot after `base`;
            // the first set bit's distance is then the slot delta (a
            // set bit on `base`'s own slot reads as a full revolution,
            // which the placement invariant reserves for wrapped
            // past-horizon entries).
            let idx = ((base + 1) % SLOTS as u64) as u32;
            let rotated = self.occupied[level].rotate_right(idx);
            let step = u64::from(rotated.trailing_zeros());
            let boundary = (base + 1 + step) << span_bits;
            best = Some(best.map_or(boundary, |b| b.min(boundary)));
        }
        best
    }

    /// Advances the wheel to `now` nanoseconds, appending every fired
    /// `(deadline, item)` to `fired` in `(tick, seq)` order, skipping
    /// cancelled entries. Never fires an entry whose tick is after
    /// `now`'s; a non-monotone `now` is a no-op.
    pub fn advance(&mut self, now: Nanos, fired: &mut Vec<(Nanos, T)>) {
        let target = now >> self.shift;
        while self.now < target {
            let Some(boundary) = self.next_boundary() else {
                self.now = target;
                return;
            };
            if boundary > target {
                self.now = target;
                return;
            }
            self.now = boundary;
            self.collect_at_now();
            self.drain_batch(fired);
        }
    }

    /// Pulls everything due (or cascading) at `self.now` into `batch`,
    /// re-inserting not-yet-due entries at finer levels.
    fn collect_at_now(&mut self) {
        for level in 0..LEVELS {
            let span_bits = SLOT_BITS * level as u32;
            // A level participates only when `now` sits on one of its
            // slot boundaries (level 0 always does); misalignment at
            // one level implies misalignment above it.
            if self.now & ((1 << span_bits) - 1) != 0 {
                break;
            }
            let slot = (self.now >> span_bits) as usize & (SLOTS - 1);
            let bucket = level * SLOTS + slot;
            if self.slots[bucket].is_empty() {
                continue;
            }
            let mut drained = std::mem::take(&mut self.slots[bucket]);
            self.occupied[level] &= !(1 << slot);
            for e in drained.drain(..) {
                if e.tick <= self.now {
                    // lsw::allow(L009): per-boundary scratch, flushed by drain_batch
                    self.batch.push(e);
                } else {
                    // Cascades to a finer level, or re-parks in the top
                    // level if still past the horizon.
                    self.insert(e);
                }
            }
            // Hand the emptied Vec back so its capacity is reused —
            // unless a past-horizon entry just re-parked in this very
            // slot (a wrap a whole revolution out).
            if self.slots[bucket].is_empty() {
                self.slots[bucket] = drained;
            }
        }
    }

    /// Flushes `batch` into `fired` in seq order, dropping tombstones.
    fn drain_batch(&mut self, fired: &mut Vec<(Nanos, T)>) {
        if self.batch.is_empty() {
            return;
        }
        self.batch.sort_unstable_by_key(|e| e.seq);
        for e in self.batch.drain(..) {
            if !self.pending.remove(&e.seq) {
                continue; // cancelled
            }
            fired.push((e.deadline, e.item));
        }
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimingWheel<u32>, now: Nanos) -> Vec<(Nanos, u32)> {
        let mut fired = Vec::new();
        w.advance(now, &mut fired);
        fired
    }

    #[test]
    fn fires_in_deadline_then_seq_order() {
        let mut w = TimingWheel::with_resolution(1 << 10);
        w.schedule(5_000_000, 3);
        w.schedule(1_000_000, 1);
        w.schedule(1_000_000, 2); // same tick as 1: seq breaks the tie
        w.schedule(9_000_000, 4);
        assert_eq!(w.len(), 4);
        let fired = drain(&mut w, 10_000_000);
        let order: Vec<u32> = fired.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
        assert_eq!(fired[1].0, 1_000_000, "original deadline is reported");
        assert!(w.is_empty());
    }

    #[test]
    fn partial_advance_fires_only_whats_due() {
        let mut w = TimingWheel::with_resolution(1 << 17);
        w.schedule(1 << 20, 1);
        w.schedule(1 << 25, 2);
        let fired = drain(&mut w, 1 << 22);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 1);
        assert_eq!(w.len(), 1);
        let fired = drain(&mut w, 1 << 26);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 2);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_advance() {
        let mut w = TimingWheel::with_resolution(1 << 17);
        drain(&mut w, 1 << 30); // move now forward
        w.schedule(0, 7); // already past: clamps to the next tick
        let fired = drain(&mut w, (1 << 30) + (2 << 17));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 7);
    }

    #[test]
    fn cancel_suppresses_fire_exactly_once() {
        let mut w = TimingWheel::with_resolution(1 << 17);
        let a = w.schedule(1 << 20, 1);
        let b = w.schedule(1 << 21, 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double-cancel reports false");
        assert_eq!(w.len(), 1);
        let fired = drain(&mut w, 1 << 24);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 2);
        assert!(!w.cancel(b), "cancelling a fired id reports false");
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn straddling_a_parent_boundary_still_fires_on_time() {
        // now = 63, deadline 2 ticks out: the naive log2-of-delta
        // placement would collide with the current level-1 slot and
        // fire a revolution late; the parent-field rule must not.
        let mut w = TimingWheel::with_resolution(1);
        drain(&mut w, 63);
        w.schedule(65, 1);
        assert_eq!(drain(&mut w, 64), vec![]);
        assert_eq!(drain(&mut w, 65), vec![(65, 1)]);
    }

    #[test]
    fn far_deadlines_cascade_through_levels() {
        let mut w = TimingWheel::with_resolution(1);
        // Spread across every level, including one past the 64^6
        // horizon (may fire late via top-level re-parks, never early).
        let deadlines = [
            1u64,
            100,
            5_000,
            1 << 20,
            1 << 30,
            1 << 35,
            (1 << 36) + 12345,
        ];
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(d, i as u32);
        }
        let mut fired = Vec::new();
        w.advance(1 << 37, &mut fired);
        let order: Vec<u32> = fired.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
        for (i, &(d, _)) in fired.iter().enumerate() {
            assert_eq!(d, deadlines[i]);
        }
    }

    #[test]
    fn next_deadline_is_a_sound_sleep_bound() {
        let mut w = TimingWheel::with_resolution(1 << 17);
        assert_eq!(w.next_deadline(), None);
        w.schedule(123 << 17, 1);
        let bound = w.next_deadline().expect("pending");
        assert!(bound <= 123 << 17, "never oversleeps the deadline");
        // Following the bound repeatedly reaches the deadline quickly.
        let mut fired = Vec::new();
        let mut hops = 0;
        while w.len() > 0 {
            let b = w.next_deadline().expect("pending");
            w.advance(b, &mut fired);
            hops += 1;
            assert!(hops <= LEVELS as u32 * 2, "bound refines, not spins");
        }
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn virtual_day_advance_is_cheap_and_exact() {
        // 86 400 virtual seconds at default resolution: the advance
        // must jump occupied slots, not iterate ~6.6e8 empty ticks.
        let mut w = TimingWheel::with_resolution(1 << 17);
        let day = 86_400u64 * 1_000_000_000;
        for i in 0..1000u32 {
            w.schedule(u64::from(i) * (day / 1000) + 1, i);
        }
        let t0 = std::time::Instant::now();
        let fired = drain(&mut w, day);
        assert_eq!(fired.len(), 1000);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "advance is O(occupied), not O(ticks)"
        );
        let seqs: Vec<u32> = fired.iter().map(|&(_, v)| v).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }
}
