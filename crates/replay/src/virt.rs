//! The deterministic virtual-time executor.
//!
//! `--virtual-time` replaces sockets, threads, and the wall clock with a
//! single-threaded event simulation over the schedule. The *semantics*
//! are the wall harness's: transfers arrive in start order, pass the same
//! admission model, are paced by an encoded rate that provably covers
//! their byte budget within their duration (so every admitted transfer
//! completes exactly on time with exactly its trace bytes), and are
//! logged to the tap at completion time — rejections immediately, like
//! the socket server.
//!
//! Determinism contract: the executor touches no ambient time, no RNG,
//! and no I/O; completion order is the total order `(stop, admission
//! seq)`; all arithmetic is integer. Two runs over the same schedule and
//! [`StreamConfig`] produce byte-identical JSON reports, at any shard
//! count (the tap's own determinism guarantee).

use crate::metrics::Registry;
use crate::STATUS_REJECTED;
use lsw_sim::server::{AdmissionPolicy, MediaServer, ServerConfig, ServerStats};
use lsw_stream::{StreamAnalyzer, StreamConfig, StreamReport};
use lsw_trace::schedule::Schedule;
use lsw_trace::LogEntry;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One in-flight transfer, ordered by `(stop, admission seq)`.
struct InFlight {
    stop: u32,
    seq: u64,
    entry: LogEntry,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.stop, self.seq) == (other.stop, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.stop, self.seq).cmp(&(other.stop, other.seq))
    }
}

/// What a virtual replay produced.
#[derive(Debug)]
pub struct VirtualOutcome {
    /// The tap's characterization of the (virtually) served traffic.
    pub tap: StreamReport,
    /// Admission accounting.
    pub admission: ServerStats,
    /// Transfers served to completion.
    pub completed: u64,
    /// Transfers refused by admission.
    pub rejected: u64,
    /// Trace bytes served.
    pub bytes_served: u64,
}

/// Runs the whole replay deterministically in virtual time.
pub fn run_virtual(
    schedule: &Schedule,
    admission: AdmissionPolicy,
    stream: StreamConfig,
    registry: &Registry,
) -> VirtualOutcome {
    let completed_c = registry.counter("srv.completed");
    let rejected_c = registry.counter("srv.rejected");
    let bytes_c = registry.counter("srv.bytes_sent");
    let mut server = MediaServer::new(ServerConfig {
        admission,
        ..ServerConfig::default()
    });
    let mut tap = StreamAnalyzer::new(stream);
    // Completions reach the tap in stop order; knowing the longest
    // duration upfront makes the reorder-window release exact.
    tap.preset_lookahead(schedule.max_duration());
    let mut active: BinaryHeap<Reverse<InFlight>> = BinaryHeap::new();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut bytes_served = 0u64;
    let mut seq = 0u64;

    for t in &schedule.transfers {
        // Releases strictly before arrivals at the same second: a slot
        // freed at `t` is available to a transfer starting at `t` (the
        // DES convention).
        while let Some(Reverse(top)) = active.peek() {
            if top.stop > t.start {
                break;
            }
            let Some(Reverse(f)) = active.pop() else {
                break;
            };
            server.release();
            tap.ingest_entry(&f.entry);
            completed += 1;
        }
        if server.request(t.display_duration()) {
            // The encoded rate covers the budget within the duration
            // (`Schedule::object_rates`), so the transfer completes at
            // its scheduled stop with exactly its trace bytes.
            bytes_served += t.bytes;
            active.push(Reverse(InFlight {
                stop: t.stop(),
                seq,
                entry: t.to_entry(),
            }));
            seq += 1;
        } else {
            let mut e = t.to_entry();
            e.status = STATUS_REJECTED;
            tap.ingest_entry(&e);
            rejected += 1;
        }
    }
    while let Some(Reverse(f)) = active.pop() {
        server.release();
        tap.ingest_entry(&f.entry);
        completed += 1;
    }

    completed_c.add(completed);
    rejected_c.add(rejected);
    bytes_c.add(bytes_served);
    VirtualOutcome {
        tap: tap.finalize(),
        admission: server.stats().clone(),
        completed,
        rejected,
        bytes_served,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_trace::event::LogEntryBuilder;
    use lsw_trace::ids::{ClientId, ObjectId};

    fn schedule() -> Schedule {
        let entries: Vec<LogEntry> = (0..300u32)
            .map(|i| {
                LogEntryBuilder::new()
                    .span((i / 3) * 10, (i % 11) + 5)
                    .client(ClientId(i % 23))
                    .object(ObjectId((i % 4) as u16), 0)
                    .transfer_stats(u64::from(i) * 777 + 64, 64_000, 0.0)
                    .build()
            })
            .collect();
        Schedule::from_entries(&entries)
    }

    #[test]
    fn accept_all_serves_everything() {
        let s = schedule();
        let out = run_virtual(
            &s,
            AdmissionPolicy::AcceptAll,
            StreamConfig::default(),
            &Registry::new(),
        );
        assert_eq!(out.completed, 300);
        assert_eq!(out.rejected, 0);
        assert_eq!(out.bytes_served, s.total_bytes());
        assert_eq!(out.tap.accounting.kept, 300);
        assert_eq!(out.admission.accepted, 300);
    }

    #[test]
    fn virtual_runs_are_bit_reproducible() {
        let s = schedule();
        let a = run_virtual(
            &s,
            AdmissionPolicy::RejectAbove { max_concurrent: 4 },
            StreamConfig::default(),
            &Registry::new(),
        );
        let b = run_virtual(
            &s,
            AdmissionPolicy::RejectAbove { max_concurrent: 4 },
            StreamConfig::default(),
            &Registry::new(),
        );
        assert_eq!(a.tap.to_json(), b.tap.to_json());
        assert_eq!(a.admission, b.admission);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn rejections_are_charged_and_logged_failed() {
        let s = schedule();
        let out = run_virtual(
            &s,
            AdmissionPolicy::RejectAbove { max_concurrent: 1 },
            StreamConfig::default(),
            &Registry::new(),
        );
        assert!(out.rejected > 0);
        assert_eq!(out.completed + out.rejected, 300);
        assert_eq!(out.admission.rejected, out.rejected);
        assert!(out.admission.denied_viewer_seconds > 0.0);
        // Rejected transfers reach the tap as failed-status records: they
        // show up in accounting, never in the kept characterization.
        assert_eq!(out.tap.accounting.kept, out.completed);
        let failed: u64 = out.tap.accounting.rejects.iter().map(|&(_, n)| n).sum();
        assert_eq!(failed, out.rejected);
    }
}
