//! The deterministic virtual-time executor.
//!
//! `--virtual-time` replaces sockets, threads, and the wall clock with a
//! single-threaded event simulation over the schedule. The *semantics*
//! are the wall harness's: transfers arrive in start order, pass the same
//! admission model, are paced by an encoded rate that provably covers
//! their byte budget within their duration (so every admitted transfer
//! completes exactly on time with exactly its trace bytes), and are
//! logged to the tap at completion time — rejections immediately, like
//! the socket server.
//!
//! Completion timers run on the same hierarchical [`TimingWheel`] the
//! reactor data plane paces with, driven logically: seconds map to
//! nanoseconds at the wheel's default resolution, and the wheel's
//! `(tick, insertion seq)` fire order realizes the executor's total
//! order `(stop, admission seq)`. Zero-duration transfers (stop ==
//! start, which a strictly-future wheel cannot hold) release through a
//! short same-second queue, preserving the DES convention that a slot
//! freed at `t` is available to a transfer starting at `t`.
//!
//! Determinism contract: the executor touches no ambient time, no RNG,
//! and no I/O; completion order is the total order `(stop, admission
//! seq)`; all arithmetic is integer. Two runs over the same schedule and
//! [`StreamConfig`] produce byte-identical JSON reports, at any shard
//! count (the tap's own determinism guarantee).

use crate::clock::{trace_to_nanos, Nanos};
use crate::metrics::Registry;
use crate::wheel::TimingWheel;
use crate::{payload, proto, STATUS_REJECTED};
use lsw_sim::server::{AdmissionPolicy, MediaServer, ServerConfig, ServerStats};
use lsw_stream::{StreamAnalyzer, StreamConfig, StreamReport};
use lsw_trace::schedule::Schedule;
use lsw_trace::LogEntry;

/// Virtual nanoseconds per trace second.
const SCALE: Nanos = 1_000_000_000;

/// What a virtual replay produced.
#[derive(Debug)]
pub struct VirtualOutcome {
    /// The tap's characterization of the (virtually) served traffic.
    pub tap: StreamReport,
    /// Admission accounting.
    pub admission: ServerStats,
    /// Transfers served to completion.
    pub completed: u64,
    /// Transfers refused by admission.
    pub rejected: u64,
    /// Trace bytes served.
    pub bytes_served: u64,
}

/// Runs the whole replay deterministically in virtual time.
pub fn run_virtual(
    schedule: &Schedule,
    admission: AdmissionPolicy,
    stream: StreamConfig,
    registry: &Registry,
) -> VirtualOutcome {
    let completed_c = registry.counter("srv.completed");
    let rejected_c = registry.counter("srv.rejected");
    let bytes_c = registry.counter("srv.bytes_sent");
    let mut server = MediaServer::new(ServerConfig {
        admission,
        ..ServerConfig::default()
    });
    let mut tap = StreamAnalyzer::new(stream);
    // Completions reach the tap in stop order; knowing the longest
    // duration upfront makes the reorder-window release exact.
    tap.preset_lookahead(schedule.max_duration());
    let mut wheel: TimingWheel<LogEntry> = TimingWheel::new();
    // Admitted zero-duration transfers: due before the next arrival,
    // which may share their second. Strictly earlier-stopped than
    // anything still in the wheel, so draining it first keeps the
    // global `(stop, seq)` order.
    let mut due_now: Vec<LogEntry> = Vec::new();
    let mut fired: Vec<(Nanos, LogEntry)> = Vec::new();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut bytes_served = 0u64;

    for t in &schedule.transfers {
        // Releases strictly before arrivals at the same second: a slot
        // freed at `t` is available to a transfer starting at `t` (the
        // DES convention).
        wheel.advance(u64::from(t.start) * SCALE, &mut fired);
        for e in due_now.drain(..) {
            server.release();
            tap.ingest_entry(&e);
            completed += 1;
        }
        for (_, e) in fired.drain(..) {
            server.release();
            tap.ingest_entry(&e);
            completed += 1;
        }
        if server.request(t.display_duration()) {
            // The encoded rate covers the budget within the duration
            // (`Schedule::object_rates`), so the transfer completes at
            // its scheduled stop with exactly its trace bytes.
            bytes_served += t.bytes;
            if t.stop() == t.start {
                due_now.push(t.to_entry());
            } else {
                wheel.schedule(u64::from(t.stop()) * SCALE, t.to_entry());
            }
        } else {
            let mut e = t.to_entry();
            e.status = STATUS_REJECTED;
            tap.ingest_entry(&e);
            rejected += 1;
        }
    }
    for e in due_now.drain(..) {
        server.release();
        tap.ingest_entry(&e);
        completed += 1;
    }
    while let Some(bound) = wheel.next_deadline() {
        wheel.advance(bound, &mut fired);
        for (_, e) in fired.drain(..) {
            server.release();
            tap.ingest_entry(&e);
            completed += 1;
        }
    }

    completed_c.add(completed);
    rejected_c.add(rejected);
    bytes_c.add(bytes_served);
    VirtualOutcome {
        tap: tap.finalize(),
        admission: server.stats().clone(),
        completed,
        rejected,
        bytes_served,
    }
}

/// Pacing accuracy measured in virtual time: every admitted transfer's
/// reactor pacing deadlines are scheduled on a [`TimingWheel`] and the
/// wheel is driven event-to-event, recording `|fire − deadline|` per
/// step exactly as the live reactor's `srv.pacing_error_ns` histogram
/// does. All percentiles are strictly below the wheel resolution by the
/// wheel's quantization contract — this is the harness that pins it.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacingProfile {
    /// Pacing steps simulated (wheel fires).
    pub steps: u64,
    /// Median absolute pacing error, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile absolute pacing error, nanoseconds.
    pub p99_ns: u64,
    /// Worst absolute pacing error, nanoseconds.
    pub max_ns: u64,
    /// Wheel resolution the profile ran at, nanoseconds.
    pub resolution_ns: u64,
}

/// One simulated subscriber's pacing cursor.
struct Paced {
    join: Nanos,
    rate: u64,
    budget: u64,
    sent: u64,
}

/// Simulates the reactor's per-connection pacing schedule for the whole
/// schedule on a wheel of the given resolution (see [`PacingProfile`]).
pub fn pacing_profile(schedule: &Schedule, compression: f64, resolution: Nanos) -> PacingProfile {
    const BURST: u64 = payload::BLOCK as u64;
    let mut wheel: TimingWheel<Paced> = TimingWheel::with_resolution(resolution);
    let t0 = schedule.transfers.first().map_or(0, |t| t.start);
    for t in &schedule.transfers {
        let budget = proto::wire_budget(t.bytes, compression);
        if budget == 0 {
            continue;
        }
        let p = Paced {
            join: trace_to_nanos(t.start - t0, compression),
            rate: t.byte_rate().max(1),
            budget,
            sent: 0,
        };
        let first = p
            .join
            .saturating_add(proto::pacing_deadline(p.rate, BURST.min(budget)));
        wheel.schedule(first, p);
    }
    let mut errors: Vec<u64> = Vec::new();
    let mut fired: Vec<(Nanos, Paced)> = Vec::new();
    while let Some(bound) = wheel.next_deadline() {
        wheel.advance(bound, &mut fired);
        for (deadline, mut p) in fired.drain(..) {
            errors.push(bound.abs_diff(deadline));
            // The fire grants the chunk the deadline was computed for.
            p.sent = (p.sent + BURST).min(p.budget);
            if p.sent < p.budget {
                let chunk = BURST.min(p.budget - p.sent);
                let next = p
                    .join
                    .saturating_add(proto::pacing_deadline(p.rate, p.sent + chunk));
                wheel.schedule(next, p);
            }
        }
    }
    if errors.is_empty() {
        return PacingProfile {
            resolution_ns: wheel.resolution(),
            ..PacingProfile::default()
        };
    }
    errors.sort_unstable();
    let pick = |q: f64| errors[((errors.len() - 1) as f64 * q) as usize];
    PacingProfile {
        steps: errors.len() as u64,
        p50_ns: pick(0.50),
        p99_ns: pick(0.99),
        max_ns: errors[errors.len() - 1],
        resolution_ns: wheel.resolution(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_trace::event::LogEntryBuilder;
    use lsw_trace::ids::{ClientId, ObjectId};

    fn schedule() -> Schedule {
        let entries: Vec<LogEntry> = (0..300u32)
            .map(|i| {
                LogEntryBuilder::new()
                    .span((i / 3) * 10, (i % 11) + 5)
                    .client(ClientId(i % 23))
                    .object(ObjectId((i % 4) as u16), 0)
                    .transfer_stats(u64::from(i) * 777 + 64, 64_000, 0.0)
                    .build()
            })
            .collect();
        Schedule::from_entries(&entries)
    }

    #[test]
    fn accept_all_serves_everything() {
        let s = schedule();
        let out = run_virtual(
            &s,
            AdmissionPolicy::AcceptAll,
            StreamConfig::default(),
            &Registry::new(),
        );
        assert_eq!(out.completed, 300);
        assert_eq!(out.rejected, 0);
        assert_eq!(out.bytes_served, s.total_bytes());
        assert_eq!(out.tap.accounting.kept, 300);
        assert_eq!(out.admission.accepted, 300);
    }

    #[test]
    fn virtual_runs_are_bit_reproducible() {
        let s = schedule();
        let a = run_virtual(
            &s,
            AdmissionPolicy::RejectAbove { max_concurrent: 4 },
            StreamConfig::default(),
            &Registry::new(),
        );
        let b = run_virtual(
            &s,
            AdmissionPolicy::RejectAbove { max_concurrent: 4 },
            StreamConfig::default(),
            &Registry::new(),
        );
        assert_eq!(a.tap.to_json(), b.tap.to_json());
        assert_eq!(a.admission, b.admission);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn rejections_are_charged_and_logged_failed() {
        let s = schedule();
        let out = run_virtual(
            &s,
            AdmissionPolicy::RejectAbove { max_concurrent: 1 },
            StreamConfig::default(),
            &Registry::new(),
        );
        assert!(out.rejected > 0);
        assert_eq!(out.completed + out.rejected, 300);
        assert_eq!(out.admission.rejected, out.rejected);
        assert!(out.admission.denied_viewer_seconds > 0.0);
        // Rejected transfers reach the tap as failed-status records: they
        // show up in accounting, never in the kept characterization.
        assert_eq!(out.tap.accounting.kept, out.completed);
        let failed: u64 = out.tap.accounting.rejects.iter().map(|&(_, n)| n).sum();
        assert_eq!(failed, out.rejected);
    }

    #[test]
    fn zero_duration_transfers_release_before_same_second_arrivals() {
        // Two zero-duration transfers at the same second under a
        // one-slot cap: the first must free its slot for the second,
        // the DES convention the wheel alone cannot express.
        let entries: Vec<LogEntry> = (0..2)
            .map(|i| {
                LogEntryBuilder::new()
                    .span(10, 0)
                    .client(ClientId(i))
                    .object(ObjectId(0), 0)
                    .transfer_stats(64, 64_000, 0.0)
                    .build()
            })
            .collect();
        let s = Schedule::from_entries(&entries);
        let out = run_virtual(
            &s,
            AdmissionPolicy::RejectAbove { max_concurrent: 1 },
            StreamConfig::default(),
            &Registry::new(),
        );
        assert_eq!(out.completed, 2);
        assert_eq!(out.rejected, 0);
    }

    #[test]
    fn pacing_profile_error_stays_under_the_wheel_resolution() {
        let s = schedule();
        let res = 1 << 17;
        let p = pacing_profile(&s, 100.0, res);
        assert!(p.steps > 0);
        assert_eq!(p.resolution_ns, res);
        assert!(
            p.p99_ns < res,
            "p99 pacing error {} must stay under the wheel resolution {res}",
            p.p99_ns
        );
        assert!(p.max_ns < res, "quantization bounds the worst case too");
        // And it is deterministic.
        let q = pacing_profile(&s, 100.0, res);
        assert_eq!(p.steps, q.steps);
        assert_eq!(p.p99_ns, q.p99_ns);
    }
}
