//! A generational slab: O(1) insert/remove/lookup for reactor
//! connections, with stale-handle detection.
//!
//! Epoll events and timing-wheel entries both carry a [`Key`] rather
//! than a reference. A key packs `(index, generation)` into one `u64`
//! (it rides through `epoll_data` verbatim); the generation is bumped
//! on every removal, so an event or timer that outlives its connection
//! resolves to `None` instead of to whatever reused the slot. That is
//! what lets the reactor skip explicit timer cancellation: a dead
//! connection's pending wheel entry fires once into a stale key and is
//! dropped.

/// A slot handle: index plus the generation it was issued under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    index: u32,
    gen: u32,
}

impl Key {
    /// Packs the key for transport through `epoll_data`/usize tokens.
    pub fn to_usize(self) -> usize {
        ((self.gen as usize) << 32) | self.index as usize
    }

    /// Recovers a key packed by [`Key::to_usize`].
    pub fn from_usize(v: usize) -> Self {
        Self {
            index: (v & 0xFFFF_FFFF) as u32,
            gen: (v >> 32) as u32,
        }
    }
}

#[derive(Debug)]
enum Slot<T> {
    /// Free slot, linking to the next free index (`u32::MAX` = none).
    Vacant {
        next_free: u32,
    },
    Occupied {
        gen: u32,
        value: T,
    },
}

/// The slab proper.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Head of the intrusive free list (`u32::MAX` = none).
    free_head: u32,
    len: usize,
    /// Generation to stamp on the next insert, bumped per removal so
    /// a reused slot never validates an old key.
    next_gen: u32,
}

const NO_FREE: u32 = u32::MAX;

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free_head: NO_FREE,
            len: 0,
            next_gen: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, reusing a vacated slot when one exists.
    pub fn insert(&mut self, value: T) -> Key {
        let gen = self.next_gen;
        self.len += 1;
        if self.free_head != NO_FREE {
            let index = self.free_head;
            match self.slots[index as usize] {
                Slot::Vacant { next_free } => self.free_head = next_free,
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            }
            self.slots[index as usize] = Slot::Occupied { gen, value };
            return Key { index, gen };
        }
        // A u32 index bounds the slab at 4.3 billion concurrent
        // connections — beyond any fd table this harness can open.
        debug_assert!(self.slots.len() < NO_FREE as usize);
        let index = self.slots.len() as u32;
        // Grows to peak concurrent connections, then recycles via the free list.
        self.slots.push(Slot::Occupied { gen, value });
        Key { index, gen }
    }

    /// Looks up a live entry; `None` for vacated or stale keys.
    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        match self.slots.get_mut(key.index as usize) {
            Some(Slot::Occupied { gen, value }) if *gen == key.gen => Some(value),
            _ => None,
        }
    }

    /// Removes and returns an entry; `None` if the key is stale. Bumps
    /// the generation so outstanding copies of the key go stale.
    pub fn remove(&mut self, key: Key) -> Option<T> {
        match self.slots.get(key.index as usize) {
            Some(Slot::Occupied { gen, .. }) if *gen == key.gen => {}
            _ => return None,
        }
        let slot = std::mem::replace(
            &mut self.slots[key.index as usize],
            Slot::Vacant {
                next_free: self.free_head,
            },
        );
        self.free_head = key.index;
        self.len -= 1;
        self.next_gen = self.next_gen.wrapping_add(1);
        match slot {
            Slot::Occupied { value, .. } => Some(value),
            Slot::Vacant { .. } => None,
        }
    }

    /// Iterates live `(key, &mut value)` pairs (drain paths only — the
    /// hot path is key lookup, never a scan).
    pub fn iter_keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied { gen, .. } => Some(Key {
                index: i as u32,
                gen: *gen,
            }),
            Slot::Vacant { .. } => None,
        })
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get_mut(a), Some(&mut "a"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get_mut(a), None, "removed key is dead");
        assert_eq!(s.remove(a), None, "double remove is safe");
        assert_eq!(s.get_mut(b), Some(&mut "b"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reused_slot_invalidates_the_old_key() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // Same physical slot, different generation.
        assert_eq!(s.get_mut(a), None, "stale key misses");
        assert_eq!(s.get_mut(b), Some(&mut 2));
        assert_eq!(s.slots.len(), 1, "slot was recycled, not grown");
    }

    #[test]
    fn keys_survive_usize_packing() {
        let mut s = Slab::new();
        for i in 0..100u32 {
            let k = s.insert(i);
            assert_eq!(Key::from_usize(k.to_usize()), k);
        }
        let k = s.iter_keys().nth(42).expect("live key");
        assert_eq!(s.get_mut(Key::from_usize(k.to_usize())), Some(&mut 42));
    }

    #[test]
    fn free_list_is_lifo_and_complete() {
        let mut s = Slab::new();
        let keys: Vec<Key> = (0..10).map(|i| s.insert(i)).collect();
        for &k in &keys {
            s.remove(k);
        }
        assert!(s.is_empty());
        for i in 0..10 {
            s.insert(100 + i);
        }
        assert_eq!(s.slots.len(), 10, "all ten slots recycled");
        assert_eq!(s.len(), 10);
    }
}
