//! The replay wire protocol.
//!
//! One ASCII request line from client to server:
//!
//! ```text
//! LSW1 <start> <duration> <client> <ip> <as> <country> <object> <camera> <bytes> <avg_bw> <status>\n
//! ```
//!
//! i.e. the [`ScheduledTransfer`] the driver is re-offering, in trace
//! coordinates. The server answers with exactly one status line —
//! `OK <wire_bytes>\n` or `BUSY\n` — then, on `OK`, streams `wire_bytes`
//! payload bytes paced at the feed's encoded bitrate and closes. The
//! original trace fields ride the request so the server's completion log
//! (the characterization tap) is in trace coordinates even though the
//! wire traffic is time- and byte-compressed.

use crate::clock::Nanos;
use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use lsw_trace::schedule::ScheduledTransfer;

/// Maximum request line length a server will buffer before giving up.
pub const MAX_REQUEST_LINE: usize = 256;

/// Formats the request line for one scheduled transfer (no newline).
pub fn encode_request(t: &ScheduledTransfer) -> String {
    format!(
        "LSW1 {} {} {} {} {} {}{} {} {} {} {} {}",
        t.start,
        t.duration,
        t.client.0,
        t.ip.0,
        t.as_id.0,
        t.country.0[0] as char,
        t.country.0[1] as char,
        t.object.0,
        t.camera,
        t.bytes,
        t.avg_bandwidth,
        t.status,
    )
}

/// Parses a request line (without the trailing newline).
pub fn parse_request(line: &str) -> Option<ScheduledTransfer> {
    let mut f = line.split_ascii_whitespace();
    if f.next()? != "LSW1" {
        return None;
    }
    let start = f.next()?.parse().ok()?;
    let duration = f.next()?.parse().ok()?;
    let client = ClientId(f.next()?.parse().ok()?);
    let ip = Ipv4Addr(f.next()?.parse().ok()?);
    let as_id = AsId(f.next()?.parse().ok()?);
    let country = f.next()?.as_bytes();
    let country = CountryCode(<[u8; 2]>::try_from(country).ok()?);
    let object = ObjectId(f.next()?.parse().ok()?);
    let camera = f.next()?.parse().ok()?;
    let bytes = f.next()?.parse().ok()?;
    let avg_bandwidth = f.next()?.parse().ok()?;
    let status = f.next()?.parse().ok()?;
    if f.next().is_some() {
        return None;
    }
    Some(ScheduledTransfer {
        start,
        duration,
        client,
        ip,
        as_id,
        country,
        object,
        camera,
        bytes,
        avg_bandwidth,
        status,
    })
}

/// Bytes actually moved over the wire for a transfer of `bytes` trace
/// bytes at the given compression: the byte budget shrinks with time so
/// the *rate* on the wire stays the trace's rate. Non-empty transfers
/// always move at least one byte, so completion is observable.
pub fn wire_budget(bytes: u64, compression: f64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    ((bytes as f64 / compression.max(1.0)).ceil() as u64).max(1)
}

/// Wire pacing position of a feed: bytes a subscriber of a feed encoded
/// at `rate` trace-bytes/second is entitled to after `elapsed` replay
/// nanoseconds. The trace rate carries over to the wire unchanged (both
/// bytes and seconds divide by the compression factor).
pub fn paced_position(rate: u64, elapsed: Nanos) -> u64 {
    ((u128::from(rate) * u128::from(elapsed)) / 1_000_000_000).min(u128::from(u64::MAX)) as u64
}

/// Inverse of [`paced_position`]: nanoseconds after joining a feed
/// encoded at `rate` trace-bytes/second at which the broadcast has
/// produced `bytes` — the reactor's next pacing deadline. Rounds up,
/// so the position at the returned time is at least `bytes`.
pub fn pacing_deadline(rate: u64, bytes: u64) -> Nanos {
    let r = u128::from(rate.max(1));
    let num = u128::from(bytes) * 1_000_000_000;
    u64::try_from(num.div_ceil(r)).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer() -> ScheduledTransfer {
        ScheduledTransfer {
            start: 1234,
            duration: 567,
            client: ClientId(42),
            ip: Ipv4Addr(0x7f000001),
            as_id: AsId(7),
            country: CountryCode(*b"BR"),
            object: ObjectId(3),
            camera: 2,
            bytes: 1_000_000,
            avg_bandwidth: 350_000,
            status: 200,
        }
    }

    #[test]
    fn request_round_trips() {
        let t = transfer();
        let line = encode_request(&t);
        assert!(line.len() < MAX_REQUEST_LINE);
        assert_eq!(parse_request(&line), Some(t));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert_eq!(parse_request(""), None);
        assert_eq!(parse_request("GET / HTTP/1.0"), None);
        assert_eq!(parse_request("LSW1 1 2 3"), None);
        let mut line = encode_request(&transfer());
        line.push_str(" extra");
        assert_eq!(parse_request(&line), None);
    }

    #[test]
    fn wire_budget_scales_and_floors() {
        assert_eq!(wire_budget(1_000_000, 100.0), 10_000);
        assert_eq!(wire_budget(5, 100.0), 1); // floor at one observable byte
        assert_eq!(wire_budget(0, 100.0), 0);
        assert_eq!(wire_budget(999, 1.0), 999);
        assert_eq!(wire_budget(100, 0.5), 100); // compression clamps at 1x
    }

    #[test]
    fn pacing_position_is_linear_in_time() {
        assert_eq!(paced_position(48_000, 1_000_000_000), 48_000);
        assert_eq!(paced_position(48_000, 500_000_000), 24_000);
        assert_eq!(paced_position(0, u64::MAX), 0);
    }

    #[test]
    fn pacing_deadline_inverts_position() {
        assert_eq!(pacing_deadline(48_000, 48_000), 1_000_000_000);
        assert_eq!(pacing_deadline(48_000, 24_000), 500_000_000);
        assert_eq!(pacing_deadline(0, 100), pacing_deadline(1, 100));
        // Round-trip: by the returned deadline the position covers the
        // requested bytes, and one nanosecond earlier it does not.
        for (rate, bytes) in [(3u64, 10u64), (48_000, 1), (999_999, 123_456)] {
            let d = pacing_deadline(rate, bytes);
            assert!(paced_position(rate, d) >= bytes);
            assert!(paced_position(rate, d - 1) < bytes);
        }
    }
}
