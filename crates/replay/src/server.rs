//! The paced localhost serving harness.
//!
//! One accept thread hands connections round-robin to a fixed pool of
//! worker shards, so the thread count is bounded by `workers + 2` no
//! matter how many clients are connected. Each shard owns its
//! connections outright and advances them on one of two data planes:
//!
//! * [`DataPlane::Reactor`] (default) — an epoll readiness reactor: a
//!   connection is touched only when its socket turns readable or
//!   writable, or when its pacing deadline fires from a hierarchical
//!   [timing wheel](crate::wheel) armed through a nanosecond `timerfd`.
//!   Payload is staged from the shared immutable
//!   [arena](crate::payload) into vectored writes; connections live in
//!   a generational [slab](crate::slab), so stale events and stale
//!   timers resolve to nothing instead of to a recycled socket. Cost
//!   per iteration: O(ready + expired).
//! * [`DataPlane::Tick`] — the historical 2 ms sleep-scan loop, kept as
//!   the committed baseline the `replay_serve` bench stage compares
//!   against. Cost per iteration: O(connections).
//!
//! **Pacing.** Each live feed is a broadcast: a feed encoded at `rate`
//! trace-bytes/second has a global position `rate × elapsed`, and a
//! subscriber is entitled to the bytes the broadcast produced since it
//! joined, capped by its transfer's wire byte budget. Time compression
//! divides both the budget and the wall duration, so the *wire rate* is
//! the trace rate unchanged. The reactor paces with wheel-resolution
//! error (default 2^17 ns ≈ 131 µs) instead of the tick loop's ±2 ms.
//!
//! **Admission.** Every parsed request goes through the simulator's
//! [`MediaServer`] — the same [`AdmissionPolicy`] semantics the DES uses
//! — and a rejection is answered with `BUSY`, logged to the tap with
//! [`STATUS_REJECTED`], and charged as denied viewer-seconds.
//!
//! **Slow clients.** A subscriber whose backlog (entitlement minus bytes
//! actually written) exceeds the configured send-buffer bound is either
//! dropped (logged truncated) or allowed to lag, per
//! [`SlowClientPolicy`]. A write-blocked reactor connection under the
//! drop policy arms a wheel entry at the instant its client's aggregate
//! backlog would trip the bound, so stuck peers are dropped on time
//! without any periodic scan.
//!
//! **Tap.** Completions are logged WMS-style — at connection close, in
//! trace coordinates taken from the request line — into an embedded
//! [`StreamAnalyzer`], which is finalized into the run's closed-loop
//! [`StreamReport`] on drain.

use crate::clock::{trace_to_nanos, Nanos, WallClock};
use crate::metrics::{Counter, Gauge, LogHistogram, Registry, Snapshot};
use crate::payload::{self, MAX_SLICES};
use crate::proto::{self, MAX_REQUEST_LINE};
use crate::slab::{Key, Slab};
use crate::wheel::{TimerId, TimingWheel};
use crate::{STATUS_REJECTED, STATUS_TRUNCATED};
use lsw_sim::server::{AdmissionPolicy, MediaServer, ServerStats};
use lsw_stream::{StreamAnalyzer, StreamConfig, StreamReport};
use lsw_trace::schedule::ScheduledTransfer;
use mio::unix::SourceFd;
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;
use timerfd::{TimerFd, TimerState};

/// Slot count of the hashed per-client backlog table. Collisions make
/// two clients share a byte budget, which only trips the slow-client
/// policy *sooner* — the memory bound stays conservative.
const CLIENT_BACKLOG_SLOTS: usize = 1024;

/// Reactor token for the cross-thread shutdown/intake waker.
const WAKER_TOKEN: Token = Token(usize::MAX);
/// Reactor token for the timing-wheel timerfd.
const TIMER_TOKEN: Token = Token(usize::MAX - 1);

/// Minimum bytes granted per pacing step: deadlines are spaced so each
/// wheel fire moves at least this much (or `rate × resolution` at high
/// rates, whichever is larger), keeping timer traffic off fast feeds.
const PACING_BURST: u64 = payload::BLOCK as u64;

/// The tick plane's historical write chunk (the seed's 8 KiB pattern
/// buffer), preserved so the committed baseline stays the baseline.
const TICK_WRITE: usize = 8192;

/// Maps a client id onto its backlog accounting slot.
fn client_slot(client: lsw_trace::ids::ClientId) -> usize {
    client.0 as usize % CLIENT_BACKLOG_SLOTS
}

/// What to do with a subscriber that cannot keep up with its feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowClientPolicy {
    /// Close the connection and log the transfer truncated — the live
    /// answer (the broadcast cannot wait).
    Drop,
    /// Let the backlog grow and the client lag the broadcast — the
    /// stored-media answer. Memory stays bounded either way: payload is
    /// staged from the shared arena at write time, never queued.
    Backpressure,
}

/// Which serving data plane the workers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPlane {
    /// Event-driven: epoll readiness + timing-wheel pacing (default).
    #[default]
    Reactor,
    /// The historical sleep-scan poll loop (bench baseline).
    Tick,
}

/// Serving harness configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub listen: String,
    /// Admission policy (the DES semantics, on real sockets).
    pub admission: AdmissionPolicy,
    /// Time-compression factor shared with the driver.
    pub compression: f64,
    /// Per-client backlog bound in wire bytes before the slow-client
    /// policy applies. Accounted in bytes and aggregated across all of a
    /// client's connections, so a few large objects cannot blow the
    /// budget through separate sockets.
    pub send_buffer: u64,
    /// Slow-client policy.
    pub slow_policy: SlowClientPolicy,
    /// Worker shards.
    pub workers: usize,
    /// Serving data plane.
    pub data_plane: DataPlane,
    /// Pacing tick for the [`DataPlane::Tick`] plane, nanoseconds.
    pub tick: Nanos,
    /// Timing-wheel resolution for the reactor plane, nanoseconds
    /// (rounded up to a power of two; pacing error is bounded by it).
    pub wheel_resolution: Nanos,
    /// Maximum wait for in-flight transfers during drain, nanoseconds;
    /// survivors are then truncated.
    pub drain: Nanos,
    /// Tap (characterization) configuration.
    pub stream: StreamConfig,
    /// Longest transfer duration the tap will see (trace seconds),
    /// usually `Schedule::max_duration`. Completions reach the tap in
    /// stop order, so this presets its look-ahead reorder window; 0 lets
    /// the tap infer the window from what it has seen.
    pub lookahead: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            admission: AdmissionPolicy::AcceptAll,
            compression: 100.0,
            send_buffer: 256 << 10,
            slow_policy: SlowClientPolicy::Drop,
            workers: 2,
            data_plane: DataPlane::Reactor,
            tick: 2_000_000,
            wheel_resolution: 1 << 17,
            drain: 10_000_000_000,
            stream: StreamConfig::default(),
            lookahead: 0,
        }
    }
}

/// Everything a drained server hands back.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The tap's characterization of the traffic actually served.
    pub tap: StreamReport,
    /// Admission accounting (accepted/rejected/denied viewer-seconds).
    pub admission: ServerStats,
    /// Final metrics capture.
    pub metrics: Snapshot,
}

struct ServerMetrics {
    accepted_conns: Arc<Counter>,
    active: Arc<Gauge>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    slow_dropped: Arc<Counter>,
    truncated: Arc<Counter>,
    bad_requests: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    backlog: Arc<LogHistogram>,
    transfer_wall_ms: Arc<LogHistogram>,
    /// |fire time − deadline| per wheel expiry, nanoseconds.
    pacing_error_ns: Arc<LogHistogram>,
}

impl ServerMetrics {
    fn register(r: &Registry) -> Self {
        Self {
            accepted_conns: r.counter("srv.conns"),
            active: r.gauge("srv.active"),
            completed: r.counter("srv.completed"),
            rejected: r.counter("srv.rejected"),
            slow_dropped: r.counter("srv.slow_dropped"),
            truncated: r.counter("srv.truncated"),
            bad_requests: r.counter("srv.bad_requests"),
            bytes_sent: r.counter("srv.bytes_sent"),
            backlog: r.histogram("srv.backlog_bytes"),
            transfer_wall_ms: r.histogram("srv.transfer_wall_ms"),
            pacing_error_ns: r.histogram("srv.pacing_error_ns"),
        }
    }
}

struct Shared {
    compression: f64,
    send_buffer: u64,
    slow_policy: SlowClientPolicy,
    tick: Nanos,
    wheel_resolution: Nanos,
    /// Encoded trace-byte rate per object id (dense, indexed by id).
    rates: Vec<u64>,
    admission: Mutex<MediaServer>,
    tap: Mutex<StreamAnalyzer>,
    /// Aggregate backlog per client in bytes, hashed into a fixed slot
    /// table (see [`client_slot`]). Updated by delta from each
    /// connection's step so the sum stays exact per connection.
    client_backlog: Vec<AtomicU64>,
    clock: Arc<WallClock>,
    metrics: ServerMetrics,
    /// Stop accepting; workers finish in-flight transfers.
    shutdown: AtomicBool,
    /// Truncate whatever is still in flight and exit.
    force: AtomicBool,
}

impl Shared {
    fn rate_for(&self, t: &ScheduledTransfer) -> u64 {
        // Feeds absent from the rate table (standalone `lsw serve`
        // against an unknown trace) fall back to the transfer's own byte
        // rate, which still covers its budget within its duration.
        match self.rates.get(usize::from(t.object.0)) {
            Some(&r) if r > 0 => r,
            _ => t.byte_rate().max(1),
        }
    }

    /// Logs one finished (or refused) transfer into the tap.
    fn log_tap(&self, t: &ScheduledTransfer, status: u16) {
        let mut e = t.to_entry();
        e.status = status;
        // lsw::allow(L008): tap ingest is a short bounded critical section (no I/O under the lock)
        self.tap.lock().ingest_entry(&e);
    }

    /// Folds a connection's fresh backlog reading into its client's
    /// aggregate slot (by delta against what this connection last
    /// contributed) and returns the client's total backlog in bytes.
    fn account_backlog(&self, t: &ScheduledTransfer, accounted: &mut u64, backlog: u64) -> u64 {
        let slot = &self.client_backlog[client_slot(t.client)];
        if backlog >= *accounted {
            slot.fetch_add(backlog - *accounted, Ordering::Relaxed);
        } else {
            slot.fetch_sub(*accounted - backlog, Ordering::Relaxed);
        }
        *accounted = backlog;
        slot.load(Ordering::Relaxed)
    }

    /// Returns a finished connection's outstanding contribution to its
    /// client's backlog slot. Exact: each connection's adds and subs net
    /// to `accounted`, so slot totals never underflow across clients.
    fn release_backlog(&self, t: &ScheduledTransfer, accounted: u64) {
        self.client_backlog[client_slot(t.client)].fetch_sub(accounted, Ordering::Relaxed);
    }
}

enum ConnState {
    Request { buf: Vec<u8> },
    Streaming(Box<Streaming>),
}

struct Streaming {
    t: ScheduledTransfer,
    rate: u64,
    join: Nanos,
    hold_until: Nanos,
    budget: u64,
    sent: u64,
    /// Backlog bytes this connection currently contributes to its
    /// client's aggregate slot (see [`Shared::account_backlog`]).
    accounted: u64,
    /// The connection's pending wheel entry, if any: at most one per
    /// connection (re-arming cancels the old one).
    timer: Option<TimerId>,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Reactor only: last write hit `WouldBlock`; waiting on EPOLLOUT.
    blocked: bool,
    /// Reactor only: EPOLLOUT currently registered for this socket.
    registered_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            state: ConnState::Request { buf: Vec::new() },
            blocked: false,
            registered_write: false,
        }
    }
}

/// The running serving harness.
pub struct ReplayServer {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_handle: std::thread::JoinHandle<()>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    /// One per reactor worker; empty on the tick plane.
    wakers: Vec<Arc<Waker>>,
    registry: Arc<Registry>,
    drain: Nanos,
}

impl ReplayServer {
    /// Binds, spawns the accept thread and worker shards, and returns.
    ///
    /// `rates` is the per-object encoded-rate table (usually
    /// `Schedule::object_rates`); `clock` is shared with the driver so
    /// both sides agree on replay time.
    pub fn start(
        cfg: ServerConfig,
        rates: &[(lsw_trace::ids::ObjectId, u64)],
        clock: Arc<WallClock>,
        registry: Arc<Registry>,
    ) -> io::Result<Self> {
        #[allow(clippy::disallowed_methods)]
        // lsw::allow(L002): the serving harness binds a real socket by design
        let listener = TcpListener::bind(&cfg.listen)?;
        // A replay connect storm (thousands of subscribers joining at
        // one trace instant) overflows std's default backlog of 128 and
        // turns into seconds-long SYN-retransmit stalls; widen to the
        // kernel cap. Best-effort: a refusing kernel leaves 128 in place.
        let _ = mio::widen_listen_backlog(&listener, 4096);
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut rate_table = Vec::new();
        for &(obj, rate) in rates {
            let idx = usize::from(obj.0);
            if rate_table.len() <= idx {
                rate_table.resize(idx + 1, 0u64);
            }
            rate_table[idx] = rate;
        }

        let shared = Arc::new(Shared {
            compression: cfg.compression.max(1.0),
            send_buffer: cfg.send_buffer,
            slow_policy: cfg.slow_policy,
            tick: cfg.tick.max(100_000),
            wheel_resolution: cfg.wheel_resolution.max(1),
            rates: rate_table,
            admission: Mutex::new(MediaServer::new(lsw_sim::server::ServerConfig {
                admission: cfg.admission,
                ..lsw_sim::server::ServerConfig::default()
            })),
            tap: Mutex::new({
                let mut tap = StreamAnalyzer::new(cfg.stream.clone());
                tap.preset_lookahead(cfg.lookahead);
                tap
            }),
            client_backlog: (0..CLIENT_BACKLOG_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            clock,
            metrics: ServerMetrics::register(&registry),
            shutdown: AtomicBool::new(false),
            force: AtomicBool::new(false),
        });

        let workers = cfg.workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut wakers = Vec::new();
        let mut worker_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            match cfg.data_plane {
                DataPlane::Reactor => {
                    // lsw::allow(L002): the reactor acquires its epoll endpoint by design
                    let poll = Poll::new()?;
                    // lsw::allow(L002): the shutdown/intake eventfd waker is a reactor endpoint by design
                    let waker = Arc::new(Waker::new(poll.registry(), WAKER_TOKEN)?);
                    // lsw::allow(L002): the deadline timerfd is a reactor endpoint by design
                    let mut timer = TimerFd::new()?;
                    let timer_fd = timer.as_raw_fd();
                    poll.registry().register(
                        &mut SourceFd(&timer_fd),
                        TIMER_TOKEN,
                        Interest::READABLE,
                    )?;
                    wakers.push(Arc::clone(&waker));
                    worker_handles.push(
                        std::thread::Builder::new()
                            .name(format!("lsw-reactor-{w}"))
                            .spawn(move || {
                                reactor_loop(&shared, &rx, poll, &mut timer);
                            })?,
                    );
                }
                DataPlane::Tick => {
                    worker_handles.push(
                        std::thread::Builder::new()
                            .name(format!("lsw-tick-{w}"))
                            .spawn(move || tick_worker_loop(&shared, &rx))?,
                    );
                }
            }
        }

        let accept_shared = Arc::clone(&shared);
        let accept_wakers = wakers.clone();
        let accept_handle = std::thread::Builder::new()
            .name("lsw-accept".to_owned())
            .spawn(move || {
                accept_loop(&listener, &accept_shared, &senders, &accept_wakers);
                // Dropping the senders here disconnects every worker's
                // channel, which is their cue that no more work is coming.
            })?;

        Ok(Self {
            shared,
            addr,
            accept_handle,
            worker_handles,
            wakers,
            registry,
            drain: cfg.drain,
        })
    }

    /// The actually-bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The metrics registry this server reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn wake_workers(&self) {
        for w in &self.wakers {
            let _ = w.wake();
        }
    }

    /// Stops accepting, waits up to the drain budget for in-flight
    /// transfers, truncates survivors, joins every thread, and finalizes
    /// the tap.
    pub fn finish(self) -> ServeOutcome {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.wake_workers();
        let deadline = self.shared.clock.now().saturating_add(self.drain);
        while self.shared.metrics.active.get() > 0 && self.shared.clock.now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        self.shared.force.store(true, Ordering::SeqCst);
        self.wake_workers();
        join_or_propagate(self.accept_handle);
        for h in self.worker_handles {
            join_or_propagate(h);
        }
        let admission = self.shared.admission.lock().stats().clone();
        let analyzer = std::mem::replace(
            &mut *self.shared.tap.lock(),
            StreamAnalyzer::new(StreamConfig::default()),
        );
        ServeOutcome {
            tap: analyzer.finalize(),
            admission,
            metrics: self.registry.snapshot(),
        }
    }
}

fn join_or_propagate(h: std::thread::JoinHandle<()>) {
    if let Err(payload) = h.join() {
        std::panic::resume_unwind(payload);
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    senders: &[mpsc::Sender<TcpStream>],
    wakers: &[Arc<Waker>],
) {
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue; // peer already gone
                }
                shared.metrics.accepted_conns.inc();
                shared.metrics.active.inc();
                let w = next % senders.len();
                if senders[w].send(stream).is_err() {
                    shared.metrics.active.dec();
                    return; // worker gone; shutting down
                }
                // Kick the shard's reactor out of epoll_wait to adopt
                // the connection (no-op slice on the tick plane).
                if let Some(waker) = wakers.get(w) {
                    let _ = waker.wake();
                }
                next += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }
}

// ---------------------------------------------------------------------
// Reactor data plane.

/// One reactor shard: adopts connections from `rx`, then serves on
/// readiness events and timing-wheel deadlines only. Exits once the
/// intake channel is gone and every connection is finished (or on
/// force-drain).
fn reactor_loop(
    shared: &Shared,
    rx: &mpsc::Receiver<TcpStream>,
    mut poll: Poll,
    timer: &mut TimerFd,
) {
    let mut events = Events::with_capacity(1024);
    let mut wheel: TimingWheel<Key> = TimingWheel::with_resolution(shared.wheel_resolution);
    let mut conns: Slab<Conn> = Slab::new();
    let mut fired: Vec<(Nanos, Key)> = Vec::new();
    let mut keys: Vec<Key> = Vec::new();
    let mut slices = [IoSlice::new(&[]); MAX_SLICES];
    let mut disconnected = false;
    // Deadline currently programmed into the timerfd, so an unchanged
    // wheel head does not cost a timerfd_settime(2) every iteration.
    let mut armed: Option<Nanos> = None;
    loop {
        // Adopt queued connections and register them for readiness.
        loop {
            match rx.try_recv() {
                Ok(stream) => {
                    let key = conns.insert(Conn::new(stream));
                    let Some(conn) = conns.get_mut(key) else {
                        continue;
                    };
                    if poll
                        .registry()
                        .register(&mut conn.stream, Token(key.to_usize()), Interest::READABLE)
                        .is_err()
                    {
                        conns.remove(key);
                        shared.metrics.active.dec();
                        shared.metrics.bad_requests.inc();
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        if shared.force.load(Ordering::Relaxed) {
            keys.clear();
            keys.extend(conns.iter_keys());
            let now = shared.clock.now();
            for &key in &keys {
                if let Some(conn) = conns.remove(key) {
                    match &conn.state {
                        ConnState::Streaming(s) => {
                            finish_streaming(shared, s, now, STATUS_TRUNCATED);
                            shared.metrics.truncated.inc();
                        }
                        ConnState::Request { .. } => shared.metrics.bad_requests.inc(),
                    }
                    shared.metrics.active.dec();
                }
            }
        }
        let draining = disconnected || shared.shutdown.load(Ordering::Relaxed);
        if draining && conns.is_empty() {
            return;
        }

        // Fire due pacing deadlines.
        let now = shared.clock.now();
        wheel.advance(now, &mut fired);
        for (deadline, key) in fired.drain(..) {
            shared
                .metrics
                .pacing_error_ns
                .record(now.abs_diff(deadline));
            step_conn(
                shared,
                &mut conns,
                &mut wheel,
                &poll,
                key,
                now,
                false,
                &mut slices,
            );
        }

        // Sleep until the next readiness event or wheel deadline. The
        // timerfd carries nanosecond precision that epoll_wait's
        // millisecond timeout cannot. When a deadline is already due
        // (the shard is running behind), harvest pending readiness
        // without sleeping and loop straight back to fire it.
        let next = wheel.next_deadline();
        let timeout = if next.is_some_and(|d| d <= shared.clock.now()) {
            Some(Duration::ZERO)
        } else {
            if next != armed {
                let _ = match next {
                    Some(d) => {
                        let wait = d.saturating_sub(shared.clock.now()).max(1);
                        timer.set_state(TimerState::Oneshot(Duration::from_nanos(wait)))
                    }
                    None => timer.set_state(TimerState::Disarmed),
                };
                armed = next;
            }
            None
        };
        // lsw::allow(L008): the reactor's single scheduling point; bounded by the armed timerfd and woken by the shutdown/intake waker
        if poll.poll(&mut events, timeout).is_err() {
            // epoll on our own fds only fails if the process is out of
            // resources; treat it as a drain signal rather than spin.
            shared.force.store(true, Ordering::Relaxed);
            continue;
        }
        let now = shared.clock.now();
        for event in events.iter() {
            match event.token() {
                WAKER_TOKEN => {} // intake/shutdown nudge; handled above
                TIMER_TOKEN => {
                    timer.read();
                }
                tok => {
                    let key = Key::from_usize(tok.0);
                    let readable = event.is_readable() || event.is_error();
                    step_conn(
                        shared,
                        &mut conns,
                        &mut wheel,
                        &poll,
                        key,
                        now,
                        readable,
                        &mut slices,
                    );
                }
            }
        }
    }
}

/// Advances one connection on a readiness event or wheel fire, then
/// reconciles its slab slot and EPOLLOUT registration. Stale keys (a
/// timer outliving its connection) are ignored.
#[allow(clippy::too_many_arguments)]
fn step_conn(
    shared: &Shared,
    conns: &mut Slab<Conn>,
    wheel: &mut TimingWheel<Key>,
    poll: &Poll,
    key: Key,
    now: Nanos,
    readable: bool,
    slices: &mut [IoSlice<'static>; MAX_SLICES],
) {
    let Some(conn) = conns.get_mut(key) else {
        return;
    };
    let done = advance_reactor(shared, conn, key, now, readable, wheel, slices);
    if done {
        shared.metrics.active.dec();
        // Dropping the stream closes the fd, which also removes it
        // from the epoll set; the wheel's residue (if any) fires into
        // a stale generation and is dropped.
        conns.remove(key);
        return;
    }
    let want_write = conn.blocked;
    if want_write != conn.registered_write {
        let interest = if want_write {
            // Edge-triggered while write-blocked: stream_step writes to
            // WouldBlock on every wake, so one event per writability
            // transition suffices — and at overload it batches a whole
            // drain-hysteresis worth of bytes per syscall, where the
            // level-triggered storm wrote slivers. (EPOLL_CTL_MOD
            // re-checks readiness, so a drain racing this rearm still
            // delivers an immediate event.)
            (Interest::READABLE | Interest::WRITABLE).edge()
        } else {
            Interest::READABLE
        };
        if poll
            .registry()
            .reregister(&mut conn.stream, Token(key.to_usize()), interest)
            .is_ok()
        {
            conn.registered_write = want_write;
        }
    }
}

/// Event-driven twin of the tick plane's [`advance`]: identical
/// request/admission/pacing/backlog semantics, but progress happens
/// only on readiness or deadline, and payload goes out as vectored
/// writes from the shared arena.
fn advance_reactor(
    shared: &Shared,
    conn: &mut Conn,
    key: Key,
    now: Nanos,
    readable: bool,
    wheel: &mut TimingWheel<Key>,
    slices: &mut [IoSlice<'static>; MAX_SLICES],
) -> bool {
    match &mut conn.state {
        ConnState::Request { buf } => {
            let mut scratch = [0u8; 512];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        shared.metrics.bad_requests.inc();
                        return true; // peer closed before requesting
                    }
                    Ok(n) => {
                        // Capacity check BEFORE growth: the request buffer
                        // never exceeds MAX_REQUEST_LINE, even transiently.
                        if buf.len() + n > MAX_REQUEST_LINE {
                            shared.metrics.bad_requests.inc();
                            return true;
                        }
                        buf.extend_from_slice(&scratch[..n]);
                        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                            let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
                            if begin_streaming(shared, conn, &line, now) {
                                return true;
                            }
                            // Seed the first pacing deadline.
                            return stream_step(shared, conn, key, now, false, wheel, slices);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        shared.metrics.bad_requests.inc();
                        return true;
                    }
                }
            }
        }
        ConnState::Streaming(_) => stream_step(shared, conn, key, now, readable, wheel, slices),
    }
}

/// One pacing step of a streaming reactor connection: drain unexpected
/// inbound bytes (and detect peer close), write the current
/// entitlement from the arena, account backlog, and arm whatever wakes
/// this connection next. Returns true when the connection is finished.
fn stream_step(
    shared: &Shared,
    conn: &mut Conn,
    key: Key,
    now: Nanos,
    readable: bool,
    wheel: &mut TimingWheel<Key>,
    slices: &mut [IoSlice<'static>; MAX_SLICES],
) -> bool {
    let ConnState::Streaming(s) = &mut conn.state else {
        return false;
    };
    // Re-arming below replaces the pending entry, so a connection holds
    // at most one live wheel entry at a time.
    if let Some(id) = s.timer.take() {
        wheel.cancel(id);
    }
    if readable {
        // Subscribers never legitimately send after the request; drain
        // (and ignore) strays so level-triggered epoll stays quiet, and
        // catch the peer vanishing early.
        let mut probe = [0u8; 512];
        loop {
            match conn.stream.read(&mut probe) {
                Ok(0) => {
                    finish_streaming(shared, s, now, STATUS_TRUNCATED);
                    shared.metrics.truncated.inc();
                    return true;
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    finish_streaming(shared, s, now, STATUS_TRUNCATED);
                    shared.metrics.truncated.inc();
                    return true;
                }
            }
        }
    }
    // Broadcast entitlement since join, capped by the budget.
    let pos = proto::paced_position(s.rate, now.saturating_sub(s.join));
    let entitled = pos.min(s.budget);
    let mut blocked = false;
    while s.sent < entitled {
        let (n, _) = payload::stage(entitled - s.sent, slices);
        match conn.stream.write_vectored(&slices[..n]) {
            Ok(0) => {
                blocked = true;
                break;
            }
            Ok(w) => {
                s.sent += w as u64;
                shared.metrics.bytes_sent.add(w as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                blocked = true;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Peer vanished mid-stream.
                finish_streaming(shared, s, now, STATUS_TRUNCATED);
                shared.metrics.truncated.inc();
                return true;
            }
        }
    }
    conn.blocked = blocked;
    let backlog = entitled - s.sent;
    shared.metrics.backlog.record(backlog);
    // The budget is enforced on the client's *aggregate* backlog in
    // bytes: several connections to large objects draw from one
    // budget, not one each.
    let client_total = shared.account_backlog(&s.t, &mut s.accounted, backlog);
    if client_total > shared.send_buffer && shared.slow_policy == SlowClientPolicy::Drop {
        finish_streaming(shared, s, now, STATUS_TRUNCATED);
        shared.metrics.slow_dropped.inc();
        return true;
    }
    if s.sent == s.budget {
        if now >= s.hold_until {
            // Transfer complete: log in trace coordinates with the
            // original status, then close.
            finish_streaming(shared, s, now, s.t.status);
            shared.metrics.completed.inc();
            return true;
        }
        s.timer = Some(wheel.schedule(s.hold_until, key));
        return false;
    }
    if blocked {
        // EPOLLOUT resumes the write. Under the drop policy, also arm
        // the instant the client's aggregate backlog would trip the
        // bound, so a peer that never reads is dropped on schedule.
        if shared.slow_policy == SlowClientPolicy::Drop {
            let headroom = shared.send_buffer.saturating_sub(client_total);
            let trip = now.saturating_add(proto::pacing_deadline(s.rate, headroom + 1));
            s.timer = Some(wheel.schedule(trip, key));
        }
        return false;
    }
    // Caught up: wake when the broadcast has produced the next chunk.
    let chunk = PACING_BURST.min(s.budget - s.sent);
    let deadline = s
        .join
        .saturating_add(proto::pacing_deadline(s.rate, s.sent + chunk));
    s.timer = Some(wheel.schedule(deadline, key));
    false
}

// ---------------------------------------------------------------------
// Tick data plane (the committed baseline).

/// The historical sleep-scan loop: every connection is advanced every
/// `cfg.tick` nanoseconds, ready or not.
fn tick_worker_loop(shared: &Shared, rx: &mpsc::Receiver<TcpStream>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut disconnected = false;
    loop {
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn::new(stream));
        }
        if let Err(mpsc::TryRecvError::Disconnected) = rx.try_recv() {
            disconnected = true;
        }
        let force = shared.force.load(Ordering::Relaxed);
        let now = shared.clock.now();
        let mut i = 0;
        while i < conns.len() {
            let done = advance(shared, &mut conns[i], now, force);
            if done {
                shared.metrics.active.dec();
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let draining = disconnected || shared.shutdown.load(Ordering::Relaxed);
        if conns.is_empty() && draining {
            return;
        }
        // lsw::allow(L008): the tick plane paces by sleeping exactly one configured tick
        std::thread::sleep(std::time::Duration::from_nanos(shared.tick));
    }
}

/// Advances one connection by one tick; returns true when it is done and
/// its slot can be reclaimed.
fn advance(shared: &Shared, conn: &mut Conn, now: Nanos, force: bool) -> bool {
    match &mut conn.state {
        ConnState::Request { buf } => {
            if force {
                shared.metrics.bad_requests.inc();
                return true;
            }
            let mut scratch = [0u8; 512];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        shared.metrics.bad_requests.inc();
                        return true; // peer closed before requesting
                    }
                    Ok(n) => {
                        // Capacity check BEFORE growth: the request buffer
                        // never exceeds MAX_REQUEST_LINE, even transiently.
                        if buf.len() + n > MAX_REQUEST_LINE {
                            shared.metrics.bad_requests.inc();
                            return true;
                        }
                        buf.extend_from_slice(&scratch[..n]);
                        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                            let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
                            return begin_streaming(shared, conn, &line, now);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        shared.metrics.bad_requests.inc();
                        return true;
                    }
                }
            }
        }
        ConnState::Streaming(s) => {
            if force {
                finish_streaming(shared, s, now, STATUS_TRUNCATED);
                shared.metrics.truncated.inc();
                return true;
            }
            // Broadcast entitlement since join, capped by the budget.
            let pos = proto::paced_position(s.rate, now.saturating_sub(s.join));
            let entitled = pos.min(s.budget);
            let block = payload::block();
            while s.sent < entitled {
                let want = usize::try_from((entitled - s.sent).min(TICK_WRITE as u64))
                    .unwrap_or(TICK_WRITE);
                match conn.stream.write(&block[..want]) {
                    Ok(0) => break,
                    Ok(n) => {
                        s.sent += n as u64;
                        shared.metrics.bytes_sent.add(n as u64);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Peer vanished mid-stream.
                        finish_streaming(shared, s, now, STATUS_TRUNCATED);
                        shared.metrics.truncated.inc();
                        return true;
                    }
                }
            }
            let backlog = entitled - s.sent;
            shared.metrics.backlog.record(backlog);
            // The budget is enforced on the client's *aggregate* backlog
            // in bytes: several connections to large objects draw from
            // one budget, not one each.
            let client_total = shared.account_backlog(&s.t, &mut s.accounted, backlog);
            if client_total > shared.send_buffer && shared.slow_policy == SlowClientPolicy::Drop {
                finish_streaming(shared, s, now, STATUS_TRUNCATED);
                shared.metrics.slow_dropped.inc();
                return true;
            }
            if s.sent == s.budget && now >= s.hold_until {
                // Transfer complete: log in trace coordinates with the
                // original status, then close.
                finish_streaming(shared, s, now, s.t.status);
                shared.metrics.completed.inc();
                return true;
            }
            false
        }
    }
}

/// Parses the request, runs admission, answers the status line. Shared
/// by both data planes.
fn begin_streaming(shared: &Shared, conn: &mut Conn, line: &str, now: Nanos) -> bool {
    let Some(t) = proto::parse_request(line.trim_end_matches('\r')) else {
        shared.metrics.bad_requests.inc();
        return true;
    };
    // lsw::allow(L008): admission check is an O(1) counter update under the lock
    let admitted = shared.admission.lock().request(t.display_duration());
    if !admitted {
        let _ = conn.stream.write_all(payload::BUSY_LINE);
        shared.log_tap(&t, STATUS_REJECTED);
        shared.metrics.rejected.inc();
        return true;
    }
    let budget = proto::wire_budget(t.bytes, shared.compression);
    let mut line_buf = [0u8; 32];
    if conn
        .stream
        .write_all(payload::ok_line(budget, &mut line_buf))
        .is_err()
    {
        // Admission slot granted but the peer is already gone.
        // lsw::allow(L008): slot release is an O(1) counter update under the lock
        shared.admission.lock().release();
        shared.log_tap(&t, STATUS_TRUNCATED);
        shared.metrics.truncated.inc();
        return true;
    }
    let rate = shared.rate_for(&t);
    let hold_until = now.saturating_add(trace_to_nanos(t.duration, shared.compression));
    conn.state = ConnState::Streaming(Box::new(Streaming {
        rate,
        join: now,
        hold_until,
        budget,
        sent: 0,
        accounted: 0,
        timer: None,
        t,
    }));
    false
}

/// Releases the admission slot and logs the tap entry for a transfer
/// that is ending (complete, truncated, or force-drained).
fn finish_streaming(shared: &Shared, s: &Streaming, now: Nanos, status: u16) {
    shared.release_backlog(&s.t, s.accounted);
    // lsw::allow(L008): slot release is an O(1) counter update under the lock
    shared.admission.lock().release();
    shared.log_tap(&s.t, status);
    shared
        .metrics
        .transfer_wall_ms
        .record(now.saturating_sub(s.join) / 1_000_000);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared(send_buffer: u64) -> Shared {
        Shared {
            compression: 1.0,
            send_buffer,
            slow_policy: SlowClientPolicy::Drop,
            tick: 1,
            wheel_resolution: 1 << 17,
            rates: vec![0, 500],
            admission: Mutex::new(MediaServer::new(lsw_sim::server::ServerConfig::default())),
            tap: Mutex::new(StreamAnalyzer::new(StreamConfig::default())),
            clock: Arc::new(WallClock::start()),
            metrics: ServerMetrics::register(&Registry::new()),
            shutdown: AtomicBool::new(false),
            force: AtomicBool::new(false),
            client_backlog: (0..CLIENT_BACKLOG_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    fn test_transfer(client: u32) -> ScheduledTransfer {
        ScheduledTransfer {
            start: 0,
            duration: 9,
            client: lsw_trace::ids::ClientId(client),
            ip: lsw_trace::ids::Ipv4Addr(1),
            as_id: lsw_trace::ids::AsId(1),
            country: lsw_trace::ids::CountryCode(*b"US"),
            object: lsw_trace::ids::ObjectId(1),
            camera: 0,
            bytes: 1000,
            avg_bandwidth: 1,
            status: 200,
        }
    }

    #[test]
    fn rate_fallback_covers_unknown_objects() {
        let shared = test_shared(0);
        let mut t = test_transfer(1);
        assert_eq!(shared.rate_for(&t), 500);
        t.object = lsw_trace::ids::ObjectId(0); // zero-rate table slot
        assert_eq!(shared.rate_for(&t), 100); // 1000 / (9 + 1)
        t.object = lsw_trace::ids::ObjectId(9); // beyond the table
        assert_eq!(shared.rate_for(&t), 100);
    }

    #[test]
    fn backlog_budget_aggregates_across_a_clients_connections() {
        let shared = test_shared(1000);
        let t = test_transfer(7);
        // Two concurrent connections from the same client: each backlog is
        // under the 1000-byte budget, but the aggregate is not.
        let (mut acc_a, mut acc_b) = (0u64, 0u64);
        let total_a = shared.account_backlog(&t, &mut acc_a, 600);
        assert_eq!(total_a, 600);
        let total_b = shared.account_backlog(&t, &mut acc_b, 600);
        assert!(total_b > shared.send_buffer, "aggregate exceeds budget");
        // Shrinking one connection's backlog is reflected in the total…
        let total_a = shared.account_backlog(&t, &mut acc_a, 100);
        assert_eq!(total_a, 700);
        // …and releasing both drains the slot back to zero.
        shared.release_backlog(&t, acc_a);
        shared.release_backlog(&t, acc_b);
        assert_eq!(
            shared.client_backlog[client_slot(t.client)].load(Ordering::Relaxed),
            0
        );
    }
}
