//! The paced localhost serving harness.
//!
//! One accept thread hands connections round-robin to a fixed pool of
//! worker shards; each shard owns its connections outright and advances
//! them on a tick loop over nonblocking sockets, so the thread count is
//! bounded by `workers + 2` no matter how many clients are connected.
//!
//! **Pacing.** Each live feed is a broadcast: a feed encoded at `rate`
//! trace-bytes/second has a global position `rate × elapsed`, and a
//! subscriber is entitled to the bytes the broadcast produced since it
//! joined, capped by its transfer's wire byte budget. Time compression
//! divides both the budget and the wall duration, so the *wire rate* is
//! the trace rate unchanged.
//!
//! **Admission.** Every parsed request goes through the simulator's
//! [`MediaServer`] — the same [`AdmissionPolicy`] semantics the DES uses
//! — and a rejection is answered with `BUSY`, logged to the tap with
//! [`STATUS_REJECTED`], and charged as denied viewer-seconds.
//!
//! **Slow clients.** A subscriber whose backlog (entitlement minus bytes
//! actually written) exceeds the configured send-buffer bound is either
//! dropped (logged truncated) or allowed to lag, per
//! [`SlowClientPolicy`].
//!
//! **Tap.** Completions are logged WMS-style — at connection close, in
//! trace coordinates taken from the request line — into an embedded
//! [`StreamAnalyzer`], which is finalized into the run's closed-loop
//! [`StreamReport`] on drain.

use crate::clock::{trace_to_nanos, Nanos, WallClock};
use crate::metrics::{Counter, Gauge, LogHistogram, Registry, Snapshot};
use crate::proto::{self, MAX_REQUEST_LINE};
use crate::{STATUS_REJECTED, STATUS_TRUNCATED};
use lsw_sim::server::{AdmissionPolicy, MediaServer, ServerStats};
use lsw_stream::{StreamAnalyzer, StreamConfig, StreamReport};
use lsw_trace::schedule::ScheduledTransfer;
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// Slot count of the hashed per-client backlog table. Collisions make
/// two clients share a byte budget, which only trips the slow-client
/// policy *sooner* — the memory bound stays conservative.
const CLIENT_BACKLOG_SLOTS: usize = 1024;

/// Maps a client id onto its backlog accounting slot.
fn client_slot(client: lsw_trace::ids::ClientId) -> usize {
    client.0 as usize % CLIENT_BACKLOG_SLOTS
}

/// What to do with a subscriber that cannot keep up with its feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowClientPolicy {
    /// Close the connection and log the transfer truncated — the live
    /// answer (the broadcast cannot wait).
    Drop,
    /// Let the backlog grow and the client lag the broadcast — the
    /// stored-media answer. Memory stays bounded either way: payload is
    /// generated at write time, never queued.
    Backpressure,
}

/// Serving harness configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub listen: String,
    /// Admission policy (the DES semantics, on real sockets).
    pub admission: AdmissionPolicy,
    /// Time-compression factor shared with the driver.
    pub compression: f64,
    /// Per-client backlog bound in wire bytes before the slow-client
    /// policy applies. Accounted in bytes and aggregated across all of a
    /// client's connections, so a few large objects cannot blow the
    /// budget through separate sockets.
    pub send_buffer: u64,
    /// Slow-client policy.
    pub slow_policy: SlowClientPolicy,
    /// Worker shards.
    pub workers: usize,
    /// Pacing tick, nanoseconds.
    pub tick: Nanos,
    /// Maximum wait for in-flight transfers during drain, nanoseconds;
    /// survivors are then truncated.
    pub drain: Nanos,
    /// Tap (characterization) configuration.
    pub stream: StreamConfig,
    /// Longest transfer duration the tap will see (trace seconds),
    /// usually `Schedule::max_duration`. Completions reach the tap in
    /// stop order, so this presets its look-ahead reorder window; 0 lets
    /// the tap infer the window from what it has seen.
    pub lookahead: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            admission: AdmissionPolicy::AcceptAll,
            compression: 100.0,
            send_buffer: 256 << 10,
            slow_policy: SlowClientPolicy::Drop,
            workers: 2,
            tick: 2_000_000,
            drain: 10_000_000_000,
            stream: StreamConfig::default(),
            lookahead: 0,
        }
    }
}

/// Everything a drained server hands back.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The tap's characterization of the traffic actually served.
    pub tap: StreamReport,
    /// Admission accounting (accepted/rejected/denied viewer-seconds).
    pub admission: ServerStats,
    /// Final metrics capture.
    pub metrics: Snapshot,
}

struct ServerMetrics {
    accepted_conns: Arc<Counter>,
    active: Arc<Gauge>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    slow_dropped: Arc<Counter>,
    truncated: Arc<Counter>,
    bad_requests: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    backlog: Arc<LogHistogram>,
    transfer_wall_ms: Arc<LogHistogram>,
}

impl ServerMetrics {
    fn register(r: &Registry) -> Self {
        Self {
            accepted_conns: r.counter("srv.conns"),
            active: r.gauge("srv.active"),
            completed: r.counter("srv.completed"),
            rejected: r.counter("srv.rejected"),
            slow_dropped: r.counter("srv.slow_dropped"),
            truncated: r.counter("srv.truncated"),
            bad_requests: r.counter("srv.bad_requests"),
            bytes_sent: r.counter("srv.bytes_sent"),
            backlog: r.histogram("srv.backlog_bytes"),
            transfer_wall_ms: r.histogram("srv.transfer_wall_ms"),
        }
    }
}

struct Shared {
    compression: f64,
    send_buffer: u64,
    slow_policy: SlowClientPolicy,
    tick: Nanos,
    /// Encoded trace-byte rate per object id (dense, indexed by id).
    rates: Vec<u64>,
    admission: Mutex<MediaServer>,
    tap: Mutex<StreamAnalyzer>,
    /// Aggregate backlog per client in bytes, hashed into a fixed slot
    /// table (see [`client_slot`]). Updated by delta from each
    /// connection's tick so the sum stays exact per connection.
    client_backlog: Vec<AtomicU64>,
    clock: Arc<WallClock>,
    metrics: ServerMetrics,
    /// Stop accepting; workers finish in-flight transfers.
    shutdown: AtomicBool,
    /// Truncate whatever is still in flight and exit.
    force: AtomicBool,
}

impl Shared {
    fn rate_for(&self, t: &ScheduledTransfer) -> u64 {
        // Feeds absent from the rate table (standalone `lsw serve`
        // against an unknown trace) fall back to the transfer's own byte
        // rate, which still covers its budget within its duration.
        match self.rates.get(usize::from(t.object.0)) {
            Some(&r) if r > 0 => r,
            _ => t.byte_rate().max(1),
        }
    }

    /// Logs one finished (or refused) transfer into the tap.
    fn log_tap(&self, t: &ScheduledTransfer, status: u16) {
        let mut e = t.to_entry();
        e.status = status;
        // lsw::allow(L008): tap ingest is a short bounded critical section (no I/O under the lock)
        self.tap.lock().ingest_entry(&e);
    }

    /// Folds a connection's fresh backlog reading into its client's
    /// aggregate slot (by delta against what this connection last
    /// contributed) and returns the client's total backlog in bytes.
    fn account_backlog(&self, t: &ScheduledTransfer, accounted: &mut u64, backlog: u64) -> u64 {
        let slot = &self.client_backlog[client_slot(t.client)];
        if backlog >= *accounted {
            slot.fetch_add(backlog - *accounted, Ordering::Relaxed);
        } else {
            slot.fetch_sub(*accounted - backlog, Ordering::Relaxed);
        }
        *accounted = backlog;
        slot.load(Ordering::Relaxed)
    }

    /// Returns a finished connection's outstanding contribution to its
    /// client's backlog slot. Exact: each connection's adds and subs net
    /// to `accounted`, so slot totals never underflow across clients.
    fn release_backlog(&self, t: &ScheduledTransfer, accounted: u64) {
        self.client_backlog[client_slot(t.client)].fetch_sub(accounted, Ordering::Relaxed);
    }
}

enum ConnState {
    Request { buf: Vec<u8> },
    Streaming(Box<Streaming>),
}

struct Streaming {
    t: ScheduledTransfer,
    rate: u64,
    join: Nanos,
    hold_until: Nanos,
    budget: u64,
    sent: u64,
    /// Backlog bytes this connection currently contributes to its
    /// client's aggregate slot (see [`Shared::account_backlog`]).
    accounted: u64,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
}

/// Payload pattern written to subscribers (content is irrelevant to the
/// characterization; only bytes-on-the-wire matter).
static PATTERN: [u8; 8192] = [0x5A; 8192];

/// The running serving harness.
pub struct ReplayServer {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_handle: std::thread::JoinHandle<()>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    registry: Arc<Registry>,
    drain: Nanos,
}

impl ReplayServer {
    /// Binds, spawns the accept thread and worker shards, and returns.
    ///
    /// `rates` is the per-object encoded-rate table (usually
    /// `Schedule::object_rates`); `clock` is shared with the driver so
    /// both sides agree on replay time.
    pub fn start(
        cfg: ServerConfig,
        rates: &[(lsw_trace::ids::ObjectId, u64)],
        clock: Arc<WallClock>,
        registry: Arc<Registry>,
    ) -> io::Result<Self> {
        #[allow(clippy::disallowed_methods)]
        // lsw::allow(L002): the serving harness binds a real socket by design
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut rate_table = Vec::new();
        for &(obj, rate) in rates {
            let idx = usize::from(obj.0);
            if rate_table.len() <= idx {
                rate_table.resize(idx + 1, 0u64);
            }
            rate_table[idx] = rate;
        }

        let shared = Arc::new(Shared {
            compression: cfg.compression.max(1.0),
            send_buffer: cfg.send_buffer,
            slow_policy: cfg.slow_policy,
            tick: cfg.tick.max(100_000),
            rates: rate_table,
            admission: Mutex::new(MediaServer::new(lsw_sim::server::ServerConfig {
                admission: cfg.admission,
                ..lsw_sim::server::ServerConfig::default()
            })),
            tap: Mutex::new({
                let mut tap = StreamAnalyzer::new(cfg.stream.clone());
                tap.preset_lookahead(cfg.lookahead);
                tap
            }),
            client_backlog: (0..CLIENT_BACKLOG_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            clock,
            metrics: ServerMetrics::register(&registry),
            shutdown: AtomicBool::new(false),
            force: AtomicBool::new(false),
        });

        let workers = cfg.workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let shared = Arc::clone(&shared);
            worker_handles.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(&listener, &accept_shared, &senders);
            // Dropping the senders here disconnects every worker's
            // channel, which is their cue that no more work is coming.
        });

        Ok(Self {
            shared,
            addr,
            accept_handle,
            worker_handles,
            registry,
            drain: cfg.drain,
        })
    }

    /// The actually-bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The metrics registry this server reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stops accepting, waits up to the drain budget for in-flight
    /// transfers, truncates survivors, joins every thread, and finalizes
    /// the tap.
    pub fn finish(self) -> ServeOutcome {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let deadline = self.shared.clock.now().saturating_add(self.drain);
        while self.shared.metrics.active.get() > 0 && self.shared.clock.now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        self.shared.force.store(true, Ordering::SeqCst);
        join_or_propagate(self.accept_handle);
        for h in self.worker_handles {
            join_or_propagate(h);
        }
        let admission = self.shared.admission.lock().stats().clone();
        let analyzer = std::mem::replace(
            &mut *self.shared.tap.lock(),
            StreamAnalyzer::new(StreamConfig::default()),
        );
        ServeOutcome {
            tap: analyzer.finalize(),
            admission,
            metrics: self.registry.snapshot(),
        }
    }
}

fn join_or_propagate(h: std::thread::JoinHandle<()>) {
    if let Err(payload) = h.join() {
        std::panic::resume_unwind(payload);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared, senders: &[mpsc::Sender<TcpStream>]) {
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue; // peer already gone
                }
                shared.metrics.accepted_conns.inc();
                shared.metrics.active.inc();
                if senders[next % senders.len()].send(stream).is_err() {
                    shared.metrics.active.dec();
                    return; // worker gone; shutting down
                }
                next += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &mpsc::Receiver<TcpStream>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut disconnected = false;
    loop {
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn {
                stream,
                state: ConnState::Request { buf: Vec::new() },
            });
        }
        if let Err(mpsc::TryRecvError::Disconnected) = rx.try_recv() {
            disconnected = true;
        }
        let force = shared.force.load(Ordering::Relaxed);
        let now = shared.clock.now();
        let mut i = 0;
        while i < conns.len() {
            let done = advance(shared, &mut conns[i], now, force);
            if done {
                shared.metrics.active.dec();
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let draining = disconnected || shared.shutdown.load(Ordering::Relaxed);
        if conns.is_empty() && draining {
            return;
        }
        // lsw::allow(L008): the poll loop's own pacing tick, bounded by cfg.tick
        std::thread::sleep(std::time::Duration::from_nanos(shared.tick));
    }
}

/// Advances one connection by one tick; returns true when it is done and
/// its slot can be reclaimed.
fn advance(shared: &Shared, conn: &mut Conn, now: Nanos, force: bool) -> bool {
    match &mut conn.state {
        ConnState::Request { buf } => {
            if force {
                shared.metrics.bad_requests.inc();
                return true;
            }
            let mut scratch = [0u8; 512];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        shared.metrics.bad_requests.inc();
                        return true; // peer closed before requesting
                    }
                    Ok(n) => {
                        // Capacity check BEFORE growth: the request buffer
                        // never exceeds MAX_REQUEST_LINE, even transiently.
                        if buf.len() + n > MAX_REQUEST_LINE {
                            shared.metrics.bad_requests.inc();
                            return true;
                        }
                        buf.extend_from_slice(&scratch[..n]);
                        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                            let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
                            return begin_streaming(shared, conn, &line, now);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        shared.metrics.bad_requests.inc();
                        return true;
                    }
                }
            }
        }
        ConnState::Streaming(s) => {
            if force {
                finish_streaming(shared, s, now, STATUS_TRUNCATED);
                shared.metrics.truncated.inc();
                return true;
            }
            // Broadcast entitlement since join, capped by the budget.
            let pos = proto::paced_position(s.rate, now.saturating_sub(s.join));
            let entitled = pos.min(s.budget);
            while s.sent < entitled {
                let want = usize::try_from((entitled - s.sent).min(PATTERN.len() as u64))
                    .unwrap_or(PATTERN.len());
                match conn.stream.write(&PATTERN[..want]) {
                    Ok(0) => break,
                    Ok(n) => {
                        s.sent += n as u64;
                        shared.metrics.bytes_sent.add(n as u64);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Peer vanished mid-stream.
                        finish_streaming(shared, s, now, STATUS_TRUNCATED);
                        shared.metrics.truncated.inc();
                        return true;
                    }
                }
            }
            let backlog = entitled - s.sent;
            shared.metrics.backlog.record(backlog);
            // The budget is enforced on the client's *aggregate* backlog
            // in bytes: several connections to large objects draw from
            // one budget, not one each.
            let client_total = shared.account_backlog(&s.t, &mut s.accounted, backlog);
            if client_total > shared.send_buffer && shared.slow_policy == SlowClientPolicy::Drop {
                finish_streaming(shared, s, now, STATUS_TRUNCATED);
                shared.metrics.slow_dropped.inc();
                return true;
            }
            if s.sent == s.budget && now >= s.hold_until {
                // Transfer complete: log in trace coordinates with the
                // original status, then close.
                finish_streaming(shared, s, now, s.t.status);
                shared.metrics.completed.inc();
                return true;
            }
            false
        }
    }
}

/// Parses the request, runs admission, answers the status line.
fn begin_streaming(shared: &Shared, conn: &mut Conn, line: &str, now: Nanos) -> bool {
    let Some(t) = proto::parse_request(line.trim_end_matches('\r')) else {
        shared.metrics.bad_requests.inc();
        return true;
    };
    // lsw::allow(L008): admission check is an O(1) counter update under the lock
    let admitted = shared.admission.lock().request(t.display_duration());
    if !admitted {
        let _ = conn.stream.write_all(b"BUSY\n");
        shared.log_tap(&t, STATUS_REJECTED);
        shared.metrics.rejected.inc();
        return true;
    }
    let budget = proto::wire_budget(t.bytes, shared.compression);
    if conn
        .stream
        .write_all(format!("OK {budget}\n").as_bytes())
        .is_err()
    {
        // Admission slot granted but the peer is already gone.
        // lsw::allow(L008): slot release is an O(1) counter update under the lock
        shared.admission.lock().release();
        shared.log_tap(&t, STATUS_TRUNCATED);
        shared.metrics.truncated.inc();
        return true;
    }
    let rate = shared.rate_for(&t);
    let hold_until = now.saturating_add(trace_to_nanos(t.duration, shared.compression));
    conn.state = ConnState::Streaming(Box::new(Streaming {
        rate,
        join: now,
        hold_until,
        budget,
        sent: 0,
        accounted: 0,
        t,
    }));
    false
}

/// Releases the admission slot and logs the tap entry for a transfer
/// that is ending (complete, truncated, or force-drained).
fn finish_streaming(shared: &Shared, s: &Streaming, now: Nanos, status: u16) {
    shared.release_backlog(&s.t, s.accounted);
    // lsw::allow(L008): slot release is an O(1) counter update under the lock
    shared.admission.lock().release();
    shared.log_tap(&s.t, status);
    shared
        .metrics
        .transfer_wall_ms
        .record(now.saturating_sub(s.join) / 1_000_000);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_fallback_covers_unknown_objects() {
        let shared = Shared {
            compression: 1.0,
            send_buffer: 0,
            slow_policy: SlowClientPolicy::Drop,
            tick: 1,
            rates: vec![0, 500],
            admission: Mutex::new(MediaServer::new(lsw_sim::server::ServerConfig::default())),
            tap: Mutex::new(StreamAnalyzer::new(StreamConfig::default())),
            clock: Arc::new(WallClock::start()),
            metrics: ServerMetrics::register(&Registry::new()),
            shutdown: AtomicBool::new(false),
            force: AtomicBool::new(false),
            client_backlog: (0..CLIENT_BACKLOG_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        };
        let mut t = ScheduledTransfer {
            start: 0,
            duration: 9,
            client: lsw_trace::ids::ClientId(1),
            ip: lsw_trace::ids::Ipv4Addr(1),
            as_id: lsw_trace::ids::AsId(1),
            country: lsw_trace::ids::CountryCode(*b"US"),
            object: lsw_trace::ids::ObjectId(1),
            camera: 0,
            bytes: 1000,
            avg_bandwidth: 1,
            status: 200,
        };
        assert_eq!(shared.rate_for(&t), 500);
        t.object = lsw_trace::ids::ObjectId(0); // zero-rate table slot
        assert_eq!(shared.rate_for(&t), 100); // 1000 / (9 + 1)
        t.object = lsw_trace::ids::ObjectId(9); // beyond the table
        assert_eq!(shared.rate_for(&t), 100);
    }

    #[test]
    fn backlog_budget_aggregates_across_a_clients_connections() {
        let shared = Shared {
            compression: 1.0,
            send_buffer: 1000,
            slow_policy: SlowClientPolicy::Drop,
            tick: 1,
            rates: vec![0, 500],
            admission: Mutex::new(MediaServer::new(lsw_sim::server::ServerConfig::default())),
            tap: Mutex::new(StreamAnalyzer::new(StreamConfig::default())),
            clock: Arc::new(WallClock::start()),
            metrics: ServerMetrics::register(&Registry::new()),
            shutdown: AtomicBool::new(false),
            force: AtomicBool::new(false),
            client_backlog: (0..CLIENT_BACKLOG_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        };
        let t = ScheduledTransfer {
            start: 0,
            duration: 9,
            client: lsw_trace::ids::ClientId(7),
            ip: lsw_trace::ids::Ipv4Addr(1),
            as_id: lsw_trace::ids::AsId(1),
            country: lsw_trace::ids::CountryCode(*b"US"),
            object: lsw_trace::ids::ObjectId(1),
            camera: 0,
            bytes: 1000,
            avg_bandwidth: 1,
            status: 200,
        };
        // Two concurrent connections from the same client: each backlog is
        // under the 1000-byte budget, but the aggregate is not.
        let (mut acc_a, mut acc_b) = (0u64, 0u64);
        let total_a = shared.account_backlog(&t, &mut acc_a, 600);
        assert_eq!(total_a, 600);
        let total_b = shared.account_backlog(&t, &mut acc_b, 600);
        assert!(total_b > shared.send_buffer, "aggregate exceeds budget");
        // Shrinking one connection's backlog is reflected in the total…
        let total_a = shared.account_backlog(&t, &mut acc_a, 100);
        assert_eq!(total_a, 700);
        // …and releasing both drains the slot back to zero.
        shared.release_backlog(&t, acc_a);
        shared.release_backlog(&t, acc_b);
        assert_eq!(
            shared.client_backlog[client_slot(t.client)].load(Ordering::Relaxed),
            0
        );
    }
}
