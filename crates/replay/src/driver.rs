//! The trace-driven load driver.
//!
//! Transfers are dealt round-robin to a fixed pool of client workers
//! (each partition stays start-ordered, so a worker never has to look
//! ahead). Each worker runs its own epoll reactor: a `timerfd` armed at
//! the next transfer's scheduled launch opens connections on time, and
//! live connections are drained only when their sockets turn readable —
//! so a handful of threads sustain thousands of concurrent connections
//! without a poll-tick scan, and launch jitter is bounded by timer
//! resolution rather than a sleep quantum.

use crate::clock::{trace_to_nanos, WallClock};
use crate::metrics::Registry;
use crate::proto;
use crate::slab::{Key, Slab};
use lsw_trace::schedule::{Schedule, ScheduledTransfer};
use mio::unix::SourceFd;
use mio::{Events, Interest, Poll, SpliceSink, Token};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Duration;
use timerfd::{TimerFd, TimerState};

/// Reactor token for the launch-schedule timerfd.
const TIMER_TOKEN: Token = Token(usize::MAX - 1);

/// Load driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Server address to replay against.
    pub addr: SocketAddr,
    /// Time-compression factor (shared with the server).
    pub compression: f64,
    /// Client worker threads.
    pub workers: usize,
    /// Trace second that maps to wall `t = 0`. `None` uses the first
    /// transfer's start — the single-driver default. A topology run
    /// drives each relay with its own sub-schedule but one shared
    /// clock, so every driver pins the same global epoch here or the
    /// relays' launch timelines would skew apart.
    pub epoch: Option<u32>,
}

impl DriverConfig {
    /// A driver aimed at `addr` with the given compression.
    pub fn new(addr: SocketAddr, compression: f64) -> Self {
        Self {
            addr,
            compression: compression.max(1.0),
            workers: 4,
            epoch: None,
        }
    }
}

/// What one replay run offered and got back, summed over all workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Connections opened (request line sent).
    pub launched: u64,
    /// Connections that failed to open or to send the request.
    pub connect_failures: u64,
    /// Transfers answered `BUSY` by admission control.
    pub rejected: u64,
    /// Transfers that delivered their full wire byte budget.
    pub completed: u64,
    /// Transfers closed short of their budget (slow-client drop, drain).
    pub short: u64,
    /// Wire payload bytes received.
    pub bytes_received: u64,
}

impl DriveOutcome {
    /// Accumulates another outcome into this one (used to sum worker
    /// partials, and per-relay drivers in a topology run).
    pub fn absorb(&mut self, o: DriveOutcome) {
        self.launched += o.launched;
        self.connect_failures += o.connect_failures;
        self.rejected += o.rejected;
        self.completed += o.completed;
        self.short += o.short;
        self.bytes_received += o.bytes_received;
    }
}

struct ClientConn {
    stream: TcpStream,
    /// Status line bytes until the first newline.
    header: Vec<u8>,
    /// Expected payload bytes, known once the `OK` line arrives.
    expected: Option<u64>,
    received: u64,
}

/// Replays the whole schedule against a live server; blocks until every
/// transfer has been offered and every connection has closed.
pub fn drive(
    schedule: &Schedule,
    cfg: &DriverConfig,
    clock: &WallClock,
    registry: &Registry,
) -> io::Result<DriveOutcome> {
    if schedule.is_empty() {
        return Ok(DriveOutcome::default());
    }
    let t0 = cfg.epoch.unwrap_or(schedule.transfers[0].start);
    let workers = cfg.workers.max(1);
    let connects = registry.counter("drv.connects");
    let bytes_received = registry.counter("drv.bytes_received");
    let lateness = registry.histogram("drv.lateness_ms");

    // Each worker's reactor endpoints are acquired up front so setup
    // failures surface as an error instead of a dead thread.
    let mut planes = Vec::with_capacity(workers);
    for _ in 0..workers {
        // lsw::allow(L002): the load driver acquires its epoll endpoint by design
        let poll = Poll::new()?;
        // lsw::allow(L002): the load driver acquires its pacing timerfd by design
        let timer = TimerFd::new()?;
        let timer_fd = timer.as_raw_fd();
        poll.registry()
            .register(&mut SourceFd(&timer_fd), TIMER_TOKEN, Interest::READABLE)?;
        planes.push((poll, timer));
    }

    let partials: Vec<DriveOutcome> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = planes
            .into_iter()
            .enumerate()
            .map(|(w, (mut poll, mut timer))| {
                let mine: Vec<&ScheduledTransfer> =
                    schedule.transfers.iter().skip(w).step_by(workers).collect();
                let connects = &connects;
                let bytes_received = &bytes_received;
                let lateness = &lateness;
                std::thread::Builder::new()
                    .name(format!("lsw-drive-{w}"))
                    .spawn_scoped(s, move || {
                        let mut out = DriveOutcome::default();
                        let mut next = 0usize;
                        let mut conns: Slab<ClientConn> = Slab::new();
                        let mut events = Events::with_capacity(1024);
                        // Heap-allocated: 256 KiB per worker would overflow
                        // a default 8 MiB stack budget checker and, more to
                        // the point, each read(2) should drain a whole paced
                        // burst rather than 16 KiB slivers of it.
                        let mut scratch = vec![0u8; 256 * 1024];
                        // Zero-copy payload drain; None falls back to read().
                        // Mutable: the first EINVAL/ENOSYS from splice(2)
                        // retires it for the whole run (see `pump`).
                        let mut sink = SpliceSink::new().ok();
                        loop {
                            // Launch everything that is due.
                            let now = clock.now();
                            while next < mine.len() {
                                let t = mine[next];
                                let due =
                                    trace_to_nanos(t.start.saturating_sub(t0), cfg.compression);
                                if due > now {
                                    break;
                                }
                                next += 1;
                                match open(cfg.addr, t) {
                                    Ok(conn) => {
                                        out.launched += 1;
                                        connects.inc();
                                        lateness.record((now - due) / 1_000_000);
                                        let key = conns.insert(conn);
                                        let Some(c) = conns.get_mut(key) else {
                                            continue;
                                        };
                                        if poll
                                            .registry()
                                            .register(
                                                &mut c.stream,
                                                Token(key.to_usize()),
                                                Interest::READABLE,
                                            )
                                            .is_err()
                                        {
                                            conns.remove(key);
                                            out.short += 1;
                                        }
                                    }
                                    Err(_) => out.connect_failures += 1,
                                }
                            }
                            if next == mine.len() && conns.is_empty() {
                                return out;
                            }
                            // Sleep until the next launch is due or a socket
                            // turns readable.
                            if next < mine.len() {
                                let due = trace_to_nanos(
                                    mine[next].start.saturating_sub(t0),
                                    cfg.compression,
                                );
                                let wait = due.saturating_sub(clock.now()).max(1);
                                let _ = timer
                                    .set_state(TimerState::Oneshot(Duration::from_nanos(wait)));
                            } else {
                                let _ = timer.set_state(TimerState::Disarmed);
                            }
                            // lsw::allow(L008): the driver's single scheduling point; bounded by the launch timerfd and server closes
                            if poll.poll(&mut events, None).is_err() {
                                return out; // out of fds/memory; give up cleanly
                            }
                            for event in events.iter() {
                                match event.token() {
                                    TIMER_TOKEN => {
                                        timer.read();
                                    }
                                    tok => {
                                        let key = Key::from_usize(tok.0);
                                        let Some(conn) = conns.get_mut(key) else {
                                            continue;
                                        };
                                        if pump(
                                            conn,
                                            &mut scratch,
                                            &mut sink,
                                            &mut out,
                                            bytes_received,
                                        ) {
                                            // Dropping the stream closes the
                                            // fd and deregisters it.
                                            conns.remove(key);
                                        }
                                    }
                                }
                            }
                        }
                    })
                    // lsw::allow(L005): OS thread spawn fails only on resource exhaustion, and a scoped-spawn error cannot escape the scope closure as a Result
                    .expect("spawning a driver worker thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut total = DriveOutcome::default();
    for p in partials {
        total.absorb(p);
    }
    Ok(total)
}

/// Opens one connection and sends the request line.
fn open(addr: SocketAddr, t: &ScheduledTransfer) -> io::Result<ClientConn> {
    #[allow(clippy::disallowed_methods)]
    // lsw::allow(L002): the load driver opens real sockets by design
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut line = proto::encode_request(t);
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.set_nonblocking(true)?;
    Ok(ClientConn {
        stream,
        header: Vec::new(),
        expected: None,
        received: 0,
    })
}

/// Reads whatever the server has for one connection; returns true when
/// the connection is finished and accounted.
///
/// Once the status line is parsed the remaining bytes are pure pattern
/// payload the driver only counts, so they are drained zero-copy via
/// [`SpliceSink`] when one is available — at multi-GB/s the skb-to-
/// userspace memcpy of a plain `read(2)` is the harness's dominant cost
/// and would cap the measured server ceiling. A kernel refusing splice
/// (`EINVAL`/`ENOSYS`: socket-to-pipe splice unsupported, seccomp, or
/// an exotic filesystem backing the pipe) *retires the sink for the
/// rest of the run* and falls back to the copying path below, which
/// stays correct — retrying a syscall the kernel already refused on
/// every drain would just double the syscall count of the slow path.
fn pump(
    conn: &mut ClientConn,
    scratch: &mut [u8],
    sink: &mut Option<SpliceSink>,
    out: &mut DriveOutcome,
    bytes_received: &crate::metrics::Counter,
) -> bool {
    loop {
        if conn.expected.is_some() {
            if let Some(s) = sink.as_ref() {
                match s.drain(conn.stream.as_raw_fd(), 1 << 20) {
                    Ok(0) => {
                        settle(conn, out);
                        return true;
                    }
                    Ok(n) => {
                        conn.received += n as u64;
                        out.bytes_received += n as u64;
                        bytes_received.add(n as u64);
                        continue;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                    Err(e) => {
                        if splice_unsupported(&e) {
                            // This kernel will refuse every future
                            // splice the same way: drop to read(2)
                            // permanently instead of failing the run
                            // or re-probing per drain.
                            *sink = None;
                        }
                        // Transient refusals copy this round only.
                    }
                }
            }
        }
        match conn.stream.read(scratch) {
            Ok(0) => {
                settle(conn, out);
                return true;
            }
            Ok(n) if conn.expected.is_none() => {
                // Capacity check BEFORE growth, on the status *line*
                // only: the server streams payload right behind the
                // newline, so the chunk itself may legitimately exceed
                // MAX_REQUEST_LINE. Bytes past the newline are drained
                // out of `header` below, so the buffer stays bounded.
                let nl_in_chunk = scratch[..n].iter().position(|&b| b == b'\n');
                if conn.header.len() + nl_in_chunk.unwrap_or(n) > proto::MAX_REQUEST_LINE {
                    out.short += 1; // protocol garbage
                    return true;
                }
                conn.header.extend_from_slice(&scratch[..n]);
                let Some(nl) = conn.header.iter().position(|&b| b == b'\n') else {
                    continue;
                };
                let line = String::from_utf8_lossy(&conn.header[..nl]).into_owned();
                let Some(budget) = line.strip_prefix("OK ").and_then(|v| v.parse().ok()) else {
                    // BUSY (or unparseable): admission turned us away.
                    out.rejected += 1;
                    return true;
                };
                conn.expected = Some(budget);
                // Bytes past the status line are already payload.
                let rest = (conn.header.len() - nl - 1) as u64;
                conn.header.clear();
                conn.received += rest;
                out.bytes_received += rest;
                bytes_received.add(rest);
            }
            Ok(n) => {
                conn.received += n as u64;
                out.bytes_received += n as u64;
                bytes_received.add(n as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                settle(conn, out);
                return true;
            }
        }
    }
}

/// Accounts a closed connection as completed or short.
fn settle(conn: &ClientConn, out: &mut DriveOutcome) {
    match conn.expected {
        Some(exp) if conn.received >= exp => out.completed += 1,
        _ => out.short += 1,
    }
}

/// Whether a `splice(2)` failure means the kernel will never serve this
/// drain path: `EINVAL` (this socket/pipe pairing is unsupported) or
/// `ENOSYS` (the syscall itself is absent, e.g. filtered by seccomp).
fn splice_unsupported(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(22 /* EINVAL */ | 38 /* ENOSYS */))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_refusals_classify_as_permanent_or_transient() {
        assert!(splice_unsupported(&io::Error::from_raw_os_error(22)));
        assert!(splice_unsupported(&io::Error::from_raw_os_error(38)));
        // EAGAIN/EBADF/EPIPE are per-call conditions, not capability
        // verdicts: the sink must survive them.
        for errno in [11, 9, 32] {
            assert!(!splice_unsupported(&io::Error::from_raw_os_error(errno)));
        }
        assert!(!splice_unsupported(&io::Error::other("no raw errno")));
    }

    #[test]
    fn outcomes_sum() {
        let mut a = DriveOutcome {
            launched: 1,
            completed: 1,
            ..DriveOutcome::default()
        };
        a.absorb(DriveOutcome {
            launched: 2,
            short: 1,
            bytes_received: 10,
            ..DriveOutcome::default()
        });
        assert_eq!(a.launched, 3);
        assert_eq!(a.completed, 1);
        assert_eq!(a.short, 1);
        assert_eq!(a.bytes_received, 10);
    }
}
