//! The trace-driven load driver.
//!
//! Transfers are dealt round-robin to a fixed pool of client workers
//! (each partition stays start-ordered, so a worker never has to look
//! ahead). A worker opens each connection when the compressed clock
//! reaches the transfer's scheduled start, sends the request line, and
//! then reads nonblocking until the server closes — so a handful of
//! threads sustain thousands of concurrent connections.

use crate::clock::{trace_to_nanos, Nanos, WallClock};
use crate::metrics::Registry;
use crate::proto;
use lsw_trace::schedule::{Schedule, ScheduledTransfer};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Load driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Server address to replay against.
    pub addr: SocketAddr,
    /// Time-compression factor (shared with the server).
    pub compression: f64,
    /// Client worker threads.
    pub workers: usize,
    /// Poll tick, nanoseconds.
    pub tick: Nanos,
}

impl DriverConfig {
    /// A driver aimed at `addr` with the given compression.
    pub fn new(addr: SocketAddr, compression: f64) -> Self {
        Self {
            addr,
            compression: compression.max(1.0),
            workers: 4,
            tick: 2_000_000,
        }
    }
}

/// What one replay run offered and got back, summed over all workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Connections opened (request line sent).
    pub launched: u64,
    /// Connections that failed to open or to send the request.
    pub connect_failures: u64,
    /// Transfers answered `BUSY` by admission control.
    pub rejected: u64,
    /// Transfers that delivered their full wire byte budget.
    pub completed: u64,
    /// Transfers closed short of their budget (slow-client drop, drain).
    pub short: u64,
    /// Wire payload bytes received.
    pub bytes_received: u64,
}

impl DriveOutcome {
    fn absorb(&mut self, o: DriveOutcome) {
        self.launched += o.launched;
        self.connect_failures += o.connect_failures;
        self.rejected += o.rejected;
        self.completed += o.completed;
        self.short += o.short;
        self.bytes_received += o.bytes_received;
    }
}

struct ClientConn {
    stream: TcpStream,
    /// Status line bytes until the first newline.
    header: Vec<u8>,
    /// Expected payload bytes, known once the `OK` line arrives.
    expected: Option<u64>,
    received: u64,
}

/// Replays the whole schedule against a live server; blocks until every
/// transfer has been offered and every connection has closed.
pub fn drive(
    schedule: &Schedule,
    cfg: &DriverConfig,
    clock: &WallClock,
    registry: &Registry,
) -> io::Result<DriveOutcome> {
    if schedule.is_empty() {
        return Ok(DriveOutcome::default());
    }
    let t0 = schedule.transfers[0].start;
    let workers = cfg.workers.max(1);
    let connects = registry.counter("drv.connects");
    let bytes_received = registry.counter("drv.bytes_received");
    let lateness = registry.histogram("drv.lateness_ms");

    let partials: Vec<DriveOutcome> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mine: Vec<&ScheduledTransfer> =
                    schedule.transfers.iter().skip(w).step_by(workers).collect();
                let connects = &connects;
                let bytes_received = &bytes_received;
                let lateness = &lateness;
                s.spawn(move || {
                    let mut out = DriveOutcome::default();
                    let mut next = 0usize;
                    let mut active: Vec<ClientConn> = Vec::new();
                    let mut scratch = [0u8; 16384];
                    loop {
                        let now = clock.now();
                        while next < mine.len() {
                            let t = mine[next];
                            let due = trace_to_nanos(t.start - t0, cfg.compression);
                            if due > now {
                                break;
                            }
                            next += 1;
                            match open(cfg.addr, t) {
                                Ok(conn) => {
                                    out.launched += 1;
                                    connects.inc();
                                    lateness.record((now - due) / 1_000_000);
                                    active.push(conn);
                                }
                                Err(_) => out.connect_failures += 1,
                            }
                        }
                        let mut i = 0;
                        while i < active.len() {
                            if pump(&mut active[i], &mut scratch, &mut out, bytes_received) {
                                active.swap_remove(i);
                            } else {
                                i += 1;
                            }
                        }
                        if next == mine.len() && active.is_empty() {
                            return out;
                        }
                        std::thread::sleep(std::time::Duration::from_nanos(cfg.tick.max(100_000)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut total = DriveOutcome::default();
    for p in partials {
        total.absorb(p);
    }
    Ok(total)
}

/// Opens one connection and sends the request line.
fn open(addr: SocketAddr, t: &ScheduledTransfer) -> io::Result<ClientConn> {
    #[allow(clippy::disallowed_methods)]
    // lsw::allow(L002): the load driver opens real sockets by design
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut line = proto::encode_request(t);
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.set_nonblocking(true)?;
    Ok(ClientConn {
        stream,
        header: Vec::new(),
        expected: None,
        received: 0,
    })
}

/// Reads whatever the server has for one connection; returns true when
/// the connection is finished and accounted.
fn pump(
    conn: &mut ClientConn,
    scratch: &mut [u8],
    out: &mut DriveOutcome,
    bytes_received: &crate::metrics::Counter,
) -> bool {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                settle(conn, out);
                return true;
            }
            Ok(n) if conn.expected.is_none() => {
                // Capacity check BEFORE growth, on the status *line*
                // only: the server streams payload right behind the
                // newline, so the chunk itself may legitimately exceed
                // MAX_REQUEST_LINE. Bytes past the newline are drained
                // out of `header` below, so the buffer stays bounded.
                let nl_in_chunk = scratch[..n].iter().position(|&b| b == b'\n');
                if conn.header.len() + nl_in_chunk.unwrap_or(n) > proto::MAX_REQUEST_LINE {
                    out.short += 1; // protocol garbage
                    return true;
                }
                conn.header.extend_from_slice(&scratch[..n]);
                let Some(nl) = conn.header.iter().position(|&b| b == b'\n') else {
                    continue;
                };
                let line = String::from_utf8_lossy(&conn.header[..nl]).into_owned();
                let Some(budget) = line.strip_prefix("OK ").and_then(|v| v.parse().ok()) else {
                    // BUSY (or unparseable): admission turned us away.
                    out.rejected += 1;
                    return true;
                };
                conn.expected = Some(budget);
                // Bytes past the status line are already payload.
                let rest = (conn.header.len() - nl - 1) as u64;
                conn.header.clear();
                conn.received += rest;
                out.bytes_received += rest;
                bytes_received.add(rest);
            }
            Ok(n) => {
                conn.received += n as u64;
                out.bytes_received += n as u64;
                bytes_received.add(n as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                settle(conn, out);
                return true;
            }
        }
    }
}

/// Accounts a closed connection as completed or short.
fn settle(conn: &ClientConn, out: &mut DriveOutcome) {
    match conn.expected {
        Some(exp) if conn.received >= exp => out.completed += 1,
        _ => out.short += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_sum() {
        let mut a = DriveOutcome {
            launched: 1,
            completed: 1,
            ..DriveOutcome::default()
        };
        a.absorb(DriveOutcome {
            launched: 2,
            short: 1,
            bytes_received: 10,
            ..DriveOutcome::default()
        });
        assert_eq!(a.launched, 3);
        assert_eq!(a.completed, 1);
        assert_eq!(a.short, 1);
        assert_eq!(a.bytes_received, 10);
    }
}
