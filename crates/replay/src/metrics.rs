//! Lock-free replay observability: counters, gauges, and log-bucket
//! histograms behind a named registry.
//!
//! Hot paths touch only pre-acquired `Arc` handles — a metric update is
//! one relaxed atomic RMW, never a lock. The registry's mutex guards
//! *registration only* (done once, at startup) and snapshotting, which
//! runs on the exposition cadence, off every serving path.
//!
//! Histograms use the same power-law bucketing idea as
//! `lsw_stream::quantile` (geometric buckets, mid-bucket representative),
//! coarsened to power-of-two buckets so recording is a single atomic
//! increment at index `ilog2(v)`.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (active connections, backlog bytes, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one to the level.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (saturating at zero under races only in value, not
    /// memory safety; callers pair inc/dec).
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Raises the level to at least `v` (for peak tracking).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: values up to `2^63` land in-range.
const HIST_BUCKETS: usize = 64;

/// A log-bucket histogram of `u64` samples: bucket `b` covers
/// `[2^b, 2^(b+1))` (zero lands in bucket 0).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LogHistogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let b = if v == 0 { 0 } else { v.ilog2() as usize };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Freezes the buckets for quantile math.
    pub fn freeze(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An immutable histogram capture.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Quantile estimate: the geometric midpoint of the bucket holding
    /// rank `q * (n - 1)`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (n - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                let lo = if b == 0 {
                    0.0
                } else {
                    f64::powi(2.0, b as i32)
                };
                let hi = f64::powi(2.0, b as i32 + 1);
                return Some((lo * hi).max(1.0).sqrt());
            }
        }
        None
    }
}

/// A metric handle as held by the registry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogHistogram>),
}

/// A snapshot value, one per registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(u64),
    /// Histogram summary: `(count, p50, p95, p99)`.
    Histogram(u64, f64, f64, f64),
}

/// Named metrics, registered once at startup, read on a cadence.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-fetches) a counter by name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        // lsw::allow(L008): registration is a short bounded scan of a small fixed metric set
        let mut entries = self.entries.lock();
        for (n, m) in entries.iter() {
            if n == name {
                if let Metric::Counter(c) = m {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::default());
        // lsw::allow(L009): bounded by the fixed set of registered metric names
        entries.push((name.to_string(), Metric::Counter(Arc::clone(&c))));
        c
    }

    /// Registers (or re-fetches) a gauge by name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        // lsw::allow(L008): registration is a short bounded scan of a small fixed metric set
        let mut entries = self.entries.lock();
        for (n, m) in entries.iter() {
            if n == name {
                if let Metric::Gauge(g) = m {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::default());
        // lsw::allow(L009): bounded by the fixed set of registered metric names
        entries.push((name.to_string(), Metric::Gauge(Arc::clone(&g))));
        g
    }

    /// Registers (or re-fetches) a histogram by name.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        // lsw::allow(L008): registration is a short bounded scan of a small fixed metric set
        let mut entries = self.entries.lock();
        for (n, m) in entries.iter() {
            if n == name {
                if let Metric::Histogram(h) = m {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(LogHistogram::default());
        // lsw::allow(L009): bounded by the fixed set of registered metric names
        entries.push((name.to_string(), Metric::Histogram(Arc::clone(&h))));
        h
    }

    /// Renders the aligned text exposition directly from the live
    /// metrics into a caller-owned buffer — the exposition-cadence
    /// twin of [`Snapshot::render`] that allocates nothing once the
    /// buffer has warmed up to the exposition's steady-state length
    /// (no name clones, no per-line `String`s, no `Snapshot`). The
    /// registration lock is held across the formatting, which is fine
    /// on the exposition cadence (registration is startup-only).
    pub fn render_text(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.clear();
        let entries = self.entries.lock();
        let width = entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, m) in entries.iter() {
            let _ = match m {
                Metric::Counter(c) => writeln!(out, "{name:width$}  {}", c.get()),
                Metric::Gauge(g) => writeln!(out, "{name:width$}  {} (gauge)", g.get()),
                Metric::Histogram(h) => {
                    let f = h.freeze();
                    writeln!(
                        out,
                        "{name:width$}  n={} p50≈{:.0} p95≈{:.0} p99≈{:.0}",
                        f.count(),
                        f.quantile(0.50).unwrap_or(0.0),
                        f.quantile(0.95).unwrap_or(0.0),
                        f.quantile(0.99).unwrap_or(0.0),
                    )
                }
            };
        }
    }

    /// Captures every metric, in registration order.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock();
        let values = entries
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => SnapValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let f = h.freeze();
                        SnapValue::Histogram(
                            f.count(),
                            f.quantile(0.50).unwrap_or(0.0),
                            f.quantile(0.95).unwrap_or(0.0),
                            f.quantile(0.99).unwrap_or(0.0),
                        )
                    }
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { values }
    }
}

/// A point-in-time capture of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in registration order.
    pub values: Vec<(String, SnapValue)>,
}

impl Snapshot {
    /// Aligned text exposition, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// [`render`](Self::render) into a caller-reused buffer (cleared
    /// first): no per-line allocations, and none at all once the buffer
    /// has seen its steady-state length.
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.clear();
        let width = self.values.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &self.values {
            let _ = match v {
                SnapValue::Counter(c) => writeln!(out, "{name:width$}  {c}"),
                SnapValue::Gauge(g) => writeln!(out, "{name:width$}  {g} (gauge)"),
                SnapValue::Histogram(n, p50, p95, p99) => {
                    writeln!(
                        out,
                        "{name:width$}  n={n} p50≈{p50:.0} p95≈{p95:.0} p99≈{p99:.0}"
                    )
                }
            };
        }
    }

    /// JSON object keyed by metric name.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let fields = self
            .values
            .iter()
            .map(|(name, v)| {
                let jv = match v {
                    SnapValue::Counter(c) => Value::U64(*c),
                    SnapValue::Gauge(g) => Value::U64(*g),
                    SnapValue::Histogram(n, p50, p95, p99) => Value::Object(vec![
                        ("count".to_string(), Value::U64(*n)),
                        ("p50".to_string(), Value::F64(*p50)),
                        ("p95".to_string(), Value::F64(*p95)),
                        ("p99".to_string(), Value::F64(*p99)),
                    ]),
                };
                (name.clone(), jv)
            })
            .collect();
        Value::Object(fields)
    }

    /// Looks up a histogram by name: `(samples, p50, p95, p99)`.
    pub fn histogram(&self, name: &str) -> Option<(u64, f64, f64, f64)> {
        self.values.iter().find_map(|(n, v)| match v {
            SnapValue::Histogram(count, p50, p95, p99) if n == name => {
                Some((*count, *p50, *p95, *p99))
            }
            _ => None,
        })
    }

    /// Looks up a counter/gauge value by name.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| match v {
                SnapValue::Counter(c) => *c,
                SnapValue::Gauge(g) => *g,
                SnapValue::Histogram(n, ..) => *n,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("replay.connects");
        let g = r.gauge("replay.active");
        c.add(41);
        c.inc();
        g.set(7);
        g.inc();
        g.dec();
        let snap = r.snapshot();
        assert_eq!(snap.value("replay.connects"), Some(42));
        assert_eq!(snap.value("replay.active"), Some(7));
        assert!(snap.render().contains("replay.connects"));
    }

    #[test]
    fn reregistration_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("x").add(5);
        r.counter("x").add(5);
        assert_eq!(r.snapshot().value("x"), Some(10));
        assert_eq!(r.snapshot().values.len(), 1);
    }

    #[test]
    fn histogram_quantiles_track_magnitude() {
        let h = LogHistogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let f = h.freeze();
        assert_eq!(f.count(), 1000);
        let p50 = f.quantile(0.5).unwrap();
        // Rank 499 is the sample 500, in bucket [256, 512); the estimate
        // is that bucket's geometric midpoint.
        assert!((256.0..512.0).contains(&p50), "p50 {p50}");
        assert!(f.quantile(0.99).unwrap() >= p50);
        assert!(LogHistogram::default().freeze().quantile(0.5).is_none());
    }

    #[test]
    fn exposition_reuses_the_buffer_after_warmup() {
        let r = Registry::new();
        let c = r.counter("a.count");
        let g = r.gauge("b.gauge");
        let h = r.histogram("c.hist");
        c.add(u64::MAX / 2); // widest the counter line will ever get
        g.set(123_456_789);
        for v in [1u64, 1000, 1 << 40] {
            h.record(v);
        }
        let mut buf = String::new();
        r.render_text(&mut buf); // warmup sizes the buffer once
        assert!(!buf.is_empty());
        let cap = buf.capacity();
        for i in 0..100u64 {
            c.inc();
            g.set(i);
            h.record(i);
            r.render_text(&mut buf);
        }
        assert_eq!(buf.capacity(), cap, "exposition must not grow after warmup");
        assert_eq!(buf, r.snapshot().render(), "both exposition paths agree");

        // The histogram quantiles are *on the wire*, not just in the
        // snapshot: the `--expose` loop prints exactly this buffer.
        let hist_line = buf
            .lines()
            .find(|l| l.starts_with("c.hist"))
            .expect("histogram line on the exposition wire");
        for field in ["n=", "p50≈", "p95≈", "p99≈"] {
            assert!(
                hist_line.contains(field),
                "histogram line must carry {field}: {hist_line:?}"
            );
        }
        // And they are the snapshot's values, rendered to the same
        // precision — the wire is not a stale or re-derived estimate.
        let (n, p50, p95, p99) = r.snapshot().histogram("c.hist").expect("c.hist registered");
        assert_eq!(n, 103); // 3 warmup records + 100 loop records
        let expect = format!("n={n} p50≈{p50:.0} p95≈{p95:.0} p99≈{p99:.0}");
        assert!(
            hist_line.ends_with(&expect),
            "wire {hist_line:?} must end with snapshot rendering {expect:?}"
        );
        // Sanity on the estimates themselves: the pow2-bucket midpoint
        // of the true quantile is within a factor of two, and the
        // ordering p50 <= p95 <= p99 always holds.
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= 1.0 && p99 <= 2.0 * (1u64 << 41) as f64);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let r = Registry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
