//! A minimal Rust token scanner: just enough lexical structure for the
//! lint rules in [`crate::rules`].
//!
//! This is deliberately *not* a parser. The rules this workspace enforces
//! (hash-order iteration, ambient nondeterminism, float accumulation,
//! unordered reductions, panicking calls) are all recognizable from short
//! token sequences plus brace structure, and a hand-rolled scanner keeps
//! the linter dependency-free in an offline build environment where `syn`
//! is unavailable. The scanner understands the lexical constructs that
//! would otherwise produce false tokens: line/block comments (nested),
//! string and raw-string literals (including `b"…"`/`br#"…"#`), char
//! literals vs. lifetimes, and numeric literals.

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (bytes).
    pub col: usize,
}

/// The token classes the lint rules care about.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `unwrap`, …).
    Ident(String),
    /// A single punctuation byte (`.`, `:`, `+`, `=`, `{`, …).
    Punct(char),
    /// Numeric, string, byte-string or char literal (content discarded).
    Literal,
    /// A lifetime such as `'a` (content discarded).
    Lifetime,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(t) if t == s)
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment with the line it starts on. Used for `lsw::allow` opt-outs.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: usize,
    /// Raw comment text including the delimiters.
    pub text: String,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Scans `src` into tokens and comments. Never fails: unterminated
/// constructs simply consume to end of input (the real compiler will
/// reject such files anyway; the linter stays quiet rather than guessing).
pub fn lex(src: &str) -> Lexed {
    Scanner::new(src).run()
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    out: Lexed,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, line: usize, col: usize) {
        self.out.tokens.push(Token { kind, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => {
                    self.string_literal();
                    self.push(TokenKind::Literal, line, col);
                }
                b'\'' => self.quote(line, col),
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Literal, line, col);
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let ident = self.ident_text();
                    // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`: the prefix lexes
                    // as an identifier; the quote that follows makes it a
                    // string literal instead.
                    let raw_capable = matches!(ident.as_str(), "r" | "br");
                    let str_capable = matches!(ident.as_str(), "r" | "b" | "br");
                    if str_capable && self.peek(0) == Some(b'"') {
                        self.string_literal();
                        self.push(TokenKind::Literal, line, col);
                    } else if raw_capable && self.peek(0) == Some(b'#') {
                        self.raw_string_literal();
                        self.push(TokenKind::Literal, line, col);
                    } else {
                        self.push(TokenKind::Ident(ident), line, col);
                    }
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(b as char), line, col);
                }
            }
        }
        self.out
    }

    fn ident_text(&mut self) -> String {
        let start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn line_comment(&mut self, line: usize) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self, line: usize) {
        let start = self.pos;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    /// Consumes a `"…"` literal (escapes honored). The opening quote (or a
    /// `b`/`r` prefix) has already positioned `pos` at the `"` byte.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Consumes `#…#"…"#…#` after an `r`/`br` prefix (pos is at first `#`).
    fn raw_string_literal(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            return; // `r#foo` raw identifier, not a string — already lexed
        }
        self.bump(); // opening quote
        'outer: while let Some(b) = self.bump() {
            if b == b'"' {
                for _ in 0..hashes {
                    if self.peek(0) != Some(b'#') {
                        continue 'outer;
                    }
                    self.bump();
                }
                break;
            }
        }
    }

    fn number(&mut self) {
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        // Fractional part — but not the `..` of a range expression.
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
            self.bump();
            while matches!(self.peek(0), Some(b'0'..=b'9' | b'_' | b'e' | b'E')) {
                self.bump();
            }
        }
    }

    /// Disambiguates a lifetime (`'a`) from a char literal (`'x'`, `'\n'`).
    fn quote(&mut self, line: usize, col: usize) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match next {
            Some(b'\\') => true,
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') => after == Some(b'\''),
            Some(_) => true, // e.g. '+' — a char literal
            None => false,
        };
        if is_char {
            self.bump(); // opening quote
            while let Some(b) = self.bump() {
                match b {
                    b'\\' => {
                        self.bump();
                    }
                    b'\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Literal, line, col);
        } else {
            self.bump(); // the `'`
            while matches!(
                self.peek(0),
                Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
            ) {
                self.bump();
            }
            self.push(TokenKind::Lifetime, line, col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let l = lex("// unwrap()\n/* panic! */ foo");
        assert_eq!(idents("// unwrap()\n/* panic! */ foo"), ["foo"]);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "unwrap() panic!"; t"#), ["let", "s", "t"]);
        assert_eq!(
            idents(r##"let s = r#"thread_rng()"#; t"##),
            ["let", "s", "t"]
        );
        assert_eq!(idents(r#"let s = b"SystemTime"; t"#), ["let", "s", "t"]);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        assert_eq!(idents(r#"let s = "a\"unwrap"; t"#), ["let", "s", "t"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let lits = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 1, "'x' is a char literal");
    }

    #[test]
    fn line_numbers_are_accurate() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<usize> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ c */ d"), ["d"]);
    }

    #[test]
    fn numbers_including_ranges() {
        let l = lex("0..10 1.5e3 0xff_u8");
        let puncts: Vec<char> = l
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, ['.', '.'], "range dots survive as punctuation");
    }
}
