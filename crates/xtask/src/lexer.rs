//! A minimal Rust token scanner: just enough lexical structure for the
//! lint rules in [`crate::rules`] and the item extractor in
//! [`crate::items`].
//!
//! This is deliberately *not* a parser. The rules this workspace enforces
//! (hash-order iteration, ambient nondeterminism, float accumulation,
//! unordered reductions, panicking calls, and the interprocedural checks
//! built on the call graph) are all recognizable from short token
//! sequences plus brace structure, and a hand-rolled scanner keeps the
//! linter dependency-free in an offline build environment where `syn` is
//! unavailable. The scanner understands the lexical constructs that
//! would otherwise produce false tokens: line/block comments (nested),
//! string and raw-string literals (including `b"…"`/`br#"…"#`), char
//! literals vs. lifetimes, and numeric literals.
//!
//! Every token and comment carries its byte span `[start, end)` into the
//! scanned source. Spans are always in bounds and always on `char`
//! boundaries (non-ASCII bytes are consumed one whole `char` at a time),
//! so `&src[start..end]` is safe for any reported span — the property
//! the proptests in `tests/proptests.rs` pin down.

/// One lexical token with its source position and byte span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (bytes).
    pub col: usize,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

/// The token classes the lint rules care about.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `unwrap`, …).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `+`, `=`, `{`, …).
    Punct(char),
    /// Numeric, string, byte-string or char literal (content discarded).
    Literal,
    /// A lifetime such as `'a` (content discarded).
    Lifetime,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(t) if t == s)
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment with its position and byte span. Used for `lsw::allow`
/// opt-outs; doc comments are marked so allow parsing can skip prose
/// that merely *describes* the annotation syntax.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: usize,
    /// 1-based column (bytes) the comment starts at.
    pub col: usize,
    /// Byte offset of the first delimiter byte.
    pub start: usize,
    /// Byte offset one past the comment's last byte.
    pub end: usize,
    /// Raw comment text including the delimiters.
    pub text: String,
    /// True for `///`, `//!`, `/** … */`, `/*! … */` documentation.
    pub is_doc: bool,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Scans `src` into tokens and comments. Never fails: unterminated
/// constructs simply consume to end of input (the real compiler will
/// reject such files anyway; the linter stays quiet rather than guessing).
pub fn lex(src: &str) -> Lexed {
    Scanner::new(src).run()
}

struct Scanner<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    out: Lexed,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, line: usize, col: usize, start: usize) {
        self.out.tokens.push(Token {
            kind,
            line,
            col,
            start,
            end: self.pos,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            let (line, col, start) = (self.line, self.col, self.pos);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line, col),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line, col),
                b'"' => {
                    self.string_literal();
                    self.push(TokenKind::Literal, line, col, start);
                }
                b'\'' => self.quote(line, col, start),
                b'0'..=b'9' => {
                    self.number();
                    self.push(TokenKind::Literal, line, col, start);
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let ident = self.ident_text();
                    // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`: the prefix lexes
                    // as an identifier; the quote that follows makes it a
                    // string literal instead.
                    let raw_capable = matches!(ident.as_str(), "r" | "br");
                    let str_capable = matches!(ident.as_str(), "r" | "b" | "br");
                    if str_capable && self.peek(0) == Some(b'"') {
                        self.string_literal();
                        self.push(TokenKind::Literal, line, col, start);
                    } else if raw_capable && self.peek(0) == Some(b'#') {
                        self.raw_string_literal();
                        self.push(TokenKind::Literal, line, col, start);
                    } else {
                        self.push(TokenKind::Ident(ident), line, col, start);
                    }
                }
                _ if b < 0x80 => {
                    self.bump();
                    self.push(TokenKind::Punct(b as char), line, col, start);
                }
                _ => {
                    // A non-ASCII char outside strings/comments: consume the
                    // whole char so the span stays on a char boundary.
                    let c = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                    for _ in 0..c.len_utf8() {
                        self.bump();
                    }
                    self.push(TokenKind::Punct(c), line, col, start);
                }
            }
        }
        self.out
    }

    fn ident_text(&mut self) -> String {
        let start = self.pos;
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn finish_comment(&mut self, line: usize, col: usize, start: usize) {
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        let is_doc = (text.starts_with("///") && !text.starts_with("////"))
            || text.starts_with("//!")
            || (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
            || text.starts_with("/*!");
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            col,
            start,
            end: self.pos,
            text,
            is_doc,
        });
    }

    fn line_comment(&mut self, line: usize, col: usize) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        self.finish_comment(line, col, start);
    }

    fn block_comment(&mut self, line: usize, col: usize) {
        let start = self.pos;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.finish_comment(line, col, start);
    }

    /// Consumes a `"…"` literal (escapes honored). The opening quote (or a
    /// `b`/`r` prefix) has already positioned `pos` at the `"` byte.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Consumes `#…#"…"#…#` after an `r`/`br` prefix (pos is at first `#`).
    fn raw_string_literal(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            return; // `r#foo` raw identifier, not a string — already lexed
        }
        self.bump(); // opening quote
        'outer: while let Some(b) = self.bump() {
            if b == b'"' {
                for _ in 0..hashes {
                    if self.peek(0) != Some(b'#') {
                        continue 'outer;
                    }
                    self.bump();
                }
                break;
            }
        }
    }

    fn number(&mut self) {
        while matches!(
            self.peek(0),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        // Fractional part — but not the `..` of a range expression.
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b'0'..=b'9')) {
            self.bump();
            while matches!(self.peek(0), Some(b'0'..=b'9' | b'_' | b'e' | b'E')) {
                self.bump();
            }
        }
    }

    /// Disambiguates a lifetime (`'a`) from a char literal (`'x'`, `'\n'`).
    fn quote(&mut self, line: usize, col: usize, start: usize) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match next {
            Some(b'\\') => true,
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') => after == Some(b'\''),
            Some(_) => true, // e.g. '+' — a char literal
            None => false,
        };
        if is_char {
            self.bump(); // opening quote
            while let Some(b) = self.bump() {
                match b {
                    b'\\' => {
                        self.bump();
                    }
                    b'\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Literal, line, col, start);
        } else {
            self.bump(); // the `'`
            while matches!(
                self.peek(0),
                Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
            ) {
                self.bump();
            }
            self.push(TokenKind::Lifetime, line, col, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let l = lex("// unwrap()\n/* panic! */ foo");
        assert_eq!(idents("// unwrap()\n/* panic! */ foo"), ["foo"]);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "unwrap() panic!"; t"#), ["let", "s", "t"]);
        assert_eq!(
            idents(r##"let s = r#"thread_rng()"#; t"##),
            ["let", "s", "t"]
        );
        assert_eq!(idents(r#"let s = b"SystemTime"; t"#), ["let", "s", "t"]);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        assert_eq!(idents(r#"let s = "a\"unwrap"; t"#), ["let", "s", "t"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let lits = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 1, "'x' is a char literal");
    }

    #[test]
    fn line_numbers_are_accurate() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<usize> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* a /* b */ c */ d"), ["d"]);
    }

    #[test]
    fn numbers_including_ranges() {
        let l = lex("0..10 1.5e3 0xff_u8");
        let puncts: Vec<char> = l
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, ['.', '.'], "range dots survive as punctuation");
    }

    #[test]
    fn token_spans_slice_to_source() {
        let src = "fn foo(x: u8) -> u8 { x + 1 }";
        for t in lex(src).tokens {
            assert!(t.start <= t.end && t.end <= src.len());
            if let TokenKind::Ident(name) = &t.kind {
                assert_eq!(&src[t.start..t.end], name);
            }
        }
    }

    #[test]
    fn comment_spans_slice_to_text() {
        let src = "a // tail\n/* block\n spans */ b";
        for c in lex(src).comments {
            assert_eq!(&src[c.start..c.end], c.text);
        }
    }

    #[test]
    fn doc_comments_are_marked() {
        let l = lex("/// doc\n//! inner\n// plain\n/** blockdoc */\n/* plain */\n//// rule\n");
        let flags: Vec<bool> = l.comments.iter().map(|c| c.is_doc).collect();
        assert_eq!(flags, [true, true, false, true, false, false]);
    }

    #[test]
    fn non_ascii_punct_spans_stay_on_char_boundaries() {
        let src = "let α = 1;";
        for t in lex(src).tokens {
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        }
    }
}
