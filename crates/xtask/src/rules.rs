//! The lsw lint rules.
//!
//! Each rule guards a piece of the workspace's headline guarantee —
//! bit-identical reports at any thread/shard count — or the soundness
//! discipline around it:
//!
//! * **L001** — no iteration over hash-ordered collections
//!   (`HashMap`/`HashSet`). Hash iteration order is randomized per
//!   process; one such loop feeding a report breaks byte-identity.
//! * **L002** — no ambient nondeterminism (`thread_rng`, `rand::random`,
//!   `SystemTime::now`, `Instant::now`) in the deterministic crates.
//!   All randomness must flow through the counter-keyed substream API
//!   (`lsw_stats::rng::SeedStream`). The rule also covers OS endpoint
//!   acquisition (`TcpListener::bind`, `TcpStream::connect`,
//!   `UdpSocket::bind`): a socket is a clock you don't control. The
//!   `replay` crate exists to touch both, so each of its sites carries a
//!   line-scoped reasoned allow — never a file-wide exemption.
//! * **L003** — no `f64`/`f32` `+=` accumulation on fields of types that
//!   participate in shard merge. Float addition is non-associative, so
//!   merge order would leak into results; shard-merged sums use the
//!   `lsw_stream::fixed` i128 fixed-point accumulators.
//! * **L004** — no unordered `rayon` reductions (`reduce`, `sum`) outside
//!   the blessed k-way-merge modules.
//! * **L005** — no `unwrap()`/`expect()`/`panic!` in library crates'
//!   non-test code (CLI binaries and tests are exempt).
//! * **L006** — no allocating text conversions (`from_utf8_lossy`,
//!   `.to_string()`, `.to_owned()`, `String::from*`) in the ingest
//!   hot-path files. These paths budget ~hundreds of ns per record;
//!   one hidden per-record allocation erases a whole optimization pass.
//!   Cold diagnostics (error constructors, once-per-report rendering)
//!   carry an `lsw::allow(L006)` with the reason.
//!
//! The interprocedural rules (see `DESIGN.md` §14) ride on the call
//! graph in [`crate::graph`]:
//!
//! * **L007** — lock-order analysis: the mutex/rwlock acquisition graph
//!   over `crates/replay` and `crates/stream` must be cycle-free; a
//!   cycle is a potential deadlock between worker shards.
//! * **L008** — no blocking call (`thread::sleep`, `read_to_end`,
//!   unbounded `recv()`, blocking `lock()` waits) reachable from the
//!   replay worker-shard poll loop. Every sanctioned site carries a
//!   reasoned allow explaining why its wait is bounded.
//! * **L009** — bounded-memory discipline: growable-container mutation
//!   (`push`/`insert`/`extend`/…) on struct fields in the streaming
//!   ingest and replay backlog files must be dominated by a capacity
//!   check, or live in a blessed bounded-container module. This is the
//!   static counterpart of the `--memory-budget` contract.
//! * **L010** — stale-allow hygiene: an `lsw::allow`/`allow-file`
//!   comment that suppresses zero findings is itself a finding
//!   (`cargo xtask lint --fix` strips them mechanically).
//! * **L011** — lossy `as` casts to narrow types on the ltc codec and
//!   wire-protocol paths must go through `try_from` or carry a
//!   reasoned allow (truncation on a wire path corrupts records
//!   silently).
//!
//! ## Opt-out
//!
//! A violation can be waived with a source comment on the same line or
//! the line directly above:
//!
//! ```text
//! // lsw::allow(L001): keys are sorted into a Vec before output
//! for (k, v) in map.iter() { … }
//! ```
//!
//! `// lsw::allow-file(L00X): reason` anywhere in a file waives the rule
//! for the whole file. The reason text is mandatory: an allow without a
//! `:` is ignored (and therefore still fires). Doc comments (`///`,
//! `//!`, `/** … */`) never register allows — prose that *describes* the
//! annotation syntax, like this paragraph, is not an annotation.

use crate::items::{self, Items};
use crate::lexer::{lex, Lexed, Token, TokenKind};
use std::collections::BTreeSet;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    L001,
    L002,
    L003,
    L004,
    L005,
    L006,
    L007,
    L008,
    L009,
    L010,
    L011,
}

impl RuleId {
    /// The stable id string used in diagnostics and allow comments.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::L001 => "L001",
            RuleId::L002 => "L002",
            RuleId::L003 => "L003",
            RuleId::L004 => "L004",
            RuleId::L005 => "L005",
            RuleId::L006 => "L006",
            RuleId::L007 => "L007",
            RuleId::L008 => "L008",
            RuleId::L009 => "L009",
            RuleId::L010 => "L010",
            RuleId::L011 => "L011",
        }
    }

    /// One-line description, for `--list-rules` output.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::L001 => "no iteration over hash-ordered collections (HashMap/HashSet)",
            RuleId::L002 => {
                "no ambient nondeterminism (thread_rng/random/SystemTime/Instant/raw sockets)"
            }
            RuleId::L003 => "no f64/f32 `+=` on fields of shard-merge participants",
            RuleId::L004 => "no unordered rayon reductions outside blessed merge modules",
            RuleId::L005 => "no unwrap/expect/panic! in library non-test code",
            RuleId::L006 => "no allocating text conversions in ingest hot-path files",
            RuleId::L007 => "no cycles in the replay/stream lock acquisition graph (deadlock risk)",
            RuleId::L008 => "no blocking calls reachable from the replay worker-shard poll loop",
            RuleId::L009 => "growable-container mutation must be capacity-guarded (bounded memory)",
            RuleId::L010 => "an lsw::allow comment that suppresses no finding is stale (use --fix)",
            RuleId::L011 => "no lossy `as` casts on wire-protocol/codec paths; use try_from",
        }
    }

    /// All rules, in id order.
    pub fn all() -> [RuleId; 11] {
        [
            RuleId::L001,
            RuleId::L002,
            RuleId::L003,
            RuleId::L004,
            RuleId::L005,
            RuleId::L006,
            RuleId::L007,
            RuleId::L008,
            RuleId::L009,
            RuleId::L010,
            RuleId::L011,
        ]
    }
}

/// One lint finding within a single file.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub rule: RuleId,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    pub message: String,
}

/// How a file participates in the workspace, which decides rule scope.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// The crate directory name under `crates/` (e.g. `stream`).
    pub crate_name: String,
    /// True for `src/bin/*` files and `src/main.rs` (CLI entrypoints).
    pub is_bin: bool,
    /// True for modules blessed to use unordered reductions (the k-way
    /// merge implementations themselves).
    pub blessed_reduction: bool,
    /// True for the per-record ingest hot-path files (the wms scanner,
    /// the ltc codec, the streaming ingest loop), where L006 applies.
    pub ingest_hot: bool,
    /// True for files whose locks participate in the L007 acquisition
    /// graph and whose fns seed the L008 reachability walk (the
    /// multithreaded replay/stream sources).
    pub lock_scope: bool,
    /// True for files under the bounded-memory contract (streaming
    /// ingest state, replay backlog), where L009 applies.
    pub bounded_mem: bool,
    /// True for blessed bounded-container modules: their growth is
    /// bounded by construction, so L009 stays silent.
    pub bounded_container: bool,
    /// True for wire-format/codec files where L011 polices `as` casts.
    pub wire_path: bool,
}

/// Crates whose library code must be free of ambient nondeterminism
/// (L002). These are the crates on the deterministic generate/analyze
/// path; `figures` and `bench` time themselves with `Instant` by design.
/// `replay` is listed even though wall time and sockets are its whole
/// point: the rule forces every such site to carry a reasoned
/// line-scoped `lsw::allow(L002)` instead of escaping review wholesale.
const L002_CRATES: &[&str] = &[
    "core",
    "stream",
    "simulator",
    "stats",
    "trace",
    "analysis",
    "topology",
    "replay",
    "edge",
];

/// Crates exempt from L005 wholesale: the CLI front-end.
const L005_EXEMPT_CRATES: &[&str] = &["lsw"];

/// Methods that iterate a collection in storage order (L001).
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "par_iter",
    "par_iter_mut",
];

/// Rayon parallel-iterator constructors (L004 chain start).
const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
    "par_windows",
];

/// Unordered rayon combinators (L004 chain sink).
const PAR_SINKS: &[&str] = &["reduce", "reduce_with", "sum", "unordered_fold"];

/// Lints one file's source text under the given classification,
/// applying allow comments. This covers the per-file rules
/// (L001–L006, L009, L011); the interprocedural rules (L007, L008) and
/// stale-allow hygiene (L010) need the whole-workspace pass in
/// [`crate::analyze`].
pub fn lint_source(class: &FileClass, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let items = items::extract(&lexed.tokens);
    let allows = collect_allows(&lexed);
    let mut diags = file_rules(class, &lexed, &items);
    diags.retain(|d| !allows.iter().any(|a| a.covers(d.rule, d.line)));
    diags.sort_by_key(|d| (d.line, d.col, d.rule));
    diags
}

/// Runs the per-file rules without allow filtering (the caller decides
/// how suppression and usage accounting work). Diagnostics in test code
/// are already excluded.
pub fn file_rules(class: &FileClass, lexed: &Lexed, items: &Items) -> Vec<Diagnostic> {
    let ctx = Ctx::new(class, lexed);
    let mut diags = Vec::new();
    rule_l001(&ctx, &mut diags);
    rule_l002(&ctx, &mut diags);
    rule_l003(&ctx, &mut diags);
    rule_l004(&ctx, &mut diags);
    rule_l005(&ctx, &mut diags);
    rule_l006(&ctx, &mut diags);
    rule_l009(&ctx, items, &mut diags);
    rule_l011(&ctx, &mut diags);
    diags
}

/// Per-file analysis context shared by all rules.
struct Ctx<'a> {
    class: &'a FileClass,
    toks: &'a [Token],
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(usize, usize)>,
}

impl<'a> Ctx<'a> {
    fn new(class: &'a FileClass, lexed: &'a Lexed) -> Self {
        Self {
            class,
            toks: &lexed.tokens[..],
            test_spans: test_spans(&lexed.tokens),
        }
    }

    fn in_test(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Pushes a diagnostic unless the site is inside test code.
    fn flag(&self, diags: &mut Vec<Diagnostic>, rule: RuleId, tok: &Token, message: String) {
        if !self.in_test(tok.line) {
            diags.push(Diagnostic {
                rule,
                line: tok.line,
                col: tok.col,
                message,
            });
        }
    }
}

/// One `lsw::allow` / `lsw::allow-file` annotation parsed from a
/// non-doc comment, with the reason text the policy requires.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The waived rule's id string (`"L005"`).
    pub rule: &'static str,
    /// True for `lsw::allow-file(...)`.
    pub file_wide: bool,
    /// 1-based line the carrying comment starts on.
    pub line: usize,
    /// 1-based line the carrying comment ends on.
    pub end_line: usize,
    /// 1-based byte column of the carrying comment.
    pub col: usize,
    /// Byte span of the whole carrying comment (for `--fix` removal).
    pub comment_span: (usize, usize),
    /// The mandatory reason text after `):`.
    pub reason: String,
}

impl Allow {
    /// True when this annotation waives `rule` at `line`: file-wide, or
    /// on the comment's own line(s), or on the line directly below it.
    pub fn covers(&self, rule: RuleId, line: usize) -> bool {
        self.rule == rule.id() && (self.file_wide || line == self.line || line == self.end_line + 1)
    }
}

/// Extracts every allow annotation from a file's comments. Doc comments
/// are skipped: prose describing the syntax is not an annotation.
/// Annotations without a `:`-separated reason are ignored (and the
/// finding they meant to waive still fires).
pub fn collect_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        if c.is_doc {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lsw::allow") {
            rest = &rest[pos + "lsw::allow".len()..];
            let file_wide = rest.starts_with("-file");
            let body = rest.trim_start_matches("-file");
            let Some(body) = body.strip_prefix('(') else {
                continue;
            };
            let Some(close) = body.find(')') else {
                continue;
            };
            // Reason required: `)` must be followed by `: <text>`.
            let after = body[close + 1..].trim_start();
            let Some(reason_raw) = after.strip_prefix(':') else {
                continue;
            };
            let reason = reason_raw
                .split("lsw::allow")
                .next()
                .unwrap_or("")
                .trim_end_matches("*/")
                .trim()
                .to_owned();
            if reason.is_empty() {
                continue;
            }
            for name in body[..close].split(',') {
                let name = name.trim().trim_start_matches("lsw::");
                for rule in RuleId::all() {
                    if rule.id().eq_ignore_ascii_case(name) {
                        out.push(Allow {
                            rule: rule.id(),
                            file_wide,
                            line: c.line,
                            end_line: c.end_line,
                            col: c.col,
                            comment_span: (c.start, c.end),
                            reason: reason.clone(),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Finds the inclusive line spans of `#[cfg(test)]` and `#[test]` items.
pub fn test_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            if let Some((is_test, close)) = parse_attr(toks, i + 1) {
                if is_test {
                    if let Some(span) = item_body_span(toks, close + 1) {
                        spans.push(span);
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Parses the attribute starting at the `[` token index. Returns
/// `(is_test_attr, index_of_closing_bracket)`.
fn parse_attr(toks: &[Token], open: usize) -> Option<(bool, usize)> {
    let mut depth = 0usize;
    let mut close = None;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match &t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close?;
    let body = &toks[open + 1..close];
    // `#[test]`
    let is_test = matches!(body, [t] if t.is_ident("test"))
        // `#[cfg(test)]`
        || matches!(body,
            [c, p1, t, p2]
                if c.is_ident("cfg") && p1.is_punct('(') && t.is_ident("test") && p2.is_punct(')'));
    Some((is_test, close))
}

/// From just after an attribute, finds the `{ … }` body of the annotated
/// item and returns its inclusive line span. Items ending in `;` (e.g.
/// `#[cfg(test)] mod tests;`) have no inline body.
fn item_body_span(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    // Skip any further attributes on the same item.
    while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
        let (_, close) = parse_attr(toks, j + 1)?;
        j = close + 1;
    }
    // Scan the item header for its opening brace.
    let mut k = j;
    while k < toks.len() {
        match &toks[k].kind {
            TokenKind::Punct(';') => return None,
            TokenKind::Punct('{') => break,
            // Parenthesized default args etc. cannot contain `{` in a
            // header position we care about; skip tokens until the brace.
            _ => k += 1,
        }
    }
    if k >= toks.len() {
        return None;
    }
    let open_line = toks[j].line;
    let mut depth = 0usize;
    for t in &toks[k..] {
        match &t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open_line, t.line));
                }
            }
            _ => {}
        }
    }
    Some((open_line, toks.last().map_or(open_line, |t| t.line)))
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: typed
/// bindings and struct fields (`name: HashMap<…>`) and inferred `let`
/// bindings (`let name = HashMap::new()`).
fn hash_bound_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        // Pattern A: `name : [&] [mut] [std::collections::] HashMap/HashSet`
        if t.is_punct(':')
            && i > 0
            && (i == 1 || !toks[i - 2].is_punct(':'))
            && !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(name) = toks[i - 1].ident() {
                let mut j = i + 1;
                let mut hops = 0;
                while j < toks.len() && hops < 8 {
                    match &toks[j].kind {
                        TokenKind::Ident(s) if s == "HashMap" || s == "HashSet" => {
                            names.insert(name.to_owned());
                            break;
                        }
                        TokenKind::Ident(s)
                            if s == "std" || s == "collections" || s == "mut" || s == "dyn" =>
                        {
                            j += 1;
                        }
                        TokenKind::Punct(':') | TokenKind::Punct('&') => j += 1,
                        TokenKind::Lifetime => j += 1,
                        _ => break,
                    }
                    hops += 1;
                }
            }
        }
        // Pattern B: `let [mut] name = … HashMap/HashSet … ;`
        if t.is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(Token::ident) else {
                continue;
            };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            for t in toks.iter().skip(j + 2) {
                match &t.kind {
                    TokenKind::Ident(s) if s == "HashMap" || s == "HashSet" => {
                        names.insert(name.to_owned());
                        break;
                    }
                    TokenKind::Punct(';') => break,
                    _ => {}
                }
            }
        }
    }
    names
}

/// L001: iteration over hash-ordered collections.
fn rule_l001(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    let names = hash_bound_names(ctx.toks);
    if names.is_empty() {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        // `name.iter()` and friends.
        if let Some(name) = toks[i].ident() {
            if names.contains(name)
                && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(i + 2)
                    .and_then(Token::ident)
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            {
                let method = toks[i + 2].ident().unwrap_or_default();
                ctx.flag(
                    diags,
                    RuleId::L001,
                    &toks[i + 2],
                    format!(
                        "iteration over hash-ordered collection `{name}` (`.{method}()`): order \
                         is process-randomized; use a BTreeMap/BTreeSet, sort first, or annotate \
                         `// lsw::allow(L001): <why order cannot reach output>`"
                    ),
                );
            }
        }
        // `for pat in [&] [mut] name { … }`
        if toks[i].is_ident("in") {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(Token::ident) {
                if names.contains(name) && toks.get(j + 1).is_some_and(|t| t.is_punct('{')) {
                    ctx.flag(
                        diags,
                        RuleId::L001,
                        &toks[j],
                        format!(
                            "`for … in {name}` iterates a hash-ordered collection: order is \
                             process-randomized; use a BTreeMap/BTreeSet, sort first, or annotate \
                             `// lsw::allow(L001): <why order cannot reach output>`"
                        ),
                    );
                }
            }
        }
    }
}

/// L002: ambient nondeterminism in deterministic crates.
fn rule_l002(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    if ctx.class.is_bin || !L002_CRATES.contains(&ctx.class.crate_name.as_str()) {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        let flagged = match name {
            "thread_rng" | "from_entropy" => Some((name.to_owned(), false)),
            "SystemTime" | "Instant" if path_call(toks, i, "now") => {
                Some((format!("{name}::now"), false))
            }
            "rand" if path_call(toks, i, "random") => Some(("rand::random".to_owned(), false)),
            "TcpListener" | "UdpSocket" if path_call(toks, i, "bind") => {
                Some((format!("{name}::bind"), true))
            }
            "TcpStream" if path_call(toks, i, "connect") => {
                Some((format!("{name}::connect"), true))
            }
            // Reactor endpoints: an epoll instance, timerfd, or wakeup
            // eventfd is an OS handle with kernel-scheduled readiness,
            // exactly like a socket.
            "Poll" | "TimerFd" | "Waker" if path_call(toks, i, "new") => {
                Some((format!("{name}::new"), true))
            }
            _ => None,
        };
        if let Some((what, socket)) = flagged {
            let message = if socket {
                format!(
                    "OS endpoint acquisition `{what}` in deterministic crate `{}`: a live socket \
                     injects kernel scheduling into results; confine it behind a harness seam and \
                     annotate the site `// lsw::allow(L002): <why real I/O is the point here>`",
                    ctx.class.crate_name
                )
            } else {
                format!(
                    "ambient nondeterminism `{what}` in deterministic crate `{}`: randomness and \
                     time must flow through the counter-keyed substream API (SeedStream) or be \
                     injected by the caller",
                    ctx.class.crate_name
                )
            };
            ctx.flag(diags, RuleId::L002, &toks[i], message);
        }
    }
}

/// True when tokens at `i` form `<ident> :: <method> (`.
fn path_call(toks: &[Token], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(method))
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// Collects `name: f64`/`name: f32` fields declared inside `struct { … }`
/// bodies.
fn float_struct_fields(toks: &[Token]) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("struct") {
            // Find the struct body `{`; tuple structs (`(`) and unit
            // structs (`;`) have no named fields.
            let mut j = i + 1;
            while j < toks.len()
                && !toks[j].is_punct('{')
                && !toks[j].is_punct('(')
                && !toks[j].is_punct(';')
            {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let mut depth = 0usize;
                let mut k = j;
                while k < toks.len() {
                    match &toks[k].kind {
                        TokenKind::Punct('{') => depth += 1,
                        TokenKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenKind::Ident(field)
                            if depth == 1
                                && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                                && toks
                                    .get(k + 2)
                                    .and_then(Token::ident)
                                    .is_some_and(|ty| ty == "f64" || ty == "f32") =>
                        {
                            fields.insert(field.clone());
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k;
            }
        }
        i += 1;
    }
    fields
}

/// L003: float `+=` on fields of merge participants.
fn rule_l003(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = ctx.toks;
    // Only files that define a shard-merge (`fn merge…`) participate.
    let defines_merge = toks.iter().enumerate().any(|(i, t)| {
        t.is_ident("fn")
            && toks
                .get(i + 1)
                .and_then(Token::ident)
                .is_some_and(|n| n.starts_with("merge"))
            && !ctx.in_test(t.line)
    });
    if !defines_merge {
        return;
    }
    let fields = float_struct_fields(toks);
    if fields.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        if toks[i].is_ident("self")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('+'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('='))
        {
            if let Some(field) = toks.get(i + 2).and_then(Token::ident) {
                if fields.contains(field) {
                    ctx.flag(
                        diags,
                        RuleId::L003,
                        &toks[i + 2],
                        format!(
                            "float `+=` on field `{field}` of a shard-merge participant: float \
                             addition is non-associative, so merge order leaks into results; \
                             accumulate in fixed::Fixed (i128 fixed-point) and convert at the edge"
                        ),
                    );
                }
            }
        }
    }
}

/// L004: unordered rayon reductions outside blessed merge modules.
fn rule_l004(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    if ctx.class.blessed_reduction {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let Some(src) = toks[i].ident() else { continue };
        if !PAR_SOURCES.contains(&src) || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Scan the rest of the expression chain for an unordered sink.
        let mut depth = 0i32;
        for j in i + 1..toks.len() {
            match &toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('{') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct('}') | TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => break,
                TokenKind::Ident(m)
                    if depth == 0
                        && PAR_SINKS.contains(&m.as_str())
                        && toks.get(j.wrapping_sub(1)).is_some_and(|t| t.is_punct('.')) =>
                {
                    ctx.flag(
                        diags,
                        RuleId::L004,
                        &toks[j],
                        format!(
                            "unordered rayon reduction `.{m}()` after `.{src}()`: reduction order \
                             is scheduler-dependent; collect per-shard results and combine through \
                             the deterministic k-way merge (blessed modules only)"
                        ),
                    );
                    break;
                }
                _ => {}
            }
        }
    }
}

/// L005: panicking calls in library non-test code.
fn rule_l005(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    if ctx.class.is_bin || L005_EXEMPT_CRATES.contains(&ctx.class.crate_name.as_str()) {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        let hit = match name {
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            }
            "panic" => toks.get(i + 1).is_some_and(|t| t.is_punct('!')),
            _ => false,
        };
        if hit {
            let call = if name == "panic" {
                "panic!".to_owned()
            } else {
                format!(".{name}()")
            };
            ctx.flag(
                diags,
                RuleId::L005,
                &toks[i],
                format!(
                    "`{call}` in library code: propagate a Result, or annotate \
                     `// lsw::allow(L005): <why this cannot fail>`"
                ),
            );
        }
    }
}

/// Allocating conversion methods flagged in ingest-hot files (L006).
const L006_METHODS: &[&str] = &["to_string", "to_owned"];

/// `String::<fn>(` constructors flagged in ingest-hot files (L006).
const L006_STRING_FNS: &[&str] = &["from_utf8_lossy", "from_utf8", "from"];

/// L006: allocating text conversions on the per-record ingest paths.
fn rule_l006(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    if !ctx.class.ingest_hot {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        // `.to_string()` / `.to_owned()`
        if L006_METHODS.contains(&name)
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            ctx.flag(
                diags,
                RuleId::L006,
                &toks[i],
                format!(
                    "`.{name}()` in an ingest hot-path file: per-record allocation; parse from \
                     raw bytes, or annotate `// lsw::allow(L006): <why this is off the per-record \
                     path>`"
                ),
            );
            continue;
        }
        // `String::from_utf8_lossy(` / `String::from_utf8(` / `String::from(`
        if name == "String" {
            for f in L006_STRING_FNS {
                if path_call(toks, i, f) {
                    ctx.flag(
                        diags,
                        RuleId::L006,
                        &toks[i],
                        format!(
                            "`String::{f}` in an ingest hot-path file: per-record allocation; \
                             parse from raw bytes (str::from_utf8 borrows), or annotate \
                             `// lsw::allow(L006): <why this is off the per-record path>`"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// Container types whose growth L009 polices.
const GROWABLE_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "BinaryHeap",
    "String",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
];

/// Growth methods on those containers.
const GROW_METHODS: &[&str] = &[
    "push",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "resize",
    "push_back",
    "push_front",
];

/// Identifier evidence that a capacity check dominates a growth site:
/// a length/capacity probe, or a named bound (`MAX_*`, `*_LIMIT`,
/// `budget`, …) consulted earlier in the same function.
fn is_capacity_guard(name: &str) -> bool {
    if name == "len" || name == "capacity" || name == "is_full" || name == "truncate" {
        return true;
    }
    let lower = name.to_ascii_lowercase();
    ["max", "limit", "budget", "bound", "cap"]
        .iter()
        .any(|p| lower.contains(p))
}

/// L009: growable-container mutation on struct/variant fields in
/// bounded-memory files must be dominated by a capacity check within the
/// same function (or the file must be a blessed bounded container).
fn rule_l009(ctx: &Ctx<'_>, items: &Items, diags: &mut Vec<Diagnostic>) {
    if !ctx.class.bounded_mem || ctx.class.bounded_container {
        return;
    }
    let growable: BTreeSet<&str> = items
        .fields
        .iter()
        .filter(|f| {
            f.type_idents
                .iter()
                .any(|t| GROWABLE_TYPES.contains(&t.as_str()))
        })
        .map(|f| f.name.as_str())
        .collect();
    if growable.is_empty() {
        return;
    }
    let toks = ctx.toks;
    for k in 0..toks.len() {
        let Some(field) = toks[k].ident() else {
            continue;
        };
        if !growable.contains(field)
            || !toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
            || !toks
                .get(k + 2)
                .and_then(Token::ident)
                .is_some_and(|m| GROW_METHODS.contains(&m))
            || !toks.get(k + 3).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let method = toks[k + 2].ident().unwrap_or_default();
        // Find the innermost enclosing fn body and look for guard
        // evidence between its opening brace and this site.
        let encl = items
            .fns
            .iter()
            .filter_map(|f| f.body.filter(|&(a, b)| a < k && k < b))
            .max_by_key(|&(a, _)| a);
        let guarded = encl.is_some_and(|(a, _)| {
            toks[a..k]
                .iter()
                .filter_map(Token::ident)
                .any(is_capacity_guard)
        });
        if !guarded {
            ctx.flag(
                diags,
                RuleId::L009,
                &toks[k + 2],
                format!(
                    "unguarded `.{method}()` on growable field `{field}` in a bounded-memory \
                     file: dominate it with a capacity check (len/capacity against a named \
                     bound), move it to a blessed bounded container, or annotate \
                     `// lsw::allow(L009): <why growth is bounded>`"
                ),
            );
        }
    }
}

/// Narrow cast targets L011 polices on wire paths. `as u64`/`as usize`
/// widenings are exempt by construction.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// L011: lossy `as` casts on wire-protocol/codec paths.
fn rule_l011(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    if !ctx.class.wire_path {
        return;
    }
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        if NARROW_TARGETS.contains(&target) {
            ctx.flag(
                diags,
                RuleId::L011,
                &toks[i],
                format!(
                    "`as {target}` on a wire-protocol/codec path can truncate silently: use \
                     `{target}::try_from(...)` (or `{target}::from` for a provable widening), or \
                     annotate `// lsw::allow(L011): <why truncation is intended/impossible>`"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_class(name: &str) -> FileClass {
        FileClass {
            crate_name: name.to_owned(),
            ..FileClass::default()
        }
    }

    fn rules_fired(class: &FileClass, src: &str) -> Vec<(RuleId, usize)> {
        lint_source(class, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn l005_basic_and_exemptions() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_fired(&lib_class("core"), src), [(RuleId::L005, 1)]);
        // CLI binaries are exempt.
        let bin = FileClass {
            is_bin: true,
            ..lib_class("core")
        };
        assert!(rules_fired(&bin, src).is_empty());
        // unwrap_or_else is not unwrap.
        assert!(rules_fired(&lib_class("core"), "fn f() { x.unwrap_or_else(|| 3); }").is_empty());
    }

    #[test]
    fn l005_skips_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert!(rules_fired(&lib_class("core"), src).is_empty());
    }

    #[test]
    fn allow_comment_requires_reason() {
        let with_reason = "// lsw::allow(L005): infallible by construction\nfn f() { x.unwrap(); }";
        assert!(rules_fired(&lib_class("core"), with_reason).is_empty());
        let without = "// lsw::allow(L005)\nfn f() { x.unwrap(); }";
        assert_eq!(
            rules_fired(&lib_class("core"), without),
            [(RuleId::L005, 2)]
        );
        let trailing = "fn f() { x.unwrap() } // lsw::allow(L005): checked above";
        assert!(rules_fired(&lib_class("core"), trailing).is_empty());
    }

    #[test]
    fn allow_file_waives_whole_file() {
        let src = "// lsw::allow-file(L005): generated code\nfn f() { a.unwrap(); }\nfn g() { b.unwrap(); }";
        assert!(rules_fired(&lib_class("core"), src).is_empty());
    }

    #[test]
    fn doc_comments_never_register_allows() {
        // The same annotation as prose in a doc comment must not waive
        // anything (and under L010 would otherwise read as stale).
        let src = "/// lsw::allow(L005): this is documentation, not an annotation\n\
                   fn f() { x.unwrap(); }";
        assert_eq!(rules_fired(&lib_class("core"), src), [(RuleId::L005, 2)]);
    }

    #[test]
    fn collect_allows_reports_reasons_and_spans() {
        let src = "// lsw::allow(L005): checked by the constructor\nfn f() { x.unwrap(); }\n\
                   // lsw::allow-file(L001): report-order sorted downstream\n";
        let lexed = lex(src);
        let allows = collect_allows(&lexed);
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rule, "L005");
        assert!(!allows[0].file_wide);
        assert_eq!(allows[0].reason, "checked by the constructor");
        assert_eq!(
            &src[allows[0].comment_span.0..allows[0].comment_span.1],
            "// lsw::allow(L005): checked by the constructor"
        );
        assert_eq!(allows[1].rule, "L001");
        assert!(allows[1].file_wide);
        assert_eq!(allows[1].reason, "report-order sorted downstream");
    }

    #[test]
    fn l001_typed_binding_and_for_loop() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                       m.values().copied().collect()\n\
                   }";
        assert_eq!(rules_fired(&lib_class("core"), src), [(RuleId::L001, 3)]);
        let src2 = "fn f() {\n let mut s = HashSet::new();\n for x in &s {\n }\n}";
        assert_eq!(rules_fired(&lib_class("core"), src2), [(RuleId::L001, 3)]);
    }

    #[test]
    fn l001_ignores_btree_and_point_lookup() {
        let src = "fn f(m: &BTreeMap<u32, u32>) { for x in m { } }\n\
                   fn g(h: &HashMap<u32, u32>) -> Option<&u32> { h.get(&3) }";
        assert!(rules_fired(&lib_class("core"), src).is_empty());
    }

    #[test]
    fn l002_scoped_to_deterministic_crates() {
        let src = "fn f() -> u64 { let mut r = thread_rng(); r.next_u64() }";
        assert_eq!(rules_fired(&lib_class("stream"), src), [(RuleId::L002, 1)]);
        // figures crate may time itself.
        assert!(rules_fired(&lib_class("figures"), src).is_empty());
        let time = "fn g() { let t = Instant::now(); }";
        assert_eq!(rules_fired(&lib_class("stats"), time), [(RuleId::L002, 1)]);
    }

    #[test]
    fn l002_flags_socket_acquisition() {
        // A socket is as ambient as a clock: the kernel decides ordering.
        let bind = "fn f() { let l = TcpListener::bind(\"127.0.0.1:0\"); }";
        assert_eq!(rules_fired(&lib_class("replay"), bind), [(RuleId::L002, 1)]);
        let connect = "fn f() { let s = TcpStream::connect(addr)?; }";
        assert_eq!(
            rules_fired(&lib_class("replay"), connect),
            [(RuleId::L002, 1)]
        );
        let udp = "fn f() { let u = UdpSocket::bind(\"127.0.0.1:0\"); }";
        assert_eq!(rules_fired(&lib_class("replay"), udp), [(RuleId::L002, 1)]);
        // Mentioning the type without acquiring an endpoint is fine.
        let passive = "fn f(s: &TcpStream) -> io::Result<()> { s.set_nodelay(true) }";
        assert!(rules_fired(&lib_class("replay"), passive).is_empty());
        // Outside the deterministic crates the rule stays silent.
        assert!(rules_fired(&lib_class("figures"), bind).is_empty());
    }

    #[test]
    fn l002_replay_sites_need_line_scoped_allows() {
        // The replay crate is in scope: clocks and sockets each demand a
        // reasoned, line-scoped annotation…
        let clock = "fn start() -> Instant { Instant::now() }";
        assert_eq!(
            rules_fired(&lib_class("replay"), clock),
            [(RuleId::L002, 1)]
        );
        let allowed = "// lsw::allow(L002): replay pacing is anchored to real time by design\n\
                       fn start() -> Instant { Instant::now() }";
        assert!(rules_fired(&lib_class("replay"), allowed).is_empty());
        let sock = "// lsw::allow(L002): the serving harness binds a real socket by design\n\
                    fn listen() { let l = TcpListener::bind(\"127.0.0.1:0\"); }";
        assert!(rules_fired(&lib_class("replay"), sock).is_empty());
        // …and a reasonless annotation still fires.
        let bare = "// lsw::allow(L002)\nfn listen() { let l = TcpListener::bind(\"x\"); }";
        assert_eq!(rules_fired(&lib_class("replay"), bare), [(RuleId::L002, 2)]);
    }

    #[test]
    fn l003_float_accumulation_in_merge_type() {
        let src = "struct Acc { total: f64, n: u64 }\n\
                   impl Acc {\n\
                       fn merge(&mut self, o: &Acc) {\n\
                           self.total += o.total;\n\
                           self.n += o.n;\n\
                       }\n\
                   }";
        assert_eq!(rules_fired(&lib_class("stream"), src), [(RuleId::L003, 4)]);
    }

    #[test]
    fn l003_requires_merge_context() {
        let src = "struct P { x: f64 }\nimpl P { fn step(&mut self) { self.x += 1.0; } }";
        assert!(rules_fired(&lib_class("stream"), src).is_empty());
    }

    #[test]
    fn l004_unordered_reduction() {
        let src = "fn f(v: &[u64]) -> u64 {\n    v.par_iter().map(|x| x + 1).sum()\n}";
        assert_eq!(rules_fired(&lib_class("core"), src), [(RuleId::L004, 2)]);
        let blessed = FileClass {
            blessed_reduction: true,
            ..lib_class("core")
        };
        assert!(rules_fired(&blessed, src).is_empty());
        // Sequential sum is fine.
        assert!(rules_fired(
            &lib_class("core"),
            "fn f(v: &[u64]) -> u64 { v.iter().sum() }"
        )
        .is_empty());
    }

    #[test]
    fn l006_scoped_to_ingest_hot_files() {
        let src = "fn f(b: &[u8]) -> String { String::from_utf8_lossy(b).to_string() }";
        // Out of scope by default…
        assert!(rules_fired(&lib_class("trace"), src).is_empty());
        // …fires twice (constructor + `.to_string()`) in an ingest-hot file.
        let hot = FileClass {
            ingest_hot: true,
            ..lib_class("trace")
        };
        assert_eq!(
            rules_fired(&hot, src),
            [(RuleId::L006, 1), (RuleId::L006, 1)]
        );
        // Borrowing conversions are fine.
        assert!(rules_fired(&hot, "fn f(b: &[u8]) { let _ = std::str::from_utf8(b); }").is_empty());
        // Cold paths opt out with a reasoned allow.
        let cold = "// lsw::allow(L006): error constructor, cold path\n\
                    fn e(b: &[u8]) -> String { String::from_utf8_lossy(b).into_owned() }";
        assert!(rules_fired(&hot, cold).is_empty());
    }

    #[test]
    fn l009_unguarded_growth_in_bounded_mem_files() {
        let bounded = FileClass {
            bounded_mem: true,
            ..lib_class("stream")
        };
        let bad = "struct Backlog { q: Vec<u8> }\n\
                   impl Backlog {\n\
                       fn add(&mut self, b: u8) {\n\
                           self.q.push(b);\n\
                       }\n\
                   }";
        assert_eq!(rules_fired(&bounded, bad), [(RuleId::L009, 4)]);
        // A capacity check ahead of the growth site dominates it.
        let guarded = "struct Backlog { q: Vec<u8> }\n\
                       impl Backlog {\n\
                           fn add(&mut self, b: u8) {\n\
                               if self.q.len() >= MAX_BACKLOG { return; }\n\
                               self.q.push(b);\n\
                           }\n\
                       }";
        assert!(rules_fired(&bounded, guarded).is_empty());
        // Out of scope without the bounded_mem class.
        assert!(rules_fired(&lib_class("stream"), bad).is_empty());
        // Blessed bounded containers grow by construction.
        let blessed = FileClass {
            bounded_container: true,
            ..bounded.clone()
        };
        assert!(rules_fired(&blessed, bad).is_empty());
        // Enum-variant fields count too (the replay request buffer).
        let variant = "enum ConnState { Request { buf: Vec<u8> } }\n\
                       fn pump(buf: &mut Vec<u8>, s: &[u8]) {\n\
                           buf.extend_from_slice(s);\n\
                       }";
        assert_eq!(rules_fired(&bounded, variant), [(RuleId::L009, 3)]);
    }

    #[test]
    fn l011_narrow_casts_on_wire_paths() {
        let wire = FileClass {
            wire_path: true,
            ..lib_class("trace")
        };
        let bad = "fn len_field(n: usize) -> u32 { n as u32 }";
        assert_eq!(rules_fired(&wire, bad), [(RuleId::L011, 1)]);
        // Widening casts are exempt by construction.
        assert!(rules_fired(&wire, "fn w(b: u8) -> u64 { b as u64 }").is_empty());
        // try_from is the sanctioned spelling.
        assert!(rules_fired(
            &wire,
            "fn t(n: usize) -> u32 { u32::try_from(n).unwrap_or(0) }"
        )
        .iter()
        .all(|&(r, _)| r != RuleId::L011));
        // Out of scope off the wire paths.
        assert!(rules_fired(&lib_class("trace"), bad).is_empty());
        // Reasoned allows are honored.
        let allowed = "// lsw::allow(L011): varint low 7 bits, truncation intended\n\
                       fn v(x: u64) -> u8 { (x as u8) & 0x7f }";
        assert!(rules_fired(&wire, allowed).is_empty());
    }

    #[test]
    fn diagnostics_sorted_by_position() {
        let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }";
        let lines: Vec<usize> = lint_source(&lib_class("core"), src)
            .iter()
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, [1, 2]);
    }
}
