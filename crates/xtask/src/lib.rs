//! `lsw-xtask`: workspace static analysis for the lsw determinism and
//! soundness invariants.
//!
//! Entry point is `cargo xtask lint` (aliased in `.cargo/config.toml`).
//! The pass walks every first-party crate's `src/` tree, tokenizes each
//! file with the scanner in [`lexer`], and applies the six project
//! rules in [`rules`] (L001–L006). See `DESIGN.md` §10 for the rule
//! catalog and rationale.

pub mod lexer;
pub mod rules;
pub mod workspace;

use rules::{Diagnostic, RuleId};
use std::path::Path;

/// A diagnostic bound to the file it was found in.
#[derive(Debug, Clone)]
pub struct FileDiagnostic {
    /// Workspace-relative path.
    pub path: String,
    pub diag: Diagnostic,
}

/// Outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    pub findings: Vec<FileDiagnostic>,
    /// Number of files scanned.
    pub scanned: usize,
}

impl LintReport {
    /// True when no rule fired.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report, one `path:line:col` row per
    /// finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {} {}\n",
                f.path,
                f.diag.line,
                f.diag.col,
                f.diag.rule.id(),
                f.diag.message
            ));
        }
        let files: std::collections::BTreeSet<&str> =
            self.findings.iter().map(|f| f.path.as_str()).collect();
        out.push_str(&format!(
            "lsw-xtask lint: {} violation(s) in {} file(s); {} file(s) scanned\n",
            self.findings.len(),
            files.len(),
            self.scanned
        ));
        out
    }

    /// Renders the machine-readable report. Hand-rolled JSON keeps the
    /// tool free of serializer dependencies; field order and array order
    /// are deterministic (findings are sorted by path, then position).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
                f.diag.rule.id(),
                json_escape(&f.path),
                f.diag.line,
                f.diag.col,
                json_escape(&f.diag.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"total\": {},\n  \"files_scanned\": {}\n}}\n",
            self.findings.len(),
            self.scanned
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Options for a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Lint only files changed relative to `diff_base` (plus untracked).
    pub diff_only: bool,
    /// Git rev to diff against; defaults to `HEAD`.
    pub diff_base: Option<String>,
    /// Explicit file list (workspace-relative); overrides discovery.
    pub paths: Vec<String>,
}

/// Runs the full lint pass over the workspace rooted at `root`.
pub fn run_lint(root: &Path, opts: &LintOptions) -> Result<LintReport, String> {
    // Explicit paths are linted verbatim — the caller named them, so the
    // default "first-party src only" scope filter does not apply (a missing
    // path is an error, not a silent zero-file scan).
    let files = if !opts.paths.is_empty() {
        let mut files = Vec::new();
        for p in &opts.paths {
            let abs = root.join(p);
            if !abs.is_file() {
                return Err(format!("no such file: {p}"));
            }
            files.push(workspace::LintFile {
                class: workspace::classify(p),
                rel_path: p.clone(),
                abs_path: abs,
            });
        }
        files
    } else {
        workspace::workspace_files(root).map_err(|e| format!("walking crates/: {e}"))?
    };
    let mut files = files;
    if opts.paths.is_empty() && opts.diff_only {
        let base = opts.diff_base.as_deref().unwrap_or("HEAD");
        let changed = workspace::changed_files(root, base)?;
        let changed: std::collections::BTreeSet<String> = changed.into_iter().collect();
        files.retain(|f| changed.contains(&f.rel_path));
    }

    let mut report = LintReport {
        scanned: files.len(),
        ..LintReport::default()
    };
    for file in &files {
        let src = std::fs::read_to_string(&file.abs_path)
            .map_err(|e| format!("reading {}: {e}", file.rel_path))?;
        for diag in rules::lint_source(&file.class, &src) {
            report.findings.push(FileDiagnostic {
                path: file.rel_path.clone(),
                diag,
            });
        }
    }
    Ok(report)
}

/// Renders the `--list-rules` catalog.
pub fn render_rules() -> String {
    let mut out = String::new();
    for rule in RuleId::all() {
        out.push_str(&format!("{}  {}\n", rule.id(), rule.summary()));
    }
    out
}
