//! `lsw-xtask`: workspace static analysis for the lsw determinism and
//! soundness invariants.
//!
//! Entry point is `cargo xtask lint` (aliased in `.cargo/config.toml`).
//! The pass walks every first-party crate's `src/` tree, tokenizes each
//! file with the scanner in [`lexer`], extracts brace-matched items with
//! [`items`], applies the per-file rules in [`rules`] (L001–L006, L009,
//! L011), and runs the interprocedural rules in [`graph`] (L007 lock
//! order, L008 blocking-call reachability) over the whole file set at
//! once. Allow-comment bookkeeping lives here: [`analyze_sources`]
//! counts which `lsw::allow` annotations actually suppress something,
//! reports the stale ones as L010, surfaces the used ones as auditable
//! exemptions in `--json`/SARIF, and plans the `--fix` edits that strip
//! stale annotations. See `DESIGN.md` §10 and §14 for the rule catalog.

pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod workspace;

use rules::{Diagnostic, FileClass, RuleId};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One input file: classified source text, not yet lexed.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel_path: String,
    pub class: FileClass,
    pub src: String,
}

/// A fully lexed and item-extracted file, the unit the interprocedural
/// rules in [`graph`] consume.
#[derive(Debug)]
pub struct AnalyzedFile {
    pub rel_path: String,
    pub class: FileClass,
    pub src: String,
    pub lexed: lexer::Lexed,
    pub items: items::Items,
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
}

/// A diagnostic bound to the file it was found in.
#[derive(Debug, Clone)]
pub struct FileDiagnostic {
    /// Workspace-relative path.
    pub path: String,
    pub diag: Diagnostic,
}

/// A finding waived by an in-source allow (kept for SARIF suppressions).
#[derive(Debug, Clone)]
pub struct WaivedDiagnostic {
    pub path: String,
    pub diag: Diagnostic,
    /// The reason text of the allow that waived it.
    pub reason: String,
}

/// One *used* allow annotation, surfaced so JSON/SARIF consumers can
/// audit every exemption in force.
#[derive(Debug, Clone)]
pub struct Exemption {
    /// The waived rule's id string (`"L005"`).
    pub rule: &'static str,
    pub path: String,
    /// 1-based line of the carrying comment.
    pub line: usize,
    pub file_wide: bool,
    pub reason: String,
}

/// Planned `--fix` edit: byte spans to delete from one file, each a
/// stale allow comment (expanded to the whole line when nothing else is
/// on it). Spans are disjoint and sorted ascending.
#[derive(Debug, Clone)]
pub struct FileFix {
    pub path: String,
    pub spans: Vec<(usize, usize)>,
}

/// Outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    pub findings: Vec<FileDiagnostic>,
    /// Findings waived by in-source allows (for SARIF suppressions).
    pub waived: Vec<WaivedDiagnostic>,
    /// Every allow annotation that suppressed at least one finding.
    pub exemptions: Vec<Exemption>,
    /// Planned removals of stale allow comments, for `--fix`.
    pub fixes: Vec<FileFix>,
    /// Number of files scanned.
    pub scanned: usize,
}

impl LintReport {
    /// True when no rule fired.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report, one `path:line:col` row per
    /// finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {} {}\n",
                f.path,
                f.diag.line,
                f.diag.col,
                f.diag.rule.id(),
                f.diag.message
            ));
        }
        let files: BTreeSet<&str> = self.findings.iter().map(|f| f.path.as_str()).collect();
        out.push_str(&format!(
            "lsw-xtask lint: {} violation(s) in {} file(s); {} file(s) scanned; \
             {} finding(s) waived by {} exemption(s)\n",
            self.findings.len(),
            files.len(),
            self.scanned,
            self.waived.len(),
            self.exemptions.len()
        ));
        out
    }

    /// Renders the machine-readable report. Hand-rolled JSON keeps the
    /// tool free of serializer dependencies; field order and array order
    /// are deterministic (findings sorted by path then position,
    /// exemptions likewise).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}{}\n",
                f.diag.rule.id(),
                json_escape(&f.path),
                f.diag.line,
                f.diag.col,
                json_escape(&f.diag.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"exemptions\": [\n");
        for (i, e) in self.exemptions.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"file_wide\": {}, \"reason\": \"{}\"}}{}\n",
                e.rule,
                json_escape(&e.path),
                e.line,
                e.file_wide,
                json_escape(&e.reason),
                if i + 1 == self.exemptions.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"total\": {},\n  \"waived\": {},\n  \"files_scanned\": {}\n}}\n",
            self.findings.len(),
            self.waived.len(),
            self.scanned
        ));
        out
    }

    /// Renders the SARIF 2.1.0 report (see [`sarif`]).
    pub fn render_sarif(&self) -> String {
        sarif::render(self)
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs the whole analysis pipeline over an in-memory file set:
/// per-file rules, interprocedural rules, allow accounting, stale-allow
/// detection (L010), exemption surfacing, and `--fix` planning.
///
/// This is the engine behind [`run_lint`]; tests drive it directly with
/// synthetic files. Note the interprocedural rules see only the files
/// given: under `--diff-only` or explicit paths, reachability and lock
/// closures under-approximate (documented in `DESIGN.md` §14) — CI runs
/// the full set.
pub fn analyze_sources(sources: &[SourceFile]) -> LintReport {
    let analyzed: Vec<AnalyzedFile> = sources
        .iter()
        .map(|s| {
            let lexed = lexer::lex(&s.src);
            let items = items::extract(&lexed.tokens);
            let test_spans = rules::test_spans(&lexed.tokens);
            AnalyzedFile {
                rel_path: s.rel_path.clone(),
                class: s.class.clone(),
                src: s.src.clone(),
                lexed,
                items,
                test_spans,
            }
        })
        .collect();
    let allows: Vec<Vec<rules::Allow>> = analyzed
        .iter()
        .map(|f| rules::collect_allows(&f.lexed))
        .collect();

    // Phase 1: raw diagnostics — per-file rules plus the call-graph rules.
    let mut raw: Vec<(usize, Diagnostic)> = Vec::new();
    for (fi, f) in analyzed.iter().enumerate() {
        for d in rules::file_rules(&f.class, &f.lexed, &f.items) {
            raw.push((fi, d));
        }
    }
    raw.extend(graph::graph_rules(&analyzed));

    // Phase 2: allow filtering with usage accounting.
    let mut used: Vec<Vec<bool>> = allows.iter().map(|a| vec![false; a.len()]).collect();
    let mut report = LintReport {
        scanned: analyzed.len(),
        ..LintReport::default()
    };
    for (fi, d) in raw {
        let mut reason = None;
        for (ai, a) in allows[fi].iter().enumerate() {
            if a.covers(d.rule, d.line) {
                used[fi][ai] = true;
                reason.get_or_insert_with(|| a.reason.clone());
            }
        }
        match reason {
            Some(reason) => report.waived.push(WaivedDiagnostic {
                path: analyzed[fi].rel_path.clone(),
                diag: d,
                reason,
            }),
            None => report.findings.push(FileDiagnostic {
                path: analyzed[fi].rel_path.clone(),
                diag: d,
            }),
        }
    }

    // Phase 3: L010 — allows that suppressed nothing are themselves
    // findings. Test-code allows are skipped (test code is rule-exempt,
    // so its allows are definitionally unused), and `allow(L010)`
    // annotations are excluded from generation so a stale one cannot
    // suppress the report of its own staleness.
    let mut stale: Vec<(usize, usize)> = Vec::new();
    for (fi, f) in analyzed.iter().enumerate() {
        for (ai, a) in allows[fi].iter().enumerate() {
            if used[fi][ai] || a.rule == RuleId::L010.id() {
                continue;
            }
            if f.test_spans
                .iter()
                .any(|&(x, y)| x <= a.line && a.line <= y)
            {
                continue;
            }
            let d = Diagnostic {
                rule: RuleId::L010,
                line: a.line,
                col: a.col,
                message: format!(
                    "stale `lsw::allow{}({})` — it suppresses no finding; delete it or run \
                     `cargo xtask lint --fix`",
                    if a.file_wide { "-file" } else { "" },
                    a.rule
                ),
            };
            let mut reason = None;
            for (aj, other) in allows[fi].iter().enumerate() {
                if other.covers(RuleId::L010, d.line) {
                    used[fi][aj] = true;
                    reason.get_or_insert_with(|| other.reason.clone());
                }
            }
            match reason {
                Some(reason) => report.waived.push(WaivedDiagnostic {
                    path: f.rel_path.clone(),
                    diag: d,
                    reason,
                }),
                None => {
                    report.findings.push(FileDiagnostic {
                        path: f.rel_path.clone(),
                        diag: d,
                    });
                    stale.push((fi, ai));
                }
            }
        }
    }

    // Phase 4: exemptions — every allow that earned its keep.
    for (fi, f) in analyzed.iter().enumerate() {
        for (ai, a) in allows[fi].iter().enumerate() {
            if used[fi][ai] {
                report.exemptions.push(Exemption {
                    rule: a.rule,
                    path: f.rel_path.clone(),
                    line: a.line,
                    file_wide: a.file_wide,
                    reason: a.reason.clone(),
                });
            }
        }
    }

    // Phase 5: `--fix` planning. A comment is removed only when every
    // allow it carries is unused (one comment can carry several), and at
    // least one of them was reported stale; the span grows to the whole
    // line when nothing but whitespace surrounds the comment.
    let stale_set: BTreeSet<(usize, usize)> = stale.into_iter().collect();
    for (fi, f) in analyzed.iter().enumerate() {
        let mut by_comment: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (ai, a) in allows[fi].iter().enumerate() {
            by_comment.entry(a.comment_span).or_default().push(ai);
        }
        let mut spans = Vec::new();
        for (span, ais) in by_comment {
            let any_stale = ais.iter().any(|&ai| stale_set.contains(&(fi, ai)));
            let all_unused = ais.iter().all(|&ai| !used[fi][ai]);
            if any_stale && all_unused {
                spans.push(expand_fix_span(&f.src, span));
            }
        }
        if !spans.is_empty() {
            spans.sort_unstable();
            report.fixes.push(FileFix {
                path: f.rel_path.clone(),
                spans,
            });
        }
    }

    report.findings.sort_by(|a, b| {
        (&a.path, a.diag.line, a.diag.col, a.diag.rule).cmp(&(
            &b.path,
            b.diag.line,
            b.diag.col,
            b.diag.rule,
        ))
    });
    report
        .exemptions
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Expands a comment's byte span for deletion: the whole line (newline
/// included) when only whitespace surrounds it, otherwise the comment
/// plus the run of spaces before it (so `code(); // lsw::allow…` loses
/// its trailing blob cleanly).
fn expand_fix_span(src: &str, (start, end): (usize, usize)) -> (usize, usize) {
    let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[end..].find('\n').map_or(src.len(), |i| end + i + 1);
    let prefix_blank = src[line_start..start]
        .bytes()
        .all(|b| b == b' ' || b == b'\t');
    let suffix_blank = src[end..line_end]
        .bytes()
        .all(|b| b == b' ' || b == b'\t' || b == b'\n');
    if prefix_blank && suffix_blank {
        return (line_start, line_end);
    }
    let mut s = start;
    while s > line_start && matches!(src.as_bytes()[s - 1], b' ' | b'\t') {
        s -= 1;
    }
    (s, end)
}

/// Applies the report's planned `--fix` edits under `root`, deleting
/// stale allow comments bottom-up so earlier spans stay valid. Returns
/// the number of files rewritten. Idempotent: a second run plans no
/// edits because the stale comments are gone.
pub fn apply_fixes(root: &Path, report: &LintReport) -> Result<usize, String> {
    for fix in &report.fixes {
        let abs = root.join(&fix.path);
        let mut src =
            std::fs::read_to_string(&abs).map_err(|e| format!("reading {}: {e}", fix.path))?;
        for &(start, end) in fix.spans.iter().rev() {
            if end <= src.len() {
                src.replace_range(start..end, "");
            }
        }
        std::fs::write(&abs, src).map_err(|e| format!("writing {}: {e}", fix.path))?;
    }
    Ok(report.fixes.len())
}

/// Options for a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Lint only files changed relative to `diff_base` (plus untracked).
    pub diff_only: bool,
    /// Git rev to diff against; defaults to `HEAD`.
    pub diff_base: Option<String>,
    /// Explicit file list (workspace-relative); overrides discovery.
    pub paths: Vec<String>,
}

/// Runs the full lint pass over the workspace rooted at `root`.
pub fn run_lint(root: &Path, opts: &LintOptions) -> Result<LintReport, String> {
    // Explicit paths are linted verbatim — the caller named them, so the
    // default "first-party src only" scope filter does not apply (a missing
    // path is an error, not a silent zero-file scan).
    let files = if !opts.paths.is_empty() {
        let mut files = Vec::new();
        for p in &opts.paths {
            let abs = root.join(p);
            if !abs.is_file() {
                return Err(format!("no such file: {p}"));
            }
            files.push(workspace::LintFile {
                class: workspace::classify(p),
                rel_path: p.clone(),
                abs_path: abs,
            });
        }
        files
    } else {
        workspace::workspace_files(root).map_err(|e| format!("walking crates/: {e}"))?
    };
    let mut files = files;
    if opts.paths.is_empty() && opts.diff_only {
        let base = opts.diff_base.as_deref().unwrap_or("HEAD");
        let changed = workspace::changed_files(root, base)?;
        let changed: BTreeSet<String> = changed.into_iter().collect();
        files.retain(|f| changed.contains(&f.rel_path));
    }

    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(&file.abs_path)
            .map_err(|e| format!("reading {}: {e}", file.rel_path))?;
        sources.push(SourceFile {
            rel_path: file.rel_path.clone(),
            class: file.class.clone(),
            src,
        });
    }
    Ok(analyze_sources(&sources))
}

/// Renders the `--list-rules` catalog.
pub fn render_rules() -> String {
    let mut out = String::new();
    for rule in RuleId::all() {
        out.push_str(&format!("{}  {}\n", rule.id(), rule.summary()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile {
            rel_path: path.to_owned(),
            class: FileClass {
                crate_name: krate.to_owned(),
                ..FileClass::default()
            },
            src: src.to_owned(),
        }
    }

    #[test]
    fn used_allow_becomes_exemption_not_finding() {
        let r = analyze_sources(&[file(
            "crates/core/src/a.rs",
            "core",
            "// lsw::allow(L005): infallible by construction\nfn f() { x.unwrap(); }\n",
        )]);
        assert!(r.clean(), "{:?}", r.findings);
        assert_eq!(r.waived.len(), 1);
        assert_eq!(r.exemptions.len(), 1);
        assert_eq!(r.exemptions[0].rule, "L005");
        assert_eq!(r.exemptions[0].reason, "infallible by construction");
        assert!(!r.exemptions[0].file_wide);
        assert!(r.fixes.is_empty());
    }

    #[test]
    fn stale_allow_is_l010_and_fixable() {
        let src = "// lsw::allow(L005): nothing here actually unwraps\nfn f() -> u8 { 3 }\n";
        let r = analyze_sources(&[file("crates/core/src/a.rs", "core", src)]);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].diag.rule, RuleId::L010);
        assert_eq!(r.findings[0].diag.line, 1);
        assert!(r.exemptions.is_empty());
        // The fix removes the whole line.
        assert_eq!(r.fixes.len(), 1);
        let (s, e) = r.fixes[0].spans[0];
        let fixed = format!("{}{}", &src[..s], &src[e..]);
        assert_eq!(fixed, "fn f() -> u8 { 3 }\n");
        // Idempotence: the fixed source plans no further edits.
        let r2 = analyze_sources(&[file("crates/core/src/a.rs", "core", &fixed)]);
        assert!(r2.clean() && r2.fixes.is_empty());
    }

    #[test]
    fn trailing_stale_allow_strips_comment_only() {
        let src = "fn f() -> u8 { 3 } // lsw::allow(L005): stale tail\n";
        let r = analyze_sources(&[file("crates/core/src/a.rs", "core", src)]);
        assert_eq!(r.fixes.len(), 1);
        let (s, e) = r.fixes[0].spans[0];
        let fixed = format!("{}{}", &src[..s], &src[e..]);
        assert_eq!(fixed, "fn f() -> u8 { 3 }\n");
    }

    #[test]
    fn stale_allows_in_test_code_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    // lsw::allow(L005): test-side\n    \
                   #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let r = analyze_sources(&[file("crates/core/src/a.rs", "core", src)]);
        assert!(r.clean(), "{:?}", r.findings);
        assert!(r.fixes.is_empty());
    }

    #[test]
    fn json_includes_exemptions() {
        let r = analyze_sources(&[file(
            "crates/core/src/a.rs",
            "core",
            "// lsw::allow-file(L005): generated shim\nfn f() { x.unwrap(); }\n",
        )]);
        let json = r.render_json();
        assert!(json.contains("\"exemptions\""));
        assert!(json.contains("\"rule\": \"L005\""));
        assert!(json.contains("\"file_wide\": true"));
        assert!(json.contains("\"reason\": \"generated shim\""));
    }

    #[test]
    fn allow_of_l010_waives_staleness() {
        // An allow kept for documentation value can itself be allowed.
        let src = "// lsw::allow(L010): kept while the feature is gated off\n\
                   // lsw::allow(L005): gated unwrap returns next PR\n\
                   fn f() -> u8 { 3 }\n";
        let r = analyze_sources(&[file("crates/core/src/a.rs", "core", src)]);
        assert!(r.clean(), "{:?}", r.findings);
        assert!(
            r.fixes.is_empty(),
            "waived staleness must not be fixed away"
        );
    }
}
