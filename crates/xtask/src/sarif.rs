//! SARIF 2.1.0 rendering of a lint report.
//!
//! SARIF (Static Analysis Results Interchange Format) is the common
//! ingestion format for code-scanning UIs; emitting it alongside the
//! project JSON lets CI annotate PR diffs without a translation shim.
//! Hand-rolled like `render_json`: the schema subset used here is tiny
//! (one run, one driver, physical locations, in-source suppressions)
//! and a serializer dependency is not available offline.
//!
//! Findings waived by `lsw::allow` annotations are included as results
//! carrying a `suppressions` entry with `kind: "inSource"` and the
//! allow's reason as `justification` — the audit trail mirrors the
//! `exemptions` array of the JSON output. Active findings carry an
//! empty `suppressions` array so consumers distinguish "checked and
//! live" from "not evaluated".

use crate::rules::RuleId;
use crate::{json_escape, FileDiagnostic, LintReport, WaivedDiagnostic};

/// Renders the report as a single-run SARIF 2.1.0 document with
/// deterministic field and array order.
pub fn render(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"lsw-xtask\",\n");
    out.push_str("          \"rules\": [\n");
    let rules = RuleId::all();
    for (i, rule) in rules.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            rule.id(),
            json_escape(rule.summary()),
            if i + 1 == rules.len() { "" } else { "," }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let total = report.findings.len() + report.waived.len();
    let mut emitted = 0usize;
    for f in &report.findings {
        emitted += 1;
        out.push_str(&result(f, None, emitted == total));
    }
    for w in &report.waived {
        emitted += 1;
        let f = FileDiagnostic {
            path: w.path.clone(),
            diag: w.diag.clone(),
        };
        out.push_str(&result(&f, Some(w), emitted == total));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn result(f: &FileDiagnostic, waived: Option<&WaivedDiagnostic>, last: bool) -> String {
    let suppressions = match waived {
        Some(w) => format!(
            "[{{\"kind\": \"inSource\", \"justification\": \"{}\"}}]",
            json_escape(&w.reason)
        ),
        None => "[]".to_owned(),
    };
    format!(
        "        {{\"ruleId\": \"{}\", \"level\": \"error\", \
         \"message\": {{\"text\": \"{}\"}}, \
         \"locations\": [{{\"physicalLocation\": {{\
         \"artifactLocation\": {{\"uri\": \"{}\"}}, \
         \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}], \
         \"suppressions\": {}}}{}\n",
        f.diag.rule.id(),
        json_escape(&f.diag.message),
        json_escape(&f.path),
        f.diag.line,
        f.diag.col,
        suppressions,
        if last { "" } else { "," }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileClass;
    use crate::{analyze_sources, SourceFile};

    fn run(src: &str) -> String {
        render(&analyze_sources(&[SourceFile {
            rel_path: "crates/core/src/a.rs".to_owned(),
            class: FileClass {
                crate_name: "core".to_owned(),
                ..FileClass::default()
            },
            src: src.to_owned(),
        }]))
    }

    #[test]
    fn active_finding_has_empty_suppressions() {
        let sarif = run("fn f() { x.unwrap(); }\n");
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"L005\""));
        assert!(sarif.contains("\"startLine\": 1"));
        assert!(sarif.contains("\"suppressions\": []"));
    }

    #[test]
    fn waived_finding_carries_justification() {
        let sarif = run("// lsw::allow(L005): infallible here\nfn f() { x.unwrap(); }\n");
        assert!(sarif.contains("\"kind\": \"inSource\""));
        assert!(sarif.contains("\"justification\": \"infallible here\""));
    }

    #[test]
    fn rule_catalog_is_complete() {
        let sarif = run("fn f() -> u8 { 3 }\n");
        for rule in RuleId::all() {
            assert!(sarif.contains(&format!("\"id\": \"{}\"", rule.id())));
        }
    }
}
