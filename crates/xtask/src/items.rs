//! Brace-matched item extraction on top of the token stream: function
//! definitions (with their `impl` owner and body token range) and named
//! struct fields (with their type tokens).
//!
//! This is the structural layer the interprocedural rules build on. It
//! is resolutely token-level — no expression parsing — so it tolerates
//! arbitrary (even non-compiling) input: the proptests feed it lexed
//! garbage and it must never panic and never report an out-of-bounds
//! span. Constructs it cannot make sense of are simply skipped; the
//! rules stay quiet rather than guess.

use crate::lexer::Token;

/// One `fn` definition (or trait-method declaration).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The surrounding `impl` type name, if any (`impl Foo` → `Foo`,
    /// `impl Trait for Foo` → `Foo`).
    pub owner: Option<String>,
    /// Token-index range of the body, inclusive of both braces
    /// (`toks[body.0]` is `{`, `toks[body.1]` is the matching `}`).
    /// `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the name token.
    pub line: usize,
    /// 1-based byte column of the name token.
    pub col: usize,
    /// Byte span of the name identifier in the source.
    pub name_span: (usize, usize),
}

/// One named field of a `struct { … }` body.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// The declaring struct's name.
    pub owner: String,
    /// The field name.
    pub name: String,
    /// Identifier tokens of the field's type, in order (`Arc<Mutex<T>>`
    /// → `["Arc", "Mutex", "T"]`).
    pub type_idents: Vec<String>,
    /// 1-based line of the field name.
    pub line: usize,
}

/// Everything the extractor found in one file.
#[derive(Debug, Clone, Default)]
pub struct Items {
    pub fns: Vec<FnItem>,
    pub fields: Vec<FieldItem>,
}

/// Keywords that look like callees or owners but never are.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Extracts functions and struct fields from a token stream.
pub fn extract(toks: &[Token]) -> Items {
    let mut items = Items::default();
    // Stack of `(brace_depth_of_body, owner)` for open `impl` blocks.
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    // An `impl` header seen but its `{` not yet consumed.
    let mut pending_impl: Option<String> = None;
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            crate::lexer::TokenKind::Punct('{') => {
                depth += 1;
                if let Some(owner) = pending_impl.take() {
                    impl_stack.push((depth, owner));
                }
            }
            crate::lexer::TokenKind::Punct('}') => {
                if impl_stack.last().is_some_and(|&(d, _)| d == depth) {
                    impl_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            crate::lexer::TokenKind::Punct(';') => {
                // `impl Foo;` never parses, but a stray `;` before the body
                // cancels a pending impl rather than binding it to the next
                // unrelated block.
                pending_impl = None;
            }
            crate::lexer::TokenKind::Ident(w) if w == "impl" => {
                pending_impl = impl_owner(toks, i);
            }
            crate::lexer::TokenKind::Ident(w) if w == "fn" => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if let Some(name) = name_tok.ident() {
                        if !is_keyword(name) {
                            let body = fn_body_range(toks, i + 2);
                            items.fns.push(FnItem {
                                name: name.to_owned(),
                                owner: impl_stack.last().map(|(_, o)| o.clone()),
                                body,
                                line: name_tok.line,
                                col: name_tok.col,
                                name_span: (name_tok.start, name_tok.end),
                            });
                        }
                    }
                }
            }
            crate::lexer::TokenKind::Ident(w) if w == "struct" => {
                collect_struct_fields(toks, i, &mut items.fields);
            }
            crate::lexer::TokenKind::Ident(w) if w == "enum" => {
                collect_enum_fields(toks, i, &mut items.fields);
            }
            _ => {}
        }
        i += 1;
    }
    items
}

/// Resolves the owner type of an `impl` header starting at token `i`
/// (the `impl` keyword): `impl<T> Foo<T>` → `Foo`, `impl Trait for Foo`
/// → `Foo`. Returns `None` for headers it cannot make sense of (e.g.
/// `impl Trait for &[u8]`).
fn impl_owner(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut first_type: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < toks.len() {
        match &toks[j].kind {
            crate::lexer::TokenKind::Punct('{') if angle <= 0 => break,
            crate::lexer::TokenKind::Punct(';') => break,
            crate::lexer::TokenKind::Punct('<') => angle += 1,
            crate::lexer::TokenKind::Punct('>') => angle -= 1,
            crate::lexer::TokenKind::Ident(w) if w == "for" && angle <= 0 => saw_for = true,
            crate::lexer::TokenKind::Ident(w) if w == "where" && angle <= 0 => break,
            crate::lexer::TokenKind::Ident(w) if angle <= 0 && !is_keyword(w) => {
                // Path segments (`mod::Type`) overwrite so the last
                // segment before generics wins.
                if saw_for {
                    if after_for.is_none()
                        || toks.get(j.wrapping_sub(1)).is_some_and(|t| t.is_punct(':'))
                    {
                        after_for = Some(w.clone());
                    }
                } else if first_type.is_none()
                    || toks.get(j.wrapping_sub(1)).is_some_and(|t| t.is_punct(':'))
                {
                    first_type = Some(w.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    after_for.or(first_type)
}

/// From just past `fn <name>`, finds the `{ … }` body and returns its
/// inclusive token-index range. Returns `None` when the header ends in
/// `;` (trait declaration) or the input runs out.
fn fn_body_range(toks: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    let mut angle = 0i32;
    let mut nest = 0i32;
    // Scan the header: generics may contain `{` only inside const-generic
    // braces, which we conservatively treat as the body start (rare, and
    // an over-wide body only over-approximates reachability). A `;` ends
    // the header only outside parens/brackets — array types in parameter
    // or return position (`[T; N]`) carry their own semicolons.
    while j < toks.len() {
        match &toks[j].kind {
            crate::lexer::TokenKind::Punct('<') => angle += 1,
            crate::lexer::TokenKind::Punct('>') => angle -= 1,
            crate::lexer::TokenKind::Punct('(') | crate::lexer::TokenKind::Punct('[') => nest += 1,
            crate::lexer::TokenKind::Punct(')') | crate::lexer::TokenKind::Punct(']') => nest -= 1,
            crate::lexer::TokenKind::Punct(';') if angle <= 0 && nest <= 0 => return None,
            crate::lexer::TokenKind::Punct('{') => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let open = j;
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match &t.kind {
            crate::lexer::TokenKind::Punct('{') => depth += 1,
            crate::lexer::TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
    }
    Some((open, toks.len() - 1))
}

/// True when the token at `k` sits where a field *name* can start: after
/// the opening brace, a comma, the `]` of an attribute, `pub`, or the
/// `)` of `pub(crate)`. Filters out identifiers inside attribute bodies
/// (`#[serde(rename: …)]`) that would otherwise look like fields.
fn field_position(toks: &[Token], k: usize) -> bool {
    let Some(prev) = k.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    prev.is_punct('{')
        || prev.is_punct(',')
        || prev.is_punct(']')
        || prev.is_punct(')')
        || prev.is_ident("pub")
}

/// Collects `name: Type` fields from a `struct Name { … }` declaration
/// starting at token `i` (the `struct` keyword).
fn collect_struct_fields(toks: &[Token], i: usize, out: &mut Vec<FieldItem>) {
    let Some(struct_name) = toks.get(i + 1).and_then(Token::ident) else {
        return;
    };
    if is_keyword(struct_name) {
        return;
    }
    // Find the body `{`; tuple structs (`(`) and unit structs (`;`) have
    // no named fields. Generics may appear before the brace.
    let mut j = i + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            crate::lexer::TokenKind::Punct('<') => angle += 1,
            crate::lexer::TokenKind::Punct('>') => angle -= 1,
            crate::lexer::TokenKind::Punct('(') | crate::lexer::TokenKind::Punct(';')
                if angle <= 0 =>
            {
                return;
            }
            crate::lexer::TokenKind::Punct('{') => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return;
    }
    let mut depth = 0usize;
    let mut k = j;
    while k < toks.len() {
        match &toks[k].kind {
            crate::lexer::TokenKind::Punct('{') => depth += 1,
            crate::lexer::TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
            crate::lexer::TokenKind::Ident(field)
                if depth == 1
                    && !is_keyword(field)
                    && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                    && field_position(toks, k) =>
            {
                // Collect the type's identifier tokens until the `,` or
                // `}` that ends the field at this nesting level.
                let mut type_idents = Vec::new();
                let mut m = k + 2;
                let mut inner = 0i32;
                while m < toks.len() {
                    match &toks[m].kind {
                        crate::lexer::TokenKind::Punct('<')
                        | crate::lexer::TokenKind::Punct('(')
                        | crate::lexer::TokenKind::Punct('[') => inner += 1,
                        crate::lexer::TokenKind::Punct('>')
                        | crate::lexer::TokenKind::Punct(')')
                        | crate::lexer::TokenKind::Punct(']') => inner -= 1,
                        crate::lexer::TokenKind::Punct(',') if inner <= 0 => break,
                        crate::lexer::TokenKind::Punct('}') if inner <= 0 => break,
                        crate::lexer::TokenKind::Ident(t) => type_idents.push(t.clone()),
                        _ => {}
                    }
                    m += 1;
                }
                out.push(FieldItem {
                    owner: struct_name.to_owned(),
                    name: field.clone(),
                    type_idents,
                    line: toks[k].line,
                });
                k = m;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
}

/// Collects `name: Type` fields of struct-like enum variants
/// (`enum E { V { name: Type } }`). Variant fields live at brace depth 2
/// of the enum body; the owner recorded is the enum name.
fn collect_enum_fields(toks: &[Token], i: usize, out: &mut Vec<FieldItem>) {
    let Some(enum_name) = toks.get(i + 1).and_then(Token::ident) else {
        return;
    };
    if is_keyword(enum_name) {
        return;
    }
    let mut j = i + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            crate::lexer::TokenKind::Punct('<') => angle += 1,
            crate::lexer::TokenKind::Punct('>') => angle -= 1,
            crate::lexer::TokenKind::Punct(';') if angle <= 0 => return,
            crate::lexer::TokenKind::Punct('{') => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return;
    }
    let mut depth = 0usize;
    let mut paren = 0i32;
    let mut k = j;
    while k < toks.len() {
        match &toks[k].kind {
            crate::lexer::TokenKind::Punct('{') => depth += 1,
            crate::lexer::TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
            crate::lexer::TokenKind::Punct('(') | crate::lexer::TokenKind::Punct('[') => paren += 1,
            crate::lexer::TokenKind::Punct(')') | crate::lexer::TokenKind::Punct(']') => paren -= 1,
            crate::lexer::TokenKind::Ident(field)
                if depth == 2
                    && paren <= 0
                    && !is_keyword(field)
                    && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                    && field_position(toks, k) =>
            {
                let mut type_idents = Vec::new();
                let mut m = k + 2;
                let mut inner = 0i32;
                while m < toks.len() {
                    match &toks[m].kind {
                        crate::lexer::TokenKind::Punct('<')
                        | crate::lexer::TokenKind::Punct('(')
                        | crate::lexer::TokenKind::Punct('[') => inner += 1,
                        crate::lexer::TokenKind::Punct('>')
                        | crate::lexer::TokenKind::Punct(')')
                        | crate::lexer::TokenKind::Punct(']') => inner -= 1,
                        crate::lexer::TokenKind::Punct(',') if inner <= 0 => break,
                        crate::lexer::TokenKind::Punct('}') if inner <= 0 => break,
                        crate::lexer::TokenKind::Ident(t) => type_idents.push(t.clone()),
                        _ => {}
                    }
                    m += 1;
                }
                out.push(FieldItem {
                    owner: enum_name.to_owned(),
                    name: field.clone(),
                    type_idents,
                    line: toks[k].line,
                });
                k = m;
                continue;
            }
            _ => {}
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Items {
        extract(&lex(src).tokens)
    }

    #[test]
    fn free_and_method_fns() {
        let src = "fn top() {}\n\
                   struct S { x: u8 }\n\
                   impl S { fn m(&self) -> u8 { self.x } }\n\
                   impl Clone for S { fn clone(&self) -> S { S { x: self.x } } }";
        let it = items(src);
        let names: Vec<(String, Option<String>)> = it
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            [
                ("top".into(), None),
                ("m".into(), Some("S".into())),
                ("clone".into(), Some("S".into())),
            ]
        );
    }

    #[test]
    fn body_ranges_are_brace_matched() {
        let src = "fn f() { if x { y() } }\nfn g() {}";
        let it = items(src);
        let toks = lex(src).tokens;
        for f in &it.fns {
            let (a, b) = f.body.expect("both fns have bodies");
            assert!(toks[a].is_punct('{') && toks[b].is_punct('}'));
        }
    }

    #[test]
    fn trait_decls_have_no_body() {
        let it = items("trait T { fn req(&self); fn has(&self) {} }");
        assert_eq!(it.fns.len(), 2);
        assert!(it.fns[0].body.is_none());
        assert!(it.fns[1].body.is_some());
    }

    #[test]
    fn struct_fields_with_types() {
        let src = "struct Shared { admission: Mutex<MediaServer>, tap: Arc<Mutex<Tap>>, n: u64 }";
        let it = items(src);
        let fields: Vec<(&str, &[String])> = it
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.type_idents.as_slice()))
            .collect();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].0, "admission");
        assert!(fields[0].1.contains(&"Mutex".to_owned()));
        assert!(fields[1].1.contains(&"Mutex".to_owned()));
        assert_eq!(fields[2].1, ["u64".to_owned()]);
    }

    #[test]
    fn tuple_and_unit_structs_yield_no_fields() {
        assert!(items("struct P(u8, u8);\nstruct U;").fields.is_empty());
    }

    #[test]
    fn enum_variant_fields() {
        let src = "enum ConnState { Request { buf: Vec<u8> }, Streaming(Box<S>), Idle }";
        let it = items(src);
        assert_eq!(it.fields.len(), 1);
        assert_eq!(it.fields[0].owner, "ConnState");
        assert_eq!(it.fields[0].name, "buf");
        assert!(it.fields[0].type_idents.contains(&"Vec".to_owned()));
    }

    #[test]
    fn generic_impl_owner() {
        let it = items("impl<T: Ord> Heap<T> { fn pop(&mut self) {} }");
        assert_eq!(it.fns[0].owner.as_deref(), Some("Heap"));
    }

    #[test]
    fn name_spans_slice_to_names() {
        let src = "fn alpha() {} impl B { fn beta(&self) {} }";
        for f in items(src).fns {
            assert_eq!(&src[f.name_span.0..f.name_span.1], f.name);
        }
    }

    #[test]
    fn array_type_semicolons_do_not_end_the_header() {
        // `[T; N]` in parameter or return position must not read as a
        // bodiless trait declaration.
        let src = "fn f(s: &mut [u8; 32]) -> [u8; 4] { body() }\nfn g();";
        let it = items(src);
        assert_eq!(it.fns.len(), 2);
        assert!(it.fns[0].body.is_some());
        assert!(it.fns[1].body.is_none());
    }
}
