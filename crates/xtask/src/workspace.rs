//! Workspace file discovery, classification, and the `--diff-only`
//! changed-file filter.

use crate::rules::FileClass;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Modules blessed to use unordered reductions: the deterministic k-way
/// merge implementations themselves (they establish the order everyone
/// else must preserve).
const BLESSED_REDUCTION_FILES: &[&str] = &["crates/stream/src/coord.rs"];

/// Per-record ingest hot paths, where L006 forbids allocating text
/// conversions: the wms byte scanner, the ltc block codec, and the
/// streaming ingest loop.
const INGEST_HOT_FILES: &[&str] = &["crates/trace/src/wms.rs", "crates/stream/src/ingest.rs"];

/// Directory prefixes whose every file is an ingest hot path.
const INGEST_HOT_DIRS: &[&str] = &["crates/trace/src/ltc/"];

/// Crates whose non-bin sources participate in the L007 lock-order
/// graph and seed the L008 reachability walk: the multithreaded replay
/// harness, the shard-parallel streaming pipeline, and the relay
/// overlay.
const LOCK_SCOPE_CRATES: &[&str] = &["replay", "stream", "edge"];

/// Files under the bounded-memory contract (L009): streaming ingest
/// state, the replay backlog/driver/metrics, and the shard coordinator.
const BOUNDED_MEM_FILES: &[&str] = &[
    "crates/replay/src/server.rs",
    "crates/replay/src/driver.rs",
    "crates/replay/src/metrics.rs",
    "crates/replay/src/payload.rs",
    "crates/replay/src/slab.rs",
    "crates/replay/src/wheel.rs",
    "crates/stream/src/ingest.rs",
    "crates/stream/src/coord.rs",
    "crates/edge/src/ring.rs",
    "crates/edge/src/relay.rs",
];

/// Blessed bounded containers: growth bounded by construction (the
/// fixed-k reservoir/top-k structures), so L009 stays silent inside.
const BOUNDED_CONTAINER_FILES: &[&str] = &["crates/stream/src/sample.rs"];

/// Wire-format/codec files where L011 polices lossy `as` casts.
const WIRE_PATH_FILES: &[&str] = &["crates/replay/src/proto.rs", "crates/trace/src/wms.rs"];

/// Directory prefixes whose every file is a wire path (the ltc codec).
const WIRE_PATH_DIRS: &[&str] = &["crates/trace/src/ltc/"];

/// Locates the workspace root: the directory two levels above this
/// crate's manifest (`crates/xtask` → repo root).
pub fn workspace_root() -> PathBuf {
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// One file selected for linting.
#[derive(Debug, Clone)]
pub struct LintFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    pub class: FileClass,
}

/// Classifies a workspace-relative path (`crates/<name>/src/…`).
pub fn classify(rel_path: &str) -> FileClass {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or_default()
        .to_owned();
    let is_bin = rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs");
    let blessed_reduction = BLESSED_REDUCTION_FILES.contains(&rel_path)
        || rel_path
            .rsplit('/')
            .next()
            .is_some_and(|f| f.contains("merge"));
    let ingest_hot = INGEST_HOT_FILES.contains(&rel_path)
        || INGEST_HOT_DIRS.iter().any(|d| rel_path.starts_with(d));
    let lock_scope = !is_bin && LOCK_SCOPE_CRATES.contains(&crate_name.as_str());
    let bounded_mem = BOUNDED_MEM_FILES.contains(&rel_path);
    let bounded_container = BOUNDED_CONTAINER_FILES.contains(&rel_path);
    let wire_path = WIRE_PATH_FILES.contains(&rel_path)
        || WIRE_PATH_DIRS.iter().any(|d| rel_path.starts_with(d));
    FileClass {
        crate_name,
        is_bin,
        blessed_reduction,
        ingest_hot,
        lock_scope,
        bounded_mem,
        bounded_container,
        wire_path,
    }
}

/// True for paths the linter covers at all: first-party crate sources,
/// excluding each crate's own `tests/` and `benches/` trees (test code is
/// exempt) and the vendored stand-ins.
pub fn in_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.ends_with(".rs") && rel_path.contains("/src/")
}

/// Collects every in-scope `.rs` file under `root`, sorted by path so
/// output order is stable.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<LintFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut stack = vec![crates_dir];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue, // e.g. crates/ missing in a partial checkout
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = rel_to(root, &path);
                if in_scope(&rel) {
                    out.push(LintFile {
                        class: classify(&rel),
                        rel_path: rel,
                        abs_path: path,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn rel_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Returns the set of files changed relative to `base` (a git rev;
/// defaults to `HEAD`), plus untracked files. Used by `--diff-only` so CI
/// can lint just a PR's delta.
pub fn changed_files(root: &Path, base: &str) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    let diff = git(root, &["diff", "--name-only", base])?;
    files.extend(diff.lines().map(str::to_owned));
    let status = git(root, &["status", "--porcelain"])?;
    for line in status.lines() {
        if let Some(path) = line.strip_prefix("?? ") {
            files.push(path.trim().to_owned());
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn git(root: &Path, args: &[&str]) -> Result<String, String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()
        .map_err(|e| format!("failed to run git: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git {} failed: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let c = classify("crates/stream/src/hll.rs");
        assert_eq!(c.crate_name, "stream");
        assert!(!c.is_bin);
        assert!(!c.blessed_reduction);

        assert!(classify("crates/lsw/src/bin/lsw.rs").is_bin);
        assert!(classify("crates/xtask/src/main.rs").is_bin);
        assert!(classify("crates/stream/src/coord.rs").blessed_reduction);
        assert!(classify("crates/core/src/kway_merge.rs").blessed_reduction);

        assert!(classify("crates/trace/src/wms.rs").ingest_hot);
        assert!(classify("crates/trace/src/ltc/codec.rs").ingest_hot);
        assert!(classify("crates/stream/src/ingest.rs").ingest_hot);
        assert!(!classify("crates/stream/src/hll.rs").ingest_hot);

        // Interprocedural scopes.
        assert!(classify("crates/replay/src/server.rs").lock_scope);
        assert!(classify("crates/stream/src/coord.rs").lock_scope);
        assert!(classify("crates/edge/src/relay.rs").lock_scope);
        assert!(!classify("crates/replay/src/bin/lsw-replay.rs").lock_scope);
        assert!(!classify("crates/core/src/session.rs").lock_scope);

        assert!(classify("crates/replay/src/server.rs").bounded_mem);
        assert!(classify("crates/replay/src/payload.rs").bounded_mem);
        assert!(classify("crates/replay/src/slab.rs").bounded_mem);
        assert!(classify("crates/replay/src/wheel.rs").bounded_mem);
        assert!(classify("crates/stream/src/ingest.rs").bounded_mem);
        assert!(classify("crates/edge/src/ring.rs").bounded_mem);
        assert!(!classify("crates/stream/src/hll.rs").bounded_mem);
        assert!(classify("crates/stream/src/sample.rs").bounded_container);

        assert!(classify("crates/replay/src/proto.rs").wire_path);
        assert!(classify("crates/trace/src/ltc/codec.rs").wire_path);
        assert!(classify("crates/trace/src/wms.rs").wire_path);
        assert!(!classify("crates/replay/src/server.rs").wire_path);
    }

    #[test]
    fn scope_excludes_tests_and_vendor() {
        assert!(in_scope("crates/stream/src/hll.rs"));
        assert!(!in_scope("crates/stream/tests/accuracy.rs"));
        assert!(!in_scope("vendor/rand/src/lib.rs"));
        assert!(!in_scope("tests/tests/stream_accuracy.rs"));
        assert!(!in_scope("crates/stream/src/data.txt"));
    }

    #[test]
    fn workspace_root_exists() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists());
    }
}
