//! CLI for the workspace static-analysis pass: `cargo xtask lint`.

use xtask::{apply_fixes, render_rules, run_lint, workspace, LintOptions};

const USAGE: &str = "\
Usage: cargo xtask <command> [options]

Commands:
  lint          Run the lsw static-analysis rules (L001-L011) over the
                workspace's first-party crates.
  rules         List the rules with one-line summaries.

Lint options:
  --json            Emit machine-readable JSON instead of text.
  --sarif           Emit a SARIF 2.1.0 document instead of text.
  --fix             Delete stale allow comments (L010 findings) in place,
                    then report what remains. Idempotent.
  --diff-only       Lint only files changed vs. --base (default HEAD),
                    plus untracked files. Intended for CI on PR deltas.
                    Note: the interprocedural rules (L007/L008) see only
                    the selected files and under-approximate there.
  --base <rev>      Git rev for --diff-only (e.g. origin/main).
  [paths…]          Explicit workspace-relative files to lint.

Exit status: 0 clean, 1 violations found, 2 usage or I/O error.";

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    match command.as_str() {
        "rules" | "--list-rules" => {
            print!("{}", render_rules());
            0
        }
        "lint" => lint(&args[1..]),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            0
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            2
        }
    }
}

fn lint(args: &[String]) -> i32 {
    let mut opts = LintOptions::default();
    let mut json = false;
    let mut sarif = false;
    let mut fix = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--fix" => fix = true,
            "--diff-only" => opts.diff_only = true,
            "--base" => match it.next() {
                Some(rev) => opts.diff_base = Some(rev.clone()),
                None => {
                    eprintln!("--base requires a git rev");
                    return 2;
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown lint option `{flag}`\n\n{USAGE}");
                return 2;
            }
            path => opts.paths.push(path.replace('\\', "/")),
        }
    }
    let root = workspace::workspace_root();
    let mut report = match run_lint(&root, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("lsw-xtask lint: {e}");
            return 2;
        }
    };
    if fix && !report.fixes.is_empty() {
        let fixed = match apply_fixes(&root, &report) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("lsw-xtask lint --fix: {e}");
                return 2;
            }
        };
        eprintln!("lsw-xtask lint --fix: rewrote {fixed} file(s)");
        // Re-lint so the printed report reflects the fixed tree.
        report = match run_lint(&root, &opts) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("lsw-xtask lint: {e}");
                return 2;
            }
        };
    }
    if sarif {
        print!("{}", report.render_sarif());
    } else if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    i32::from(!report.clean())
}
