//! The intra-workspace call graph and the interprocedural rules that
//! consume it: L007 (lock-order cycles) and L008 (blocking calls
//! reachable from the replay worker-shard poll loop).
//!
//! ## Name resolution model (and its limits)
//!
//! The graph is built from tokens, not types. Resolution is therefore
//! name-based and deliberately conservative:
//!
//! * Bare calls `f(…)` resolve to free functions named `f` in the same
//!   crate.
//! * Method calls `x.m(…)` resolve to *every* function named `m` in the
//!   same crate (any `impl` owner) — unless `m` is on the common-method
//!   stoplist (`clone`, `len`, `push`, …), which would otherwise wire
//!   the graph to the standard library's vocabulary and drown it in
//!   false edges.
//! * Qualified calls `Type::f(…)` / `module::f(…)` resolve exactly by
//!   `(owner, name)` when such an item exists, falling back to
//!   same-crate free functions named `f`.
//! * Cross-crate edges exist only for paths rooted at a known crate
//!   alias (`lsw_stream::…`, `lsw_sim::…`, `crate::…`).
//!
//! Unresolvable calls produce no edge: reachability (L008) and lock
//! closures (L007) under-approximate across trait objects and
//! cross-crate method calls. That trade-off is documented in
//! `DESIGN.md` §14; the locks this workspace actually uses are all
//! acquired through same-crate helpers, which the model does cover.

use crate::items::is_keyword;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Diagnostic, RuleId};
use crate::AnalyzedFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names too generic to resolve by name alone: edges through
/// them would mostly point at the standard library's vocabulary.
const METHOD_STOPLIST: &[&str] = &[
    "abs",
    "and_then",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "chain",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "count",
    "drain",
    "drop",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "extend_from_slice",
    "fetch_add",
    "fetch_sub",
    "filter",
    "find",
    "first",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "ok",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powf",
    "powi",
    "push",
    "push_back",
    "push_front",
    "read",
    "read_to_end",
    "recv",
    "remove",
    "replace",
    "resize",
    "retain",
    "rev",
    "round",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "sqrt",
    "starts_with",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_from",
    "try_into",
    "try_lock",
    "try_recv",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "write",
    "zip",
];

/// Crate-path aliases for cross-crate edges: lib name → crate dir name.
fn crate_alias(seg: &str, current: &str) -> Option<String> {
    match seg {
        "crate" | "self" | "super" => Some(current.to_owned()),
        "lsw_core" => Some("core".to_owned()),
        "lsw_stream" => Some("stream".to_owned()),
        "lsw_trace" => Some("trace".to_owned()),
        "lsw_stats" => Some("stats".to_owned()),
        "lsw_sim" => Some("simulator".to_owned()),
        "lsw_analysis" => Some("analysis".to_owned()),
        "lsw_topology" => Some("topology".to_owned()),
        "lsw_replay" => Some("replay".to_owned()),
        "lsw_edge" => Some("edge".to_owned()),
        _ => None,
    }
}

/// Functions treated as thread entry points for the L008 nonblocking
/// contract: the replay reactor shard, the legacy tick-plane worker,
/// the load driver's event loop, and the edge relay's reactor.
const L008_ENTRY_FNS: &[&str] = &["reactor_loop", "tick_worker_loop", "drive", "relay_loop"];

/// A lock identity: `(crate, field name)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LockId {
    krate: String,
    name: String,
}

/// One lock acquisition site inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    lock: LockId,
    /// Token index of the lock field identifier.
    tok: usize,
    /// Token index (inclusive) until which the lock is considered held:
    /// end of statement for temporaries, end of enclosing block (or
    /// `drop(guard)`) for `let`-bound guards.
    held_end: usize,
    /// `lock` / `read` / `write`.
    method: String,
}

/// One blocking primitive inside a function body (for L008).
#[derive(Debug, Clone)]
struct Blocking {
    what: String,
    tok: usize,
}

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
struct CallSite {
    tok: usize,
    targets: Vec<usize>,
}

/// Per-function analysis record.
#[derive(Debug, Clone)]
struct FnInfo {
    file: usize,
    name: String,
    body: Option<(usize, usize)>,
    calls: Vec<CallSite>,
    acqs: Vec<Acq>,
    blocking: Vec<Blocking>,
}

/// Runs the interprocedural rules over the analyzed files and returns
/// `(file index, diagnostic)` pairs, unfiltered by allows (the caller
/// owns suppression accounting).
pub fn graph_rules(files: &[AnalyzedFile]) -> Vec<(usize, Diagnostic)> {
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut by_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut by_owner: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for item in &file.items.fns {
            let id = fns.len();
            let krate = file.class.crate_name.clone();
            by_name
                .entry((krate.clone(), item.name.clone()))
                .or_default()
                .push(id);
            if let Some(owner) = &item.owner {
                by_owner
                    .entry((krate.clone(), owner.clone(), item.name.clone()))
                    .or_default()
                    .push(id);
            } else {
                free_by_name
                    .entry((krate, item.name.clone()))
                    .or_default()
                    .push(id);
            }
            fns.push(FnInfo {
                file: fi,
                name: item.name.clone(),
                body: item.body,
                calls: Vec::new(),
                acqs: Vec::new(),
                blocking: Vec::new(),
            });
        }
    }

    // Lock vocabulary: Mutex/RwLock struct fields declared in lock-scope
    // files, keyed by crate.
    let mut locks_by_crate: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        if !file.class.lock_scope {
            continue;
        }
        for field in &file.items.fields {
            if field
                .type_idents
                .iter()
                .any(|t| t == "Mutex" || t == "RwLock")
            {
                locks_by_crate
                    .entry(file.class.crate_name.clone())
                    .or_default()
                    .insert(field.name.clone());
            }
        }
    }

    // Populate per-fn calls, acquisitions, and blocking primitives.
    for id in 0..fns.len() {
        let file = &files[fns[id].file];
        let Some((a, b)) = fns[id].body else { continue };
        let toks = &file.lexed.tokens;
        let krate = &file.class.crate_name;
        let empty = BTreeSet::new();
        let lock_names = if file.class.lock_scope {
            locks_by_crate.get(krate).unwrap_or(&empty)
        } else {
            &empty
        };
        let mut calls = Vec::new();
        let mut acqs = Vec::new();
        let mut blocking = Vec::new();
        for k in a + 1..b {
            let Some(name) = toks[k].ident() else {
                continue;
            };
            if !toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                // Lock acquisition shape: `<lock> . lock|read|write (`.
                if lock_names.contains(name)
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
                    && toks
                        .get(k + 2)
                        .and_then(Token::ident)
                        .is_some_and(|m| m == "lock" || m == "read" || m == "write")
                    && toks.get(k + 3).is_some_and(|t| t.is_punct('('))
                {
                    let method = toks[k + 2].ident().unwrap_or_default().to_owned();
                    acqs.push(Acq {
                        lock: LockId {
                            krate: krate.clone(),
                            name: name.to_owned(),
                        },
                        tok: k,
                        held_end: held_range_end(toks, k, b),
                        method,
                    });
                }
                continue;
            }
            // From here on, `name (` — a call or definition.
            let prev = k.checked_sub(1).map(|p| &toks[p]);
            if prev.is_some_and(|t| t.is_ident("fn")) || is_keyword(name) {
                continue;
            }
            if prev.is_some_and(|t| t.is_punct('.')) {
                // Method call.
                if name == "sleep" {
                    // `.sleep(` has no std receiver we use; ignore.
                } else if name == "read_to_end" {
                    blocking.push(Blocking {
                        what: "`.read_to_end()` (unbounded blocking read)".to_owned(),
                        tok: k,
                    });
                } else if name == "recv" {
                    blocking.push(Blocking {
                        what: "unbounded `.recv()` (blocks until a sender acts)".to_owned(),
                        tok: k,
                    });
                } else if name == "poll" {
                    blocking.push(Blocking {
                        what: "`.poll()` (blocking readiness wait)".to_owned(),
                        tok: k,
                    });
                }
                if METHOD_STOPLIST.contains(&name) {
                    continue;
                }
                if let Some(t) = by_name.get(&(krate.clone(), name.to_owned())) {
                    calls.push(CallSite {
                        tok: k,
                        targets: t.clone(),
                    });
                }
                continue;
            }
            if prev.is_some_and(|t| t.is_punct(':'))
                && k >= 2
                && toks[k - 2].is_punct(':')
                && k >= 3
                && toks[k - 3].ident().is_some()
            {
                // Qualified call: walk the path segments back.
                let mut segs = vec![name.to_owned()];
                let mut j = k;
                while j >= 3
                    && toks[j - 1].is_punct(':')
                    && toks[j - 2].is_punct(':')
                    && toks[j - 3].ident().is_some()
                {
                    segs.insert(0, toks[j - 3].ident().unwrap_or_default().to_owned());
                    j -= 3;
                }
                if name == "sleep" && segs.iter().any(|s| s == "thread") {
                    blocking.push(Blocking {
                        what: "`thread::sleep` (hard wall-clock block)".to_owned(),
                        tok: k,
                    });
                }
                let (target_crate, local) = match crate_alias(&segs[0], krate) {
                    Some(c) => (c, &segs[1..]),
                    None => (krate.clone(), &segs[..]),
                };
                let Some(callee) = local.last() else { continue };
                let mut targets: Vec<usize> = Vec::new();
                if local.len() >= 2 {
                    let owner = &local[local.len() - 2];
                    if let Some(t) =
                        by_owner.get(&(target_crate.clone(), owner.clone(), callee.clone()))
                    {
                        targets = t.clone();
                    }
                }
                if targets.is_empty() {
                    if let Some(t) = free_by_name.get(&(target_crate, callee.clone())) {
                        targets = t.clone();
                    }
                }
                if !targets.is_empty() {
                    calls.push(CallSite { tok: k, targets });
                }
                continue;
            }
            // Bare call: free functions only; uppercase initials are
            // tuple-struct/variant constructors, not calls.
            if name.starts_with(|c: char| c.is_ascii_uppercase()) || METHOD_STOPLIST.contains(&name)
            {
                continue;
            }
            if let Some(t) = free_by_name.get(&(krate.clone(), name.to_owned())) {
                calls.push(CallSite {
                    tok: k,
                    targets: t.clone(),
                });
            }
        }
        fns[id].calls = calls;
        fns[id].acqs = acqs;
        fns[id].blocking = blocking;
    }

    // Acquisition closure: every lock a function may take directly or
    // through (resolved) callees. Fixpoint over the call edges.
    let mut closure: Vec<BTreeSet<LockId>> = fns
        .iter()
        .map(|f| f.acqs.iter().map(|a| a.lock.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..fns.len() {
            let mut add: BTreeSet<LockId> = BTreeSet::new();
            for call in &fns[id].calls {
                for &t in &call.targets {
                    for l in &closure[t] {
                        if !closure[id].contains(l) {
                            add.insert(l.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                closure[id].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut diags = Vec::new();
    l007_lock_order(files, &fns, &closure, &mut diags);
    l008_blocking_reachability(files, &fns, &mut diags);
    diags
}

/// True when the site's line falls inside one of the file's test spans.
fn in_test(file: &AnalyzedFile, line: usize) -> bool {
    file.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
}

/// Computes the token index until which an acquisition at `k` holds its
/// lock: `let guard = x.lock();` chains hold to the enclosing block's
/// close (or an explicit `drop(guard)`); everything else is a temporary
/// held to the end of its statement.
fn held_range_end(toks: &[Token], k: usize, body_end: usize) -> usize {
    let stmt = stmt_end(toks, k, body_end);
    let Some((guard, let_idx)) = guard_binding(toks, k, stmt) else {
        return stmt;
    };
    // Guard: held until the enclosing block closes or the guard is
    // dropped explicitly.
    let mut depth = 0i32;
    let mut j = let_idx;
    while j <= body_end {
        match &toks[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            TokenKind::Ident(w)
                if w == "drop"
                    && j > stmt
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(j + 2).is_some_and(|t| t.is_ident(&guard)) =>
            {
                return j;
            }
            _ => {}
        }
        j += 1;
    }
    body_end
}

/// Finds the first `;` that terminates the statement containing token
/// `k` (accounting for brackets opened after `k`; a close that drops
/// below the starting level also ends the statement).
fn stmt_end(toks: &[Token], k: usize, body_end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = k;
    while j <= body_end {
        match &toks[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            TokenKind::Punct(';') if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    body_end
}

/// Recognizes `let [mut] <name> = … x.lock()…;` where the lock call is
/// the *end* of the chain (modulo `.unwrap()` / `.expect(…)`): such a
/// binding is a held guard. A lock call feeding further method calls
/// (`.lock().stats().clone()`) produces a temporary instead, dropped at
/// the statement's end — distinguishing the two is what keeps the
/// workspace's `lock-stats-then-log` sequences from reading as
/// self-deadlocks.
fn guard_binding(toks: &[Token], k: usize, stmt: usize) -> Option<(String, usize)> {
    // Chain-end check: after the lock call's closing paren, only
    // `.unwrap()`/`.expect(…)` may follow before the `;`.
    let open = k + 3; // `(` of `.lock(`
    let mut close = open;
    let mut depth = 0i32;
    while close <= stmt {
        match &toks[close].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        close += 1;
    }
    let mut j = close + 1;
    while j < stmt {
        if toks[j].is_punct('.')
            && toks
                .get(j + 1)
                .and_then(Token::ident)
                .is_some_and(|m| m == "unwrap" || m == "expect")
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            // Skip the call's parens.
            let mut d = 0i32;
            let mut m = j + 2;
            while m < stmt {
                match &toks[m].kind {
                    TokenKind::Punct('(') => d += 1,
                    TokenKind::Punct(')') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            j = m + 1;
        } else {
            return None;
        }
    }
    // Binding check: walk back over the receiver chain to a `let`.
    let mut j = k;
    while j > 0 {
        let t = &toks[j - 1];
        let chainable = t.is_punct('.')
            || t.is_punct('&')
            || t.is_punct('*')
            || matches!(&t.kind, TokenKind::Ident(w) if w != "let");
        if chainable {
            j -= 1;
        } else {
            break;
        }
    }
    if j == 0 || !toks[j - 1].is_punct('=') {
        return None;
    }
    let name_idx = (j - 1).checked_sub(1)?;
    let name = toks[name_idx].ident()?.to_owned();
    let mut l = name_idx;
    if l > 0 && toks[l - 1].is_ident("mut") {
        l -= 1;
    }
    if l > 0 && toks[l - 1].is_ident("let") {
        return Some((name, l - 1));
    }
    None
}

/// L007: build the lock acquisition-order graph and flag cycles.
fn l007_lock_order(
    files: &[AnalyzedFile],
    fns: &[FnInfo],
    closure: &[BTreeSet<LockId>],
    diags: &mut Vec<(usize, Diagnostic)>,
) {
    // Edge (A → B): lock B acquired (directly or via a callee) while A
    // is held. Keep the lexicographically smallest witness site per edge.
    #[derive(Debug, Clone)]
    struct Witness {
        file: usize,
        line: usize,
        col: usize,
        holder_fn: String,
        via: Option<String>,
    }
    let mut edges: BTreeMap<(LockId, LockId), Witness> = BTreeMap::new();
    let record =
        |edges: &mut BTreeMap<(LockId, LockId), Witness>, a: &LockId, b: &LockId, w: Witness| {
            if a == b {
                return;
            }
            let key = (a.clone(), b.clone());
            match edges.get(&key) {
                Some(old) if (old.file, old.line, old.col) <= (w.file, w.line, w.col) => {}
                _ => {
                    edges.insert(key, w);
                }
            }
        };
    for f in fns {
        let file = &files[f.file];
        let toks = &file.lexed.tokens;
        for acq in &f.acqs {
            if in_test(file, toks[acq.tok].line) {
                continue;
            }
            // Direct nested acquisitions inside the held range.
            for other in &f.acqs {
                if other.tok > acq.tok && other.tok <= acq.held_end {
                    record(
                        &mut edges,
                        &acq.lock,
                        &other.lock,
                        Witness {
                            file: f.file,
                            line: toks[other.tok].line,
                            col: toks[other.tok].col,
                            holder_fn: f.name.clone(),
                            via: None,
                        },
                    );
                }
            }
            // Acquisitions via calls inside the held range.
            for call in &f.calls {
                if call.tok > acq.tok && call.tok <= acq.held_end {
                    for &t in &call.targets {
                        for l in &closure[t] {
                            record(
                                &mut edges,
                                &acq.lock,
                                l,
                                Witness {
                                    file: f.file,
                                    line: toks[call.tok].line,
                                    col: toks[call.tok].col,
                                    holder_fn: f.name.clone(),
                                    via: Some(fns[t].name.clone()),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    // Reachability over the lock graph; an edge (a, b) participates in a
    // cycle iff b reaches a.
    let mut adj: BTreeMap<&LockId, BTreeSet<&LockId>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().insert(b);
    }
    let reaches = |from: &LockId, to: &LockId| -> bool {
        let mut seen: BTreeSet<&LockId> = BTreeSet::new();
        let mut q: VecDeque<&LockId> = VecDeque::new();
        q.push_back(from);
        while let Some(n) = q.pop_front() {
            if n == to {
                return true;
            }
            if let Some(next) = adj.get(n) {
                for m in next {
                    if seen.insert(m) {
                        q.push_back(m);
                    }
                }
            }
        }
        false
    };
    // Group cyclic edges by their strongly connected lock set and report
    // one diagnostic per cycle, at the smallest witness site.
    type CycleEdges<'a> = Vec<(&'a (LockId, LockId), &'a Witness)>;
    let mut cycles: BTreeMap<BTreeSet<LockId>, CycleEdges> = BTreeMap::new();
    for (key, w) in &edges {
        let (a, b) = key;
        if reaches(b, a) {
            let mut scc = BTreeSet::new();
            scc.insert(a.clone());
            scc.insert(b.clone());
            // Close the set over mutual reachability so a 3-lock cycle
            // groups as one report, not three.
            for other in adj.keys() {
                if reaches(a, other) && reaches(other, a) {
                    scc.insert((*other).clone());
                }
            }
            cycles.entry(scc).or_default().push((key, w));
        }
    }
    for (scc, mut witnesses) in cycles {
        witnesses.sort_by_key(|(_, w)| (w.file, w.line, w.col));
        let ((a, b), w) = witnesses[0];
        let names: Vec<String> = scc.iter().map(|l| format!("`{}`", l.name)).collect();
        let via = w
            .via
            .as_ref()
            .map(|v| format!(" via `{v}()`"))
            .unwrap_or_default();
        diags.push((
            w.file,
            Diagnostic {
                rule: RuleId::L007,
                line: w.line,
                col: w.col,
                message: format!(
                    "lock-order cycle among {}: `{}` is acquired{via} in `{}()` while `{}` is \
                     held, and the reverse order exists elsewhere — two threads interleaving \
                     these paths deadlock; acquire in one global order or annotate \
                     `// lsw::allow(L007): <why this interleaving is impossible>`",
                    names.join(" → "),
                    b.name,
                    w.holder_fn,
                    a.name
                ),
            },
        ));
    }
}

/// L008: blocking primitives reachable from the worker-shard poll loop.
fn l008_blocking_reachability(
    files: &[AnalyzedFile],
    fns: &[FnInfo],
    diags: &mut Vec<(usize, Diagnostic)>,
) {
    // Entry points: the data-plane loop definitions (`L008_ENTRY_FNS`)
    // in lock-scope files.
    let entries: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            L008_ENTRY_FNS.contains(&f.name.as_str()) && files[f.file].class.lock_scope
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return;
    }
    // BFS with parent tracking, for call-path diagnostics.
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen: BTreeSet<usize> = entries.iter().copied().collect();
    let mut q: VecDeque<usize> = entries.iter().copied().collect();
    while let Some(n) = q.pop_front() {
        for call in &fns[n].calls {
            for &t in &call.targets {
                if seen.insert(t) {
                    parent.insert(t, n);
                    q.push_back(t);
                }
            }
        }
    }
    let path_to = |mut n: usize| -> String {
        let mut names = vec![fns[n].name.clone()];
        while let Some(&p) = parent.get(&n) {
            names.push(fns[p].name.clone());
            n = p;
        }
        names.reverse();
        names.join(" → ")
    };
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut sites: Vec<(usize, usize, String)> = Vec::new(); // (fn, tok, what)
    for &n in &seen {
        for b in &fns[n].blocking {
            sites.push((n, b.tok, b.what.clone()));
        }
        for a in &fns[n].acqs {
            sites.push((
                n,
                a.tok,
                format!("blocking `.{}()` wait on lock `{}`", a.method, a.lock.name),
            ));
        }
    }
    sites.sort_by_key(|&(n, tok, _)| (fns[n].file, tok));
    for (n, tok, what) in sites {
        let f = &fns[n];
        let file = &files[f.file];
        let t = &file.lexed.tokens[tok];
        if in_test(file, t.line) || !reported.insert((f.file, tok)) {
            continue;
        }
        diags.push((
            f.file,
            Diagnostic {
                rule: RuleId::L008,
                line: t.line,
                col: t.col,
                message: format!(
                    "{what} is reachable from the worker-shard poll loop ({}): a stalled shard \
                     starves every connection it owns; make the wait bounded/non-blocking or \
                     annotate `// lsw::allow(L008): <why this wait is bounded>`",
                    path_to(n)
                ),
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileClass;
    use crate::{analyze_sources, SourceFile};

    fn lock_file(path: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile {
            rel_path: path.to_owned(),
            class: FileClass {
                crate_name: krate.to_owned(),
                lock_scope: true,
                ..FileClass::default()
            },
            src: src.to_owned(),
        }
    }

    fn rules_fired(files: &[SourceFile]) -> Vec<(String, RuleId, usize)> {
        analyze_sources(files)
            .findings
            .iter()
            .map(|f| (f.path.clone(), f.diag.rule, f.diag.line))
            .collect()
    }

    #[test]
    fn l007_flags_a_two_lock_cycle() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                       fn fwd(&self) {\n\
                           let g = self.a.lock();\n\
                           self.b.lock().checked_add(1);\n\
                       }\n\
                       fn rev(&self) {\n\
                           let g = self.b.lock();\n\
                           self.a.lock().checked_add(1);\n\
                       }\n\
                   }";
        let fired = rules_fired(&[lock_file("crates/replay/src/x.rs", "replay", src)]);
        assert!(
            fired.iter().any(|(_, r, _)| *r == RuleId::L007),
            "expected an L007 cycle, got {fired:?}"
        );
    }

    #[test]
    fn l007_consistent_order_is_clean() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                       fn one(&self) {\n\
                           let g = self.a.lock();\n\
                           self.b.lock().checked_add(1);\n\
                       }\n\
                       fn two(&self) {\n\
                           let g = self.a.lock();\n\
                           self.b.lock().checked_add(2);\n\
                       }\n\
                   }";
        let fired = rules_fired(&[lock_file("crates/replay/src/x.rs", "replay", src)]);
        assert!(fired.iter().all(|(_, r, _)| *r != RuleId::L007));
    }

    #[test]
    fn l007_temporary_lock_chain_is_not_a_guard() {
        // `.lock().stats()` is a temporary dropped at statement end; a
        // second acquisition in the NEXT statement must not form a cycle
        // edge with it.
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                       fn one(&self) {\n\
                           let x = self.a.lock().checked_add(1);\n\
                           self.b.lock().checked_add(1);\n\
                       }\n\
                       fn two(&self) {\n\
                           let y = self.b.lock().checked_add(1);\n\
                           self.a.lock().checked_add(1);\n\
                       }\n\
                   }";
        let fired = rules_fired(&[lock_file("crates/replay/src/x.rs", "replay", src)]);
        assert!(
            fired.iter().all(|(_, r, _)| *r != RuleId::L007),
            "temporaries must not hold across statements, got {fired:?}"
        );
    }

    #[test]
    fn l007_sees_through_calls() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                       fn take_b(&self) { self.b.lock().checked_add(1); }\n\
                       fn fwd(&self) {\n\
                           let g = self.a.lock();\n\
                           self.take_b();\n\
                       }\n\
                       fn rev(&self) {\n\
                           let g = self.b.lock();\n\
                           self.a.lock().checked_add(1);\n\
                       }\n\
                   }";
        let fired = rules_fired(&[lock_file("crates/replay/src/x.rs", "replay", src)]);
        assert!(
            fired.iter().any(|(_, r, _)| *r == RuleId::L007),
            "interprocedural cycle missed: {fired:?}"
        );
    }

    #[test]
    fn l008_flags_sleep_reachable_from_worker_loop() {
        let src = "fn reactor_loop() { helper(); }\n\
                   fn helper() { std::thread::sleep(d); }\n\
                   fn unreachable_helper() { std::thread::sleep(d); }";
        let fired = rules_fired(&[lock_file("crates/replay/src/w.rs", "replay", src)]);
        let l008: Vec<_> = fired
            .iter()
            .filter(|(_, r, _)| *r == RuleId::L008)
            .collect();
        assert_eq!(l008.len(), 1, "only the reachable sleep fires: {fired:?}");
        assert_eq!(l008[0].2, 2);
    }

    #[test]
    fn l008_guard_and_recv_patterns() {
        let src = "struct S { m: Mutex<u32> }\n\
                   impl S {\n\
                       fn reactor_loop(&self, rx: Receiver<u8>) {\n\
                           let x = rx.recv();\n\
                           self.m.lock().checked_add(1);\n\
                       }\n\
                   }";
        let fired = rules_fired(&[lock_file("crates/replay/src/w.rs", "replay", src)]);
        let l008: Vec<usize> = fired
            .iter()
            .filter(|(_, r, _)| *r == RuleId::L008)
            .map(|&(_, _, l)| l)
            .collect();
        assert_eq!(l008, [4, 5], "recv + lock both flagged: {fired:?}");
    }
}
