//! L008 fixture: blocking primitives reachable from the worker-shard
//! poll loop (positive), a reasoned allow on a bounded wait (allowed),
//! and an unreachable blocking helper (negative).

pub struct Shard {
    state: Mutex<u32>,
}

impl Shard {
    pub fn reactor_loop(&self, rx: Receiver<u64>) {
        let job = rx.recv();
        std::thread::sleep(Duration::from_millis(1));
        // lsw::allow(L008): fixture — critical section is two integer loads
        self.state.lock().checked_add(1);
        self.helper();
    }

    fn helper(&self) {
        self.state.lock().checked_add(1);
    }

    fn cold(&self) {
        std::thread::sleep(Duration::from_millis(5));
    }
}
