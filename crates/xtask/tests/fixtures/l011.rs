//! L011 fixture: a lossy narrowing cast (positive), sanctioned
//! spellings (negative), and a reasoned allow (allowed).

pub fn len_field(n: usize) -> u32 {
    n as u32
}

pub fn widen(b: u8) -> u64 {
    u64::from(b)
}

pub fn checked(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

pub fn varint_low(x: u64) -> u8 {
    // lsw::allow(L011): fixture — the varint keeps the low 7 bits on purpose
    (x as u8) & 0x7f
}
