//! L006 fixture: allocating text conversions in an ingest hot-path file.
//! Linted with `ingest_hot: true`.

fn per_record(line: &[u8]) -> String {
    String::from_utf8_lossy(line).into_owned()
}

fn also_per_record(field: &str) -> String {
    field.to_string()
}

fn borrowing_is_fine(line: &[u8]) -> Option<&str> {
    std::str::from_utf8(line).ok()
}

fn cold_diagnostic(field: &[u8]) -> String {
    // lsw::allow(L006): error constructor, cold path
    String::from_utf8_lossy(field).into_owned()
}
