//! L010 fixture: a stale allow (positive), a used allow (negative),
//! and a stale allow waived by an allow of L010 (allowed).

// lsw::allow(L005): nothing on the next line can panic
pub fn quiet() -> u8 {
    3
}

// lsw::allow(L005): the unwrap below is guarded by the caller
pub fn loud(x: Option<u8>) -> u8 { x.unwrap() }

// lsw::allow(L010): kept on purpose while the follow-up lands
// lsw::allow(L002): the gated Instant::now call returns next PR
pub fn gated() -> u8 {
    4
}
