//! L005 fixture: panicking calls in library code.

pub fn parse_header(line: &str) -> u32 {
    line.split(' ').next().unwrap().parse().expect("bad header")
}

pub fn guard(x: i64) {
    if x < 0 {
        panic!("negative input");
    }
}
