//! L002 fixture: ambient nondeterminism in a deterministic crate.
use std::time::{Instant, SystemTime};

pub fn jittery_seed() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn wall_clock_stamp() -> u128 {
    let t = SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap_or_default().as_nanos()
}

pub fn elapsed_budget() -> Instant {
    Instant::now()
}
