//! L009 fixture: unguarded growth on a struct field (positive), a
//! capacity-guarded site (negative), and a reasoned allow (allowed).

pub struct Backlog {
    queue: Vec<u64>,
    seen: BTreeSet<u64>,
}

impl Backlog {
    pub fn push_unguarded(&mut self, v: u64) {
        self.queue.push(v);
    }

    pub fn push_guarded(&mut self, v: u64, limit: usize) {
        if self.queue.len() >= limit {
            return;
        }
        self.queue.push(v);
    }

    pub fn remember(&mut self, v: u64) {
        // lsw::allow(L009): fixture — key domain is a fixed enum of 16 ids
        self.seen.insert(v);
    }
}
