//! Clean fixture: exercises patterns adjacent to every rule without
//! violating any of them.
use std::collections::{BTreeMap, HashMap};

pub struct Totals {
    /// Fixed-point (micro-units) so shard merge order cannot leak in.
    pub total_micro: i128,
    pub n: u64,
}

impl Totals {
    pub fn merge(&mut self, other: &Totals) {
        self.total_micro += other.total_micro;
        self.n += other.n;
    }
}

/// BTreeMap iteration is ordered: L001 does not apply.
pub fn report(counts: &BTreeMap<u32, u64>) -> Vec<u64> {
    counts.values().copied().collect()
}

/// Hash lookup without iteration is fine.
pub fn lookup(index: &HashMap<u32, u64>, key: u32) -> Option<u64> {
    index.get(&key).copied()
}

/// Annotated hash iteration: the order is destroyed by the sort below.
pub fn sorted_keys(index: &HashMap<u32, u64>) -> Vec<u32> {
    // lsw::allow(L001): collected into a Vec and sorted before any output
    let mut keys: Vec<u32> = index.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// Errors propagate instead of panicking.
pub fn parse_pair(s: &str) -> Result<(u32, u32), std::num::ParseIntError> {
    let mut it = s.splitn(2, ',');
    let a = it.next().unwrap_or_default().trim().parse()?;
    let b = it.next().unwrap_or_default().trim().parse()?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
