//! L001 fixture: iteration over hash-ordered collections.
use std::collections::{HashMap, HashSet};

pub fn report_counts(counts: &HashMap<u32, u64>) -> Vec<u64> {
    counts.values().copied().collect()
}

pub fn visit_all() {
    let mut seen = HashSet::new();
    seen.insert(1u32);
    for _x in &seen {
        // order-dependent work
    }
}

pub fn point_lookup(m: &HashMap<u32, u64>) -> Option<u64> {
    m.get(&7).copied() // fine: not iteration
}
