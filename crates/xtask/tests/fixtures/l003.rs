//! L003 fixture: float accumulation in a shard-merge participant.

pub struct ShardAccumulator {
    pub total_bytes: f64,
    pub sessions: u64,
}

impl ShardAccumulator {
    pub fn observe(&mut self, bytes: u64) {
        self.sessions += 1;
        self.total_bytes += bytes as f64;
    }

    pub fn merge(&mut self, other: &ShardAccumulator) {
        self.total_bytes += other.total_bytes;
        self.sessions += other.sessions;
    }
}
