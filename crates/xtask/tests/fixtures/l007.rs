//! L007 fixture: lock-order cycles between worker paths (positive), a
//! reasoned allow on the witness edge (allowed), and a consistent
//! global order (negative).

pub struct Hub {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
    d: Mutex<u32>,
}

impl Hub {
    pub fn fwd(&self) {
        let g = self.a.lock();
        self.b.lock().checked_add(1);
    }

    pub fn rev(&self) {
        let g = self.b.lock();
        self.a.lock().checked_add(1);
    }

    pub fn one(&self) {
        let g = self.c.lock();
        self.d.lock().checked_add(1);
    }

    pub fn two(&self) {
        let g = self.c.lock();
        self.d.lock().checked_add(2);
    }
}

pub struct Waived {
    e: Mutex<u32>,
    f: Mutex<u32>,
}

impl Waived {
    pub fn enter(&self) {
        let g = self.e.lock();
        // lsw::allow(L007): fixture — both paths are gated by a startup barrier
        self.f.lock().checked_add(1);
    }

    pub fn leave(&self) {
        let g = self.f.lock();
        self.e.lock().checked_add(1);
    }
}
