//! L004 fixture: unordered rayon reductions.

pub fn total(v: &[u64]) -> u64 {
    v.par_iter().map(|x| x + 1).sum()
}

pub fn max_chunk(v: &[f64]) -> Option<f64> {
    v.par_chunks(64).map(|c| c[0]).reduce(|| 0.0, f64::max)
}

pub fn sequential_total(v: &[u64]) -> u64 {
    v.iter().sum() // fine: sequential iterator order is deterministic
}
