//! Fixture tests: each known-violating file fires exactly the expected
//! rule ids at the expected lines, the clean file stays silent, and the
//! workspace itself lints clean (the acceptance invariant the CI job
//! enforces).

use std::path::Path;
use xtask::rules::{lint_source, FileClass, RuleId};
use xtask::{run_lint, workspace, LintOptions};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Fixtures are linted as library code of a deterministic-path crate, so
/// every rule is in scope.
fn fixture_class() -> FileClass {
    FileClass {
        crate_name: "stream".to_owned(),
        is_bin: false,
        blessed_reduction: false,
        ingest_hot: false,
    }
}

fn fired(name: &str) -> Vec<(RuleId, usize)> {
    lint_source(&fixture_class(), &fixture(name))
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn l001_fires_on_hash_iteration() {
    assert_eq!(fired("l001.rs"), [(RuleId::L001, 5), (RuleId::L001, 11)]);
}

#[test]
fn l002_fires_on_ambient_nondeterminism() {
    assert_eq!(
        fired("l002.rs"),
        [(RuleId::L002, 5), (RuleId::L002, 10), (RuleId::L002, 15)]
    );
}

#[test]
fn l003_fires_on_float_accumulation_in_merge_participant() {
    assert_eq!(fired("l003.rs"), [(RuleId::L003, 11), (RuleId::L003, 15)]);
}

#[test]
fn l004_fires_on_unordered_rayon_reductions() {
    assert_eq!(fired("l004.rs"), [(RuleId::L004, 4), (RuleId::L004, 8)]);
}

#[test]
fn l005_fires_on_panicking_calls() {
    assert_eq!(
        fired("l005.rs"),
        [(RuleId::L005, 4), (RuleId::L005, 4), (RuleId::L005, 9)]
    );
}

#[test]
fn l005_unwrap_before_expect_on_same_line() {
    let diags = lint_source(&fixture_class(), &fixture("l005.rs"));
    assert!(diags[0].message.contains("unwrap"));
    assert!(diags[1].message.contains("expect"));
    assert!(diags[0].col < diags[1].col);
}

#[test]
fn l006_fires_on_ingest_hot_allocations() {
    // The fixture represents an ingest hot-path file, so lint it as one.
    let hot = FileClass {
        ingest_hot: true,
        ..fixture_class()
    };
    let diags: Vec<(RuleId, usize)> = lint_source(&hot, &fixture("l006.rs"))
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect();
    assert_eq!(diags, [(RuleId::L006, 5), (RuleId::L006, 9)]);
    // The same source is silent outside the hot-path scope.
    assert!(lint_source(&fixture_class(), &fixture("l006.rs")).is_empty());
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(fired("clean.rs"), []);
}

#[test]
fn rules_respect_cli_exemptions() {
    // The same violating source is exempt in a binary target…
    let bin = FileClass {
        is_bin: true,
        ..fixture_class()
    };
    assert!(lint_source(&bin, &fixture("l005.rs")).is_empty());
    assert!(lint_source(&bin, &fixture("l002.rs")).is_empty());
    // …but hash iteration (L001) applies even to binaries: report output
    // produced by a bin must be deterministic too.
    assert!(!lint_source(&bin, &fixture("l001.rs")).is_empty());
}

#[test]
fn blessed_merge_module_may_reduce() {
    let blessed = FileClass {
        blessed_reduction: true,
        ..fixture_class()
    };
    assert!(lint_source(&blessed, &fixture("l004.rs")).is_empty());
}

#[test]
fn json_output_is_well_formed_and_ordered() {
    let root = workspace::workspace_root();
    let report = run_lint(&root, &LintOptions::default()).expect("lint run");
    let json = report.render_json();
    assert!(json.starts_with("{\n  \"violations\": ["));
    assert!(json.contains("\"files_scanned\""));
    // Two runs over identical input render identically (stable order).
    let report2 = run_lint(&root, &LintOptions::default()).expect("lint run");
    assert_eq!(json, report2.render_json());
}

/// The acceptance invariant: the workspace's own first-party code passes
/// every rule. If this test fails, either fix the violation or annotate
/// it with `// lsw::allow(L00X): <reason>` — see DESIGN.md §10.
#[test]
fn workspace_lints_clean() {
    let root = workspace::workspace_root();
    let report = run_lint(&root, &LintOptions::default()).expect("lint run");
    assert!(
        report.clean(),
        "workspace lint violations:\n{}",
        report.render_text()
    );
    assert!(
        report.scanned > 50,
        "walker found only {} files",
        report.scanned
    );
}
