//! Fixture tests: each known-violating file fires exactly the expected
//! rule ids at the expected lines, the clean file stays silent, and the
//! workspace itself lints clean (the acceptance invariant the CI job
//! enforces).

use std::path::Path;
use xtask::rules::{lint_source, FileClass, RuleId};
use xtask::{analyze_sources, run_lint, workspace, LintOptions, LintReport, SourceFile};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Fixtures are linted as library code of a deterministic-path crate, so
/// every rule is in scope.
fn fixture_class() -> FileClass {
    FileClass {
        crate_name: "stream".to_owned(),
        ..FileClass::default()
    }
}

fn fired(name: &str) -> Vec<(RuleId, usize)> {
    lint_source(&fixture_class(), &fixture(name))
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn l001_fires_on_hash_iteration() {
    assert_eq!(fired("l001.rs"), [(RuleId::L001, 5), (RuleId::L001, 11)]);
}

#[test]
fn l002_fires_on_ambient_nondeterminism() {
    assert_eq!(
        fired("l002.rs"),
        [(RuleId::L002, 5), (RuleId::L002, 10), (RuleId::L002, 15)]
    );
}

#[test]
fn l003_fires_on_float_accumulation_in_merge_participant() {
    assert_eq!(fired("l003.rs"), [(RuleId::L003, 11), (RuleId::L003, 15)]);
}

#[test]
fn l004_fires_on_unordered_rayon_reductions() {
    assert_eq!(fired("l004.rs"), [(RuleId::L004, 4), (RuleId::L004, 8)]);
}

#[test]
fn l005_fires_on_panicking_calls() {
    assert_eq!(
        fired("l005.rs"),
        [(RuleId::L005, 4), (RuleId::L005, 4), (RuleId::L005, 9)]
    );
}

#[test]
fn l005_unwrap_before_expect_on_same_line() {
    let diags = lint_source(&fixture_class(), &fixture("l005.rs"));
    assert!(diags[0].message.contains("unwrap"));
    assert!(diags[1].message.contains("expect"));
    assert!(diags[0].col < diags[1].col);
}

#[test]
fn l006_fires_on_ingest_hot_allocations() {
    // The fixture represents an ingest hot-path file, so lint it as one.
    let hot = FileClass {
        ingest_hot: true,
        ..fixture_class()
    };
    let diags: Vec<(RuleId, usize)> = lint_source(&hot, &fixture("l006.rs"))
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect();
    assert_eq!(diags, [(RuleId::L006, 5), (RuleId::L006, 9)]);
    // The same source is silent outside the hot-path scope.
    assert!(lint_source(&fixture_class(), &fixture("l006.rs")).is_empty());
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(fired("clean.rs"), []);
}

#[test]
fn rules_respect_cli_exemptions() {
    // The same violating source is exempt in a binary target…
    let bin = FileClass {
        is_bin: true,
        ..fixture_class()
    };
    assert!(lint_source(&bin, &fixture("l005.rs")).is_empty());
    assert!(lint_source(&bin, &fixture("l002.rs")).is_empty());
    // …but hash iteration (L001) applies even to binaries: report output
    // produced by a bin must be deterministic too.
    assert!(!lint_source(&bin, &fixture("l001.rs")).is_empty());
}

#[test]
fn blessed_merge_module_may_reduce() {
    let blessed = FileClass {
        blessed_reduction: true,
        ..fixture_class()
    };
    assert!(lint_source(&blessed, &fixture("l004.rs")).is_empty());
}

/// Runs the whole-workspace analyzer over a single fixture file with the
/// given class (the interprocedural rules need [`analyze_sources`], not
/// the per-file [`lint_source`] path).
fn analyze_fixture(name: &str, class: FileClass) -> LintReport {
    analyze_sources(&[SourceFile {
        rel_path: format!("crates/fixture/src/{name}"),
        class,
        src: fixture(name),
    }])
}

fn finding_lines(report: &LintReport, rule: RuleId) -> Vec<usize> {
    report
        .findings
        .iter()
        .filter(|f| f.diag.rule == rule)
        .map(|f| f.diag.line)
        .collect()
}

fn waived_lines(report: &LintReport, rule: RuleId) -> Vec<usize> {
    report
        .waived
        .iter()
        .filter(|w| w.diag.rule == rule)
        .map(|w| w.diag.line)
        .collect()
}

fn lock_scope_class() -> FileClass {
    FileClass {
        crate_name: "replay".to_owned(),
        lock_scope: true,
        ..FileClass::default()
    }
}

#[test]
fn l007_fires_once_per_cycle_and_honors_allows() {
    let report = analyze_fixture("l007.rs", lock_scope_class());
    // One cycle between `a`/`b`, reported at the smallest witness site;
    // the consistent `c`→`d` order is silent; the `e`/`f` cycle is waived.
    assert_eq!(finding_lines(&report, RuleId::L007), [15], "{report:?}");
    assert_eq!(waived_lines(&report, RuleId::L007), [43]);
    assert!(report
        .exemptions
        .iter()
        .any(|e| e.rule == "L007" && e.reason.contains("startup barrier")));
    assert!(report.findings[0].diag.message.contains("`a`"));
    assert!(report.findings[0].diag.message.contains("`b`"));
}

#[test]
fn l008_flags_only_reachable_blocking_sites() {
    let report = analyze_fixture("l008.rs", lock_scope_class());
    // recv + sleep in worker_loop, plus the lock wait reached through
    // helper(); the allowed lock wait is waived; cold() is unreachable.
    assert_eq!(
        finding_lines(&report, RuleId::L008),
        [11, 12, 19],
        "{report:?}"
    );
    assert_eq!(waived_lines(&report, RuleId::L008), [14]);
    let helper_site = report
        .findings
        .iter()
        .find(|f| f.diag.line == 19)
        .expect("helper lock site");
    assert!(
        helper_site.diag.message.contains("reactor_loop → helper"),
        "call path named: {}",
        helper_site.diag.message
    );
}

#[test]
fn l009_fixture_positive_allowed_negative() {
    let class = FileClass {
        bounded_mem: true,
        ..fixture_class()
    };
    let report = analyze_fixture("l009.rs", class);
    assert_eq!(finding_lines(&report, RuleId::L009), [11], "{report:?}");
    assert_eq!(waived_lines(&report, RuleId::L009), [23]);
    assert!(report.exemptions.iter().any(|e| e.rule == "L009"));
}

#[test]
fn l010_fixture_positive_allowed_negative() {
    let report = analyze_fixture("l010.rs", fixture_class());
    // The line-4 allow is stale; the line-9 allow is used; the line-13
    // staleness is waived by the allow(L010) above it.
    assert_eq!(finding_lines(&report, RuleId::L010), [4], "{report:?}");
    assert_eq!(waived_lines(&report, RuleId::L010), [13]);
    assert!(report
        .exemptions
        .iter()
        .any(|e| e.rule == "L005" && e.line == 9));
    assert!(report
        .exemptions
        .iter()
        .any(|e| e.rule == "L010" && e.line == 12));
}

#[test]
fn l010_fix_is_idempotent() {
    let report = analyze_fixture("l010.rs", fixture_class());
    assert_eq!(report.fixes.len(), 1);
    // Apply the planned spans bottom-up to the in-memory source.
    let mut src = fixture("l010.rs");
    for &(s, e) in report.fixes[0].spans.iter().rev() {
        src.replace_range(s..e, "");
    }
    assert!(!src.contains("nothing on the next line can panic"));
    assert!(src.contains("guarded by the caller"), "used allow survives");
    assert!(src.contains("lsw::allow(L010)"), "waiving allow survives");
    let fixed = analyze_sources(&[SourceFile {
        rel_path: "crates/fixture/src/l010.rs".to_owned(),
        class: fixture_class(),
        src,
    }]);
    assert!(fixed.clean(), "{:?}", fixed.findings);
    assert!(fixed.fixes.is_empty(), "second --fix plans no edits");
}

#[test]
fn l011_fixture_positive_allowed_negative() {
    let class = FileClass {
        wire_path: true,
        crate_name: "trace".to_owned(),
        ..FileClass::default()
    };
    let report = analyze_fixture("l011.rs", class);
    assert_eq!(finding_lines(&report, RuleId::L011), [5], "{report:?}");
    assert_eq!(waived_lines(&report, RuleId::L011), [18]);
}

#[test]
fn sarif_output_carries_results_and_suppressions() {
    let report = analyze_fixture("l010.rs", fixture_class());
    let sarif = report.render_sarif();
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"ruleId\": \"L010\""));
    assert!(sarif.contains("\"kind\": \"inSource\""));
    assert!(sarif.contains("guarded by the caller"));
}

#[test]
fn json_exposes_exemptions_for_audit() {
    let report = analyze_fixture("l010.rs", fixture_class());
    let json = report.render_json();
    assert!(json.contains("\"exemptions\""));
    assert!(json.contains("\"reason\": \"the unwrap below is guarded by the caller\""));
}

#[test]
fn json_output_is_well_formed_and_ordered() {
    let root = workspace::workspace_root();
    let report = run_lint(&root, &LintOptions::default()).expect("lint run");
    let json = report.render_json();
    assert!(json.starts_with("{\n  \"violations\": ["));
    assert!(json.contains("\"files_scanned\""));
    // Two runs over identical input render identically (stable order).
    let report2 = run_lint(&root, &LintOptions::default()).expect("lint run");
    assert_eq!(json, report2.render_json());
}

/// The acceptance invariant: the workspace's own first-party code passes
/// every rule. If this test fails, either fix the violation or annotate
/// it with `// lsw::allow(L00X): <reason>` — see DESIGN.md §10.
#[test]
fn workspace_lints_clean() {
    let root = workspace::workspace_root();
    let report = run_lint(&root, &LintOptions::default()).expect("lint run");
    assert!(
        report.clean(),
        "workspace lint violations:\n{}",
        report.render_text()
    );
    assert!(
        report.scanned > 50,
        "walker found only {} files",
        report.scanned
    );
}
