//! Property tests for the lint engine's front end: the lexer and the
//! item extractor must be total over arbitrary input — never panic,
//! never report a span outside the source or off a char boundary — and
//! their spans must slice back to the text they claim to describe.

use proptest::prelude::*;
use xtask::items::{self, extract};
use xtask::lexer::{lex, TokenKind};

/// Fragments that compose into dense pseudo-Rust, deliberately heavy on
/// the constructs the lexer special-cases: raw strings, nested block
/// comments, lifetimes vs. char literals, doc comments, non-ASCII.
const FRAGMENTS: &[&str] = &[
    "fn f(x: u8) -> u8 { x }\n",
    "impl Foo { fn m(&self) {} }\n",
    "impl<T> Trait for Foo<T> { fn t() {} }\n",
    "struct S { a: Arc<Mutex<u64>>, b: Vec<u8> }\n",
    "enum E { A { buf: Vec<u8> }, B(u32) }\n",
    "// lsw::allow(L005): a reason\n",
    "/// doc comment\n",
    "//! inner doc\n",
    "/* block /* nested */ still comment */\n",
    "/** block doc */\n",
    "let s = \"str with \\\" escape\";\n",
    "let r = r#\"raw \" string\"#;\n",
    "let c = 'x'; let lt: &'a str = s;\n",
    "let α = \"日本語\"; // non-ascii\n",
    "b\"bytes\" ",
    "'\\n' ",
    "0x1f_u64 ",
    "{ } ( ) [ ] < > :: -> => . , ; # ! ? & | ",
    "r\"unterminated-ish ",
    "\"",
    "/*",
    "//",
    "'",
];

fn assemble(picks: &[usize]) -> String {
    picks
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect()
}

/// Checks every lexer + extractor invariant against one source string.
/// Returns nothing; panics (failing the property) on violation.
fn check_front_end(src: &str) {
    let lexed = lex(src);
    for t in &lexed.tokens {
        assert!(t.start <= t.end, "inverted span {}..{}", t.start, t.end);
        assert!(t.end <= src.len(), "span {}..{} past EOF", t.start, t.end);
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span {}..{} off char boundary",
            t.start,
            t.end
        );
        assert!(t.line >= 1 && t.col >= 1, "positions are 1-based");
        if let TokenKind::Ident(name) = &t.kind {
            assert_eq!(&src[t.start..t.end], name, "ident span slices to name");
        }
    }
    for c in &lexed.comments {
        assert!(c.start <= c.end && c.end <= src.len());
        assert!(src.is_char_boundary(c.start) && src.is_char_boundary(c.end));
        assert_eq!(&src[c.start..c.end], c.text, "comment span slices to text");
        assert!(c.end_line >= c.line);
    }
    let found = extract(&lexed.tokens);
    for f in &found.fns {
        let (s, e) = f.name_span;
        assert_eq!(&src[s..e], f.name, "fn name span slices to name");
        assert!(!items::is_keyword(&f.name), "keywords are not fn names");
        if let Some((open, close)) = f.body {
            assert!(open < close && close < lexed.tokens.len());
            assert!(lexed.tokens[open].is_punct('{'));
            assert!(lexed.tokens[close].is_punct('}'));
        }
    }
    for fld in &found.fields {
        assert!(!fld.owner.is_empty() && !fld.name.is_empty());
        assert!(fld.line >= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Totality on arbitrary bytes: whatever `from_utf8_lossy` yields —
    /// including lone delimiters, truncated literals, and replacement
    /// chars — must lex and extract without panicking, with every span
    /// in-bounds on a char boundary.
    fn front_end_is_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255u8, 0..300),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_front_end(&src);
    }

    /// Structured adversarial input: random concatenations of Rust-ish
    /// fragments (nested comments, raw strings, unterminated openers)
    /// keep every span invariant intact.
    fn front_end_survives_fragment_soup(
        picks in prop::collection::vec(0usize..1000, 0..24),
    ) {
        check_front_end(&assemble(&picks));
    }

    /// Lexing is a pure function of the source: two runs agree token for
    /// token (the determinism the whole analyzer inherits).
    fn lexing_is_deterministic(
        bytes in prop::collection::vec(0u8..=255u8, 0..200),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let (a, b) = (lex(&src), lex(&src));
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        for (x, y) in a.tokens.iter().zip(&b.tokens) {
            prop_assert_eq!((x.start, x.end, x.line, x.col), (y.start, y.end, y.line, y.col));
        }
        prop_assert_eq!(a.comments.len(), b.comments.len());
    }
}

/// A fixed end-to-end sanity case the properties above randomize around.
#[test]
fn extractor_sees_through_the_kitchen_sink() {
    let src = "impl Foo { fn go(&self) { self.x.push(1); } }\nfn free() {}\n";
    let lexed = lex(src);
    let found = extract(&lexed.tokens);
    let names: Vec<(&str, Option<&str>)> = found
        .fns
        .iter()
        .map(|f| (f.name.as_str(), f.owner.as_deref()))
        .collect();
    assert_eq!(names, [("go", Some("Foo")), ("free", None)]);
}
