//! Experiment output types.

use serde::{Deserialize, Serialize};

/// A named plot series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Label (e.g. "CCDF", "mod-day fold").
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }
}

/// One paper-vs-measured quantity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// What is compared.
    pub name: String,
    /// The paper's value (`None` when the paper gives only a qualitative
    /// claim).
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Whether the reproduction criterion held (shape/agreement as defined
    /// by the experiment, not exact equality).
    pub holds: bool,
    /// How the criterion was judged.
    pub criterion: String,
}

impl Comparison {
    /// Quantitative comparison with a relative tolerance on the paper value.
    pub fn quantitative(name: impl Into<String>, paper: f64, measured: f64, rel_tol: f64) -> Self {
        let holds = if paper != 0.0 {
            ((measured - paper) / paper).abs() <= rel_tol
        } else {
            measured.abs() <= rel_tol
        };
        Self {
            name: name.into(),
            paper: Some(paper),
            measured,
            holds,
            criterion: format!("within {:.0}% of paper value", rel_tol * 100.0),
        }
    }

    /// Qualitative claim: `holds` judged by the experiment.
    pub fn qualitative(
        name: impl Into<String>,
        measured: f64,
        holds: bool,
        criterion: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            paper: None,
            measured,
            holds,
            criterion: criterion.into(),
        }
    }
}

/// The output of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Experiment id, e.g. "fig07".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Plot series (the figure's panels).
    pub series: Vec<Series>,
    /// Paper-vs-measured comparisons.
    pub comparisons: Vec<Comparison>,
    /// Free-form notes (scale caveats, substitutions).
    pub notes: String,
}

impl FigureResult {
    /// True when every comparison criterion held.
    pub fn all_hold(&self) -> bool {
        self.comparisons.iter().all(|c| c.holds)
    }

    /// Renders a one-experiment text summary.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for c in &self.comparisons {
            let mark = if c.holds { "ok " } else { "MISS" };
            match c.paper {
                Some(p) => {
                    let _ = writeln!(
                        out,
                        "  [{mark}] {:<42} paper {:>12.4}  measured {:>12.4}  ({})",
                        c.name, p, c.measured, c.criterion
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  [{mark}] {:<42} measured {:>12.4}  ({})",
                        c.name, c.measured, c.criterion
                    );
                }
            }
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "  note: {}", self.notes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantitative_tolerance() {
        let c = Comparison::quantitative("x", 2.0, 2.1, 0.1);
        assert!(c.holds);
        let c = Comparison::quantitative("x", 2.0, 2.5, 0.1);
        assert!(!c.holds);
        // Zero paper value: absolute criterion.
        let c = Comparison::quantitative("x", 0.0, 0.05, 0.1);
        assert!(c.holds);
    }

    #[test]
    fn render_marks_misses() {
        let r = FigureResult {
            id: "figX".into(),
            title: "test".into(),
            series: vec![],
            comparisons: vec![
                Comparison::quantitative("good", 1.0, 1.0, 0.1),
                Comparison::quantitative("bad", 1.0, 9.0, 0.1),
            ],
            notes: "scale caveat".into(),
        };
        assert!(!r.all_hold());
        let text = r.render_text();
        assert!(text.contains("[ok ]"));
        assert!(text.contains("[MISS]"));
        assert!(text.contains("scale caveat"));
    }
}
