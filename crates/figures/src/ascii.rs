//! Tiny ASCII plotting for terminal previews of figure series.
//!
//! Deliberately crude: the JSON output carries the real data; this exists
//! so `repro` can show a figure's shape without a plotting stack.

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisScale {
    /// Linear axis.
    Linear,
    /// Log10 axis (non-positive values dropped).
    Log,
}

/// Renders a scatter of `(x, y)` points into a `width × height` character
/// grid with simple axis annotations.
pub fn scatter(
    points: &[(f64, f64)],
    width: usize,
    height: usize,
    xscale: AxisScale,
    yscale: AxisScale,
) -> String {
    let tx = |v: f64| match xscale {
        AxisScale::Linear => Some(v),
        AxisScale::Log => (v > 0.0).then(|| v.log10()),
    };
    let ty = |v: f64| match yscale {
        AxisScale::Linear => Some(v),
        AxisScale::Log => (v > 0.0).then(|| v.log10()),
    };
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter_map(|&(x, y)| Some((tx(x)?, ty(y)?)))
        .collect();
    if pts.is_empty() || width < 8 || height < 3 {
        return "(no plottable points)\n".to_string();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x1 <= x0 {
        x1 = x0 + 1.0;
    }
    if y1 <= y0 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in &pts {
        let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
        let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
        grid[height - 1 - cy.min(height - 1)][cx.min(width - 1)] = b'*';
    }
    let mut out = String::with_capacity((width + 4) * (height + 2));
    let un = |v: f64, scale: AxisScale| match scale {
        AxisScale::Linear => v,
        AxisScale::Log => 10f64.powf(v),
    };
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>9.3e} ", un(y1, yscale))
        } else if i == height - 1 {
            format!("{:>9.3e} ", un(y0, yscale))
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&String::from_utf8_lossy(row));
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>10} {:<12.3e}{}{:>12.3e}\n",
        "",
        un(x0, xscale),
        " ".repeat(width.saturating_sub(24)),
        un(x1, xscale)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grid_of_requested_size() {
        let pts: Vec<(f64, f64)> = (1..100).map(|i| (i as f64, 1.0 / i as f64)).collect();
        let s = scatter(&pts, 40, 10, AxisScale::Log, AxisScale::Log);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 12); // 10 rows + axis + labels
        assert!(lines[0].contains('*') || lines[1].contains('*'));
    }

    #[test]
    fn empty_input_is_safe() {
        assert!(scatter(&[], 40, 10, AxisScale::Linear, AxisScale::Linear).contains("no plottable"));
        // All non-positive on a log axis ⇒ nothing plottable.
        assert!(
            scatter(&[(0.0, -1.0)], 40, 10, AxisScale::Log, AxisScale::Log)
                .contains("no plottable")
        );
    }

    #[test]
    fn power_law_descends_on_loglog() {
        // A power law on log-log is a straight descending diagonal: the
        // top-left should be populated and the bottom-left empty.
        let pts: Vec<(f64, f64)> = (1..=1000)
            .map(|i| (i as f64, (i as f64).powf(-1.0)))
            .collect();
        let s = scatter(&pts, 40, 10, AxisScale::Log, AxisScale::Log);
        let lines: Vec<&str> = s.lines().collect();
        let first_cols: String = lines[0].chars().skip(11).take(5).collect();
        let last_cols: String = lines[9].chars().skip(11).take(5).collect();
        assert!(first_cols.contains('*'), "top-left empty:\n{s}");
        assert!(!last_cols.contains('*'), "bottom-left populated:\n{s}");
    }
}
