//! # lsw-figures — reproduction harness for every table and figure
//!
//! One experiment per table/figure of Veloso et al. (IMC 2002). Each
//! experiment consumes a [`context::ReproContext`] (a synthetic trace,
//! built by the generator and simulator, sanitized, sessionized and
//! characterized) and produces a [`result::FigureResult`]: the plotted
//! series, a set of paper-vs-measured comparisons, and notes.
//!
//! The `repro` binary runs all experiments at a chosen scale and writes
//! JSON plus a human-readable summary — the data behind EXPERIMENTS.md.
//!
//! | Experiment | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — basic trace statistics |
//! | `fig02`…`fig08` | Client layer (diversity, concurrency, arrivals, interest, ACF) |
//! | `fig09`…`fig14` | Session layer (T_o sweep, ON/OFF, transfers/session, intra-IAT) |
//! | `fig15`…`fig20` | Transfer layer (concurrency, interarrivals, lengths, bandwidth) |
//! | `table2` | Closed-loop recovery of the generative-model parameters |
//! | `sanity` | §2.4 — sanitization and the server-overload audit |

#![warn(missing_docs)]

pub mod ascii;
pub mod context;
pub mod experiments;
pub mod result;

pub use context::{ReproContext, Scale};
pub use result::{Comparison, FigureResult, Series};
