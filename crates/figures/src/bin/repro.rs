//! `repro` — run the reproduction experiments and write their results.
//!
//! ```text
//! repro [--scale small|medium|paper] [--seed N] [--out DIR] [--plot] [IDS...]
//! ```
//!
//! With no IDS, every experiment runs. Results are printed as text and,
//! with `--out`, written as JSON (one file per experiment plus a
//! `summary.md`).

// The CLI reports elapsed wall-clock per experiment; the workspace clock
// ban (clippy mirror of xtask L002) covers the deterministic pipeline,
// not progress reporting in a binary.
#![allow(clippy::disallowed_methods)]

use lsw_figures::ascii::{scatter, AxisScale};
use lsw_figures::context::{ReproContext, Scale};
use lsw_figures::experiments;
use std::io::Write as _;

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut out_dir: Option<String> = None;
    let mut plot = false;
    let mut ext = false;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?} (small|medium|paper)");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => out_dir = args.next(),
            "--plot" => plot = true,
            "--ext" => ext = true,
            "--help" | "-h" => {
                println!(
                    "repro [--scale small|medium|paper] [--seed N] [--out DIR] [--plot] [--ext] [IDS...]"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    let started = std::time::Instant::now();
    eprintln!("building {scale} context (seed {seed})...");
    let ctx = ReproContext::build(scale, seed);
    eprintln!(
        "context ready in {:.1}s: {} transfers, {} sessions, {} clients",
        started.elapsed().as_secs_f64(),
        ctx.trace.len(),
        ctx.sessions.len(),
        ctx.report.summary.users
    );

    let experiments: Vec<_> = if ids.is_empty() {
        let mut exps = experiments::all();
        if ext {
            exps.extend(experiments::extensions());
        }
        exps
    } else {
        ids.iter()
            .map(|id| {
                experiments::by_id(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment {id:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let mut summary = String::new();
    summary.push_str(&format!(
        "# Reproduction run\n\nscale: {scale}, seed: {seed}\n\n| experiment | comparisons | holds |\n|---|---|---|\n"
    ));
    let mut all_ok = true;
    for (id, run) in experiments {
        let t0 = std::time::Instant::now();
        let result = run(&ctx);
        print!("{}", result.render_text());
        if plot {
            if let Some(series) = result.series.first() {
                println!("  [{}]", series.name);
                print!(
                    "{}",
                    scatter(&series.points, 64, 14, AxisScale::Log, AxisScale::Log)
                );
            }
        }
        println!("  ({:.2}s)", t0.elapsed().as_secs_f64());
        let held = result.comparisons.iter().filter(|c| c.holds).count();
        summary.push_str(&format!(
            "| {} | {} | {}/{} |\n",
            id,
            result.title,
            held,
            result.comparisons.len()
        ));
        all_ok &= result.all_hold();
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{id}.json");
            let json = serde_json::to_string_pretty(&result).expect("result serializes");
            std::fs::write(&path, json).expect("write result JSON");
        }
    }
    if let Some(dir) = &out_dir {
        let mut f = std::fs::File::create(format!("{dir}/summary.md")).expect("create summary");
        f.write_all(summary.as_bytes()).expect("write summary");
        eprintln!("results written to {dir}/");
    }
    eprintln!(
        "total wall time {:.1}s; all criteria hold: {all_ok}",
        started.elapsed().as_secs_f64()
    );
}
