//! One module per layer of experiments, plus the registry.

pub mod client_figs;
pub mod extensions;
pub mod session_figs;
pub mod tables;
pub mod transfer_figs;

use crate::context::ReproContext;
use crate::result::FigureResult;

/// An experiment: id plus runner.
pub type Experiment = (&'static str, fn(&ReproContext) -> FigureResult);

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("table1", tables::table1),
        ("sanity", tables::sanity),
        ("fig02", client_figs::fig02),
        ("fig03", client_figs::fig03),
        ("fig04", client_figs::fig04),
        ("fig05", client_figs::fig05),
        ("fig06", client_figs::fig06),
        ("fig07", client_figs::fig07),
        ("fig08", client_figs::fig08),
        ("fig09", session_figs::fig09),
        ("fig10", session_figs::fig10),
        ("fig11", session_figs::fig11),
        ("fig12", session_figs::fig12),
        ("fig13", session_figs::fig13),
        ("fig14", session_figs::fig14),
        ("fig15", transfer_figs::fig15),
        ("fig16", transfer_figs::fig16),
        ("fig17", transfer_figs::fig17),
        ("fig18", transfer_figs::fig18),
        ("fig19", transfer_figs::fig19),
        ("fig20", transfer_figs::fig20),
        ("table2", tables::table2),
    ]
}

/// Extension experiments beyond the paper's figures (self-similarity,
/// VBR encoding, the admission-control argument with retries).
pub fn extensions() -> Vec<Experiment> {
    vec![
        ("ext_selfsim", extensions::ext_selfsim),
        ("ext_vbr", extensions::ext_vbr),
        ("ext_admission", extensions::ext_admission),
    ]
}

/// Looks up one experiment by id (paper set and extensions).
pub fn by_id(id: &str) -> Option<Experiment> {
    all()
        .into_iter()
        .chain(extensions())
        .find(|(eid, _)| *eid == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_complete_and_unique() {
        let exps = all();
        assert_eq!(exps.len(), 22);
        let mut ids: Vec<&str> = exps.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 22, "duplicate experiment ids");
        assert!(by_id("fig07").is_some());
        assert!(by_id("ext_vbr").is_some());
        assert!(by_id("fig99").is_none());
        assert_eq!(extensions().len(), 3);
    }
}
