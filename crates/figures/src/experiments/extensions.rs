//! Extension experiments — beyond the paper's figures.
//!
//! * `ext_selfsim` — long-range dependence of the transfer arrival
//!   process. The paper attributes "strong temporal correlations" to the
//!   synchronizing effect of live content and cites the self-similarity
//!   lineage \[14\]; this experiment measures Hurst exponents of the
//!   per-minute arrival counts (with and without the diurnal trend
//!   removed, since periodicity inflates naive estimates).
//! * `ext_vbr` — GISMO's self-similar VBR content encoding: the encoded
//!   bitrate of feed 0 must be long-range dependent with the configured
//!   `H = (3 − α)/2`.
//! * `ext_admission` — the §1 capacity argument quantified: capping the
//!   server below its uncapped peak denies viewer time even when clients
//!   retry.

use crate::context::ReproContext;
use crate::result::{Comparison, FigureResult, Series};
use lsw_sim::{AdmissionPolicy, RetryPolicy, ServerConfig, SimConfig, Simulator};
use lsw_stats::selfsim::{hurst_rs, hurst_variance_time};
use lsw_stats::timeseries::bin_counts;

/// Long-range dependence of transfer arrivals.
pub fn ext_selfsim(ctx: &ReproContext) -> FigureResult {
    let starts: Vec<f64> = ctx.trace.start_times().collect();
    let horizon = f64::from(ctx.trace.horizon());
    let counts: Vec<f64> = bin_counts(&starts, 60.0, horizon)
        .into_iter()
        .map(|c| c as f64)
        .collect();

    // Raw counts: diurnal periodicity dominates, inflating H toward 1.
    let raw_vt = hurst_variance_time(&counts, 2);
    // Detrended: divide out the daily shape AND the per-day level
    // (weekday modulation + audience envelope), keeping only the
    // stochastic fluctuation around the schedule. The launch ramp's steep
    // *intra-day* trend is not multiplicative-daily, so the first two
    // days are excluded from the residual analysis on long traces.
    let steady: &[f64] = if counts.len() > 4 * 1_440 {
        &counts[2 * 1_440..]
    } else {
        &counts
    };
    let daily = lsw_stats::timeseries::fold_periodic(steady, 60.0, 86_400.0);
    // Remove the daily shape first, then a smooth (±12 h moving-average)
    // slow level — this catches the interpolated audience envelope that a
    // piecewise-constant per-day level misses.
    let shape_removed: Vec<f64> = steady
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let expect = daily[i % daily.len()];
            if expect > 0.0 {
                c / expect
            } else {
                1.0
            }
        })
        .collect();
    let level = lsw_stats::timeseries::moving_average(&shape_removed, 720);
    let detrended: Vec<f64> = shape_removed
        .iter()
        .zip(&level)
        .map(|(&r, &l)| if l > 0.0 { r / l } else { 1.0 })
        .collect();
    let det_vt = hurst_variance_time(&detrended, 2);
    let det_rs = hurst_rs(&detrended);

    let mut comparisons = Vec::new();
    if let Ok(h) = &raw_vt {
        comparisons.push(Comparison::qualitative(
            "raw arrival counts strongly correlated (H)",
            h.h,
            h.h > 0.8,
            "diurnal schedule synchronizes arrivals (paper §1/§8 conjecture)",
        ));
    }
    if let (Ok(hr), Ok(hv)) = (&det_rs, &det_vt) {
        comparisons.push(Comparison::qualitative(
            "detrended counts near-Poisson (variance-time H)",
            hv.h,
            hv.h < 0.75,
            "within-window arrivals are Poisson (§3.4), so detrending removes most LRD",
        ));
        comparisons.push(Comparison::qualitative(
            "R/S agrees with variance-time (|ΔH|)",
            (hr.h - hv.h).abs(),
            (hr.h - hv.h).abs() < 0.25,
            "two independent estimators",
        ));
    }
    FigureResult {
        id: "ext_selfsim".into(),
        title: "Extension: long-range dependence of transfer arrivals".into(),
        series: vec![Series::new(
            "per-minute arrival counts (first 2 days)",
            counts
                .iter()
                .take(2_880)
                .enumerate()
                .map(|(i, &c)| (i as f64, c))
                .collect(),
        )],
        comparisons,
        notes: "the correlation is carried by the live schedule, not by arrival \
                burstiness — the object-driven signature"
            .into(),
    }
}

/// GISMO's self-similar VBR content encoding.
pub fn ext_vbr(_ctx: &ReproContext) -> FigureResult {
    use lsw_core::vbr::{VbrConfig, VbrEncoder};
    let config = VbrConfig::default();
    let theory = config.theoretical_hurst();
    // lsw::allow(L005): VbrConfig::default() is a fixed valid config
    let encoder = VbrEncoder::new(config, 2002).expect("default config valid");
    let series = encoder.bitrate_series(lsw_trace::ids::ObjectId(0), 0, 16_384);
    let measured = hurst_variance_time(&series, 4);
    let mean = series.iter().sum::<f64>() / series.len() as f64;

    let mut comparisons = vec![Comparison::qualitative(
        "encoded mean rate near nominal (bps)",
        mean,
        (mean / 250_000.0 - 1.0).abs() < 0.35,
        "VbrConfig::default targets 250 kbit/s",
    )];
    if let Ok(h) = &measured {
        comparisons.push(Comparison::quantitative(
            "Hurst exponent of encoded bitrate",
            theory,
            h.h,
            0.2,
        ));
    }
    FigureResult {
        id: "ext_vbr".into(),
        title: "Extension: self-similar VBR content encoding".into(),
        series: vec![Series::new(
            "bitrate (first hour)",
            series
                .iter()
                .take(3_600)
                .enumerate()
                .map(|(i, &r)| (i as f64, r))
                .collect(),
        )],
        comparisons,
        notes: format!("theory H = (3 − α)/2 = {theory:.2} for α = 1.4"),
    }
}

/// Admission control denies viewer time even with retries (§1).
pub fn ext_admission(ctx: &ReproContext) -> FigureResult {
    let base = Simulator::new(SimConfig::default()).run(&ctx.workload, 0xad31);
    let peak = base.server_stats.peak_concurrent;
    let capped = |retry| {
        Simulator::new(SimConfig {
            server: ServerConfig {
                admission: AdmissionPolicy::RejectAbove {
                    max_concurrent: peak / 2,
                },
                ..ServerConfig::default()
            },
            retry,
            ..SimConfig::default()
        })
        .run(&ctx.workload, 0xad31)
    };
    let give_up = capped(RetryPolicy::GiveUp);
    let retry = capped(RetryPolicy::RetryAfter {
        delay_secs: 120.0,
        max_attempts: 5,
    });

    let intended: f64 = ctx.workload.transfers().iter().map(|t| t.duration).sum();
    let watched = |out: &lsw_sim::SimOutput| {
        out.trace
            .entries()
            .iter()
            .map(|e| f64::from(e.duration))
            .sum::<f64>()
    };
    let w_open = watched(&base);
    let w_giveup = watched(&give_up);
    let w_retry = watched(&retry);

    let comparisons = vec![
        Comparison::qualitative(
            "uncapped server loses no requests",
            base.server_stats.rejected as f64,
            base.server_stats.rejected == 0,
            "the paper's provision-for-peak stance",
        ),
        Comparison::qualitative(
            "half-peak cap rejects requests",
            give_up.server_stats.rejected as f64,
            give_up.server_stats.rejected > 0,
            "admission control engages",
        ),
        Comparison::qualitative(
            "retries recover some viewing (watched ratio vs give-up)",
            w_retry / w_giveup.max(1.0),
            w_retry >= w_giveup,
            "persistent clients get in eventually",
        ),
        Comparison::qualitative(
            "but live time is still lost (watched / intended)",
            w_retry / intended.max(1.0),
            w_retry < w_open,
            "content moves on while clients wait: rejection is denial (§1)",
        ),
    ];
    FigureResult {
        id: "ext_admission".into(),
        title: "Extension: admission control vs live content".into(),
        series: vec![],
        comparisons,
        notes: format!(
            "peak {peak}; watched seconds: open {w_open:.0}, cap+giveup {w_giveup:.0}, \
             cap+retry {w_retry:.0}, intended {intended:.0}"
        ),
    }
}
