//! Client-layer figures: Fig 2 through Fig 8.

use super::tables::binned_series;
use crate::context::{ReproContext, Scale};
use crate::result::{Comparison, FigureResult, Series};
use lsw_stats::paper;

/// Fig 2 — client diversity: transfers/AS, IPs/AS, transfers/country.
pub fn fig02(ctx: &ReproContext) -> FigureResult {
    let geo = &ctx.report.client.geo;
    let series = vec![
        Series::new("% of transfers vs AS rank", geo.as_by_transfers.clone()),
        Series::new("% of IPs vs AS rank", geo.as_by_ips.clone()),
        Series::new(
            "% of transfers vs country rank",
            geo.country_transfers
                .iter()
                .enumerate()
                .map(|(i, (_, share))| ((i + 1) as f64, *share))
                .collect(),
        ),
    ];
    let top_as = geo.as_by_transfers.first().map(|&(_, s)| s).unwrap_or(0.0);
    let br = geo
        .country_transfers
        .iter()
        .find(|(c, _)| c == "BR")
        .map(|&(_, s)| s)
        .unwrap_or(0.0);
    let span = geo
        .country_transfers
        .last()
        .map(|&(_, s)| br / s.max(1e-12))
        .unwrap_or(0.0);
    let mut comparisons = vec![
        Comparison::qualitative(
            "AS popularity is heavy-tailed (top AS share)",
            top_as,
            top_as > 0.05 && top_as < 0.8,
            "one AS commands a large but not total share",
        ),
        Comparison::qualitative(
            "Brazil dominates transfers",
            br,
            br > 0.9,
            "Fig 2 right: BR first by several orders",
        ),
        Comparison::qualitative(
            "country span covers orders of magnitude",
            span.log10(),
            span > 1e3,
            "Fig 2 right spans ~7 decades at paper scale",
        ),
    ];
    if ctx.scale == Scale::Paper {
        comparisons.push(Comparison::quantitative(
            "number of client ASes",
            paper::NUM_CLIENT_AS as f64,
            geo.n_ases as f64,
            0.05,
        ));
    }
    FigureResult {
        id: "fig02".into(),
        title: "Client diversity over ASes and countries".into(),
        series,
        comparisons,
        notes: "synthetic topology substitutes the proprietary AS mapping; only the \
                rank-share shape is comparable"
            .into(),
    }
}

/// Fig 3 — marginal distribution of the number of active clients.
pub fn fig03(ctx: &ReproContext) -> FigureResult {
    let c = &ctx.report.client.concurrency;
    let m = &c.marginal;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
        Series::new("CCDF", m.ccdf.clone()),
    ];
    let cv = m.summary.cv;
    let comparisons = vec![
        Comparison::qualitative(
            "wide variability in active clients (CV)",
            cv,
            cv > 0.5,
            "Fig 3: counts spread over the full 0..peak range",
        ),
        Comparison::qualitative(
            "peak concurrency well above mean",
            c.peak as f64 / m.summary.mean.max(1e-9),
            c.peak as f64 > 2.0 * m.summary.mean,
            "heavy upper range as in Fig 3's CCDF",
        ),
    ];
    FigureResult {
        id: "fig03".into(),
        title: "Marginal distribution of number of active clients".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}

/// Fig 4 — temporal behavior of the number of active clients.
pub fn fig04(ctx: &ReproContext) -> FigureResult {
    let c = &ctx.report.client.concurrency;
    let series = vec![
        binned_series("over trace (900 s bins)", &c.over_trace),
        binned_series("mod one week", &c.weekly),
        binned_series("mod 24 hours", &c.daily),
    ];
    // Diurnal claim: 4am–11am trough vs evening peak.
    let daily = &c.daily.values;
    let nbin = daily.len().max(1);
    let avg = |lo_h: f64, hi_h: f64| {
        let lo = ((lo_h / 24.0) * nbin as f64) as usize;
        let hi = (((hi_h / 24.0) * nbin as f64) as usize).min(nbin);
        let vals: Vec<f64> = daily[lo..hi]
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let trough = avg(4.0, 11.0);
    let peak = avg(19.0, 24.0);
    // Weekend uplift: weekly fold, Sunday (day 0 per config) + Saturday.
    let weekly = &c.weekly.values;
    let day_mean = |d: usize| {
        let per_day = weekly.len() / 7;
        let vals: Vec<f64> = weekly[d * per_day..(d + 1) * per_day]
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let weekend = (day_mean(0) + day_mean(6)) / 2.0;
    let weekday = (1..6).map(day_mean).sum::<f64>() / 5.0;
    let comparisons = vec![
        Comparison::qualitative(
            "diurnal trough 4am-11am (peak/trough ratio)",
            peak / trough.max(1e-9),
            peak > 2.0 * trough,
            "Fig 4 right: considerably fewer clients 4–11h",
        ),
        Comparison::qualitative(
            "weekends slightly higher than weekdays",
            weekend / weekday.max(1e-9),
            weekend > weekday,
            "Fig 4 center: weekend uplift",
        ),
    ];
    FigureResult {
        id: "fig04".into(),
        title: "Temporal behavior of number of active clients".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}

/// Fig 5 — marginal distribution of client interarrival times.
pub fn fig05(ctx: &ReproContext) -> FigureResult {
    let a = &ctx.report.client.arrivals;
    let m = &a.interarrivals;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
        Series::new("CCDF", m.ccdf.clone()),
    ];
    // "Appears heavy tailed": CCDF reaches well beyond the mean.
    let p99_over_mean = m.summary.p99 / m.summary.mean.max(1e-9);
    let comparisons = vec![
        Comparison::qualitative(
            "interarrival marginal appears heavy (p99/mean)",
            p99_over_mean,
            p99_over_mean > 3.0,
            "Fig 5: apparent heavy tail, later explained by non-stationarity",
        ),
        Comparison::qualitative(
            "interarrivals span decades",
            m.summary.max / m.summary.median.max(1e-9),
            m.summary.max > 30.0 * m.summary.median,
            "Fig 5 x-axis spans ~3 decades",
        ),
    ];
    FigureResult {
        id: "fig05".into(),
        title: "Marginal distribution of client interarrival times".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}

/// Fig 6 — interarrivals from the fitted piecewise-stationary Poisson
/// process, compared against Fig 5.
pub fn fig06(ctx: &ReproContext) -> FigureResult {
    let a = &ctx.report.client.arrivals;
    let m = &a.synthetic_interarrivals;
    let series = vec![
        Series::new("synthetic frequency", m.frequency.clone()),
        Series::new("synthetic CDF", m.cdf.clone()),
        Series::new("synthetic CCDF", m.ccdf.clone()),
    ];
    let comparisons = vec![
        Comparison::qualitative(
            "actual vs synthetic KS distance",
            a.ks_actual_vs_synthetic.statistic,
            a.ks_actual_vs_synthetic.statistic < 0.1,
            "the paper calls the two marginals 'surprisingly similar'",
        ),
        Comparison::qualitative(
            "within-window Poisson pass fraction",
            a.poisson_window_pass_fraction,
            a.poisson_window_pass_fraction > 0.9,
            "§3.4: short intervals are consistent with Poisson",
        ),
    ];
    FigureResult {
        id: "fig06".into(),
        title: "Interarrivals from a piecewise-stationary Poisson process".into(),
        series,
        comparisons,
        notes: format!("{} windows dispersion-tested", a.poisson_windows_tested),
    }
}

/// Fig 7 — the client interest profile.
pub fn fig07(ctx: &ReproContext) -> FigureResult {
    let i = &ctx.report.client.interest;
    let series = vec![
        Series::new("transfers per client vs rank", i.transfers_rank.clone()),
        Series::new("sessions per client vs rank", i.sessions_rank.clone()),
    ];
    let mut comparisons = Vec::new();
    let quantitative = ctx.scale != Scale::Small;
    if let Some(f) = &i.sessions_fit {
        if quantitative {
            comparisons.push(Comparison::quantitative(
                "Zipf alpha (sessions)",
                paper::INTEREST_SESSIONS_ALPHA,
                f.alpha,
                0.35,
            ));
        } else {
            // At small scale the per-client session density is far above
            // the paper's, so T_o merging flattens the top ranks; only the
            // existence of the skew is checked.
            comparisons.push(Comparison::qualitative(
                "session profile Zipf-skewed (alpha)",
                f.alpha,
                f.alpha > 0.1,
                "quantitative comparison at --scale medium/paper",
            ));
        }
    }
    if let Some(f) = &i.transfers_fit {
        if quantitative {
            comparisons.push(Comparison::quantitative(
                "Zipf alpha (transfers)",
                paper::INTEREST_TRANSFERS_ALPHA,
                f.alpha,
                0.40,
            ));
        } else {
            comparisons.push(Comparison::qualitative(
                "transfer profile Zipf-skewed (alpha)",
                f.alpha,
                f.alpha > 0.2,
                "quantitative comparison at --scale medium/paper",
            ));
        }
    }
    if let (Some(t), Some(s)) = (&i.transfers_fit, &i.sessions_fit) {
        comparisons.push(Comparison::qualitative(
            "transfer profile steeper than session profile",
            t.alpha - s.alpha,
            t.alpha > s.alpha,
            "paper: 0.7194 vs 0.4704",
        ));
    }
    FigureResult {
        id: "fig07".into(),
        title: "Client interest profile (role-reversed popularity)".into(),
        series,
        comparisons,
        notes: "fits restricted to the low-noise body, as the paper's fitted lines \
                visibly are"
            .into(),
    }
}

/// Fig 8 — autocorrelation of the number of clients over time.
pub fn fig08(ctx: &ReproContext) -> FigureResult {
    let c = &ctx.report.client.concurrency;
    let acf: Vec<(f64, f64)> = c
        .acf_minutes
        .iter()
        .enumerate()
        .map(|(lag, &r)| (lag as f64, r))
        .collect();
    let series = vec![Series::new("ACF of c(t), per-minute lags", acf)];
    let days = f64::from(ctx.trace.horizon()) / 86_400.0;
    let mut comparisons = Vec::new();
    if days >= 2.0 {
        let day_peak = c.acf_minutes.get(1_440).copied().unwrap_or(f64::NAN);
        let has_daily_peak = c.acf_peaks.iter().any(|&p| (p as i64 - 1_440).abs() < 120);
        comparisons.push(Comparison::qualitative(
            "ACF at one-day lag",
            day_peak,
            day_peak > 0.3,
            "Fig 8: strong daily periodicity",
        ));
        comparisons.push(Comparison::qualitative(
            "peak detected near 1,440 minutes",
            c.acf_peaks.first().map(|&p| p as f64).unwrap_or(f64::NAN),
            has_daily_peak,
            "peaks at multiples of 1,440",
        ));
    } else {
        // One-day trace: the daily lag is out of range; check the
        // half-day anticorrelation instead (same periodic signature).
        let half_day = c.acf_minutes.get(720).copied().unwrap_or(f64::NAN);
        comparisons.push(Comparison::qualitative(
            "ACF at half-day lag is negative",
            half_day,
            half_day < 0.0,
            "diurnal signature on a 1-day trace; full check at medium/paper",
        ));
    }
    // Decay: the 2-day peak is below the 1-day peak when the trace is long
    // enough to measure it.
    if let (Some(&d1), Some(&d2)) = (c.acf_minutes.get(1_440), c.acf_minutes.get(2_880)) {
        comparisons.push(Comparison::qualitative(
            "peak correlation decays with lag",
            d1 - d2,
            d2 < d1,
            "Fig 8: peaks shrink as lag grows",
        ));
    }
    FigureResult {
        id: "fig08".into(),
        title: "Autocorrelation of number of clients over time".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}
