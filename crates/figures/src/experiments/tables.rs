//! Table 1, Table 2 and the §2.4 sanitization audit.

use crate::context::{ReproContext, Scale};
use crate::result::{Comparison, FigureResult, Series};
use lsw_stats::paper;

/// Table 1 — basic trace statistics.
///
/// At `Scale::Paper` the absolute counts are compared against the paper's
/// Table 1 (clients, IPs, ASes, countries, sessions, transfers, bytes); at
/// smaller scales the comparison is against the scaled configuration
/// (the shape claim is "the pipeline hits its targets").
pub fn table1(ctx: &ReproContext) -> FigureResult {
    let s = &ctx.report.summary;
    let cfg = ctx.workload.config();
    let mut comparisons = vec![
        Comparison::quantitative(
            "log period (days)",
            cfg.horizon_secs as f64 / 86_400.0,
            s.days,
            0.01,
        ),
        Comparison::quantitative(
            "live objects",
            paper::NUM_LIVE_OBJECTS as f64,
            s.objects as f64,
            0.0,
        ),
    ];
    if ctx.scale == Scale::Paper {
        comparisons.push(Comparison::quantitative(
            "client ASes",
            paper::NUM_CLIENT_AS as f64,
            s.client_ases as f64,
            0.05,
        ));
        comparisons.push(Comparison::quantitative(
            "countries",
            paper::NUM_COUNTRIES as f64,
            s.countries as f64,
            0.0,
        ));
        comparisons.push(Comparison::quantitative(
            "users observed (player IDs)",
            paper::NUM_USERS as f64,
            s.users as f64,
            0.10,
        ));
        comparisons.push(Comparison::quantitative(
            "client IPs",
            paper::NUM_CLIENT_IPS as f64,
            s.client_ips as f64,
            0.15,
        ));
        comparisons.push(Comparison::qualitative(
            "sessions > 1.5M",
            ctx.sessions.len() as f64,
            ctx.sessions.len() >= paper::MIN_SESSIONS,
            "Table 1 lower bound",
        ));
        comparisons.push(Comparison::qualitative(
            "transfers (paper > 5.5M)",
            s.transfers as f64,
            s.transfers as f64 >= 0.4 * paper::MIN_TRANSFERS as f64,
            "pure-Zipf Fig 13 model understates the per-session mean (see notes)",
        ));
    } else {
        comparisons.push(Comparison::quantitative(
            "sessions vs target",
            cfg.target_sessions as f64,
            ctx.sessions.len() as f64,
            0.10,
        ));
    }
    FigureResult {
        id: "table1".into(),
        title: "Basic statistics of the trace".into(),
        series: vec![],
        comparisons,
        notes: format!(
            "scale={}; {:.2} TB served; transfers/session = {:.2} (paper ≈ 3.7). The faithful \
             pure-Zipf(2.704) transfers-per-session model has mean ≈ 1.6, so absolute transfer \
             and byte totals undershoot Table 1; WorkloadConfig::paper_scale_matched() closes \
             the gap while keeping the Fig 13 tail exponent.",
            ctx.scale,
            s.terabytes(),
            s.transfers as f64 / ctx.sessions.len().max(1) as f64
        ),
    }
}

/// §2.4 — sanitization and the server-overload audit.
pub fn sanity(ctx: &ReproContext) -> FigureResult {
    let r = &ctx.sanitize_report;
    let spanning = r
        .rejects
        .iter()
        .find(|(reason, _)| matches!(reason, lsw_trace::sanitize::RejectReason::SpansTracePeriod))
        .map(|&(_, n)| n)
        .unwrap_or(0);
    let comparisons = vec![
        Comparison::qualitative(
            "harvest-spanning entries removed",
            spanning as f64,
            // The simulator injects them at a small rate; sanitization must
            // catch every one (kept trace has none).
            ctx.trace
                .entries()
                .iter()
                .all(|e| e.duration <= ctx.trace.horizon()),
            "no entry in the sanitized trace spans the trace period",
        ),
        Comparison::quantitative(
            "time fraction below 10% CPU",
            paper::SERVER_UNDERLOAD_TIME_FRACTION,
            r.underload_time_fraction,
            0.01,
        ),
        Comparison::qualitative(
            "transfer fraction below 10% CPU",
            r.underload_transfer_fraction,
            r.underload_transfer_fraction > 0.99,
            "paper: >99% of transfers",
        ),
    ];
    FigureResult {
        id: "sanity".into(),
        title: "§2.4 log sanitization and overload audit".into(),
        series: vec![],
        comparisons,
        notes: format!(
            "{} of {} entries rejected ({} harvest-spanning)",
            r.rejected(),
            r.examined,
            spanning
        ),
    }
}

/// Table 2 — closed-loop recovery of the generative-model parameters.
///
/// The trace was *generated* from Table 2; characterizing it must hand the
/// parameters back. This is the headline experiment.
pub fn table2(ctx: &ReproContext) -> FigureResult {
    let rep = &ctx.report;
    let mut comparisons = Vec::new();
    if ctx.scale != Scale::Small {
        if let Some(f) = &rep.client.interest.sessions_fit {
            comparisons.push(Comparison::quantitative(
                "client interest alpha (sessions)",
                paper::INTEREST_SESSIONS_ALPHA,
                f.alpha,
                0.35,
            ));
        }
        if let Some(f) = &rep.client.interest.transfers_fit {
            comparisons.push(Comparison::quantitative(
                "client interest alpha (transfers)",
                paper::INTEREST_TRANSFERS_ALPHA,
                f.alpha,
                0.40,
            ));
        }
    }
    if let Some(f) = &rep.session.tps_fit {
        comparisons.push(Comparison::quantitative(
            "transfers-per-session alpha",
            paper::TRANSFERS_PER_SESSION_ALPHA,
            f.alpha,
            0.20,
        ));
    }
    if let Some(f) = &rep.session.intra_iat_fit {
        comparisons.push(Comparison::quantitative(
            "intra-session IAT mu",
            paper::INTRA_SESSION_IAT_MU,
            f.mu,
            0.06,
        ));
        comparisons.push(Comparison::quantitative(
            "intra-session IAT sigma",
            paper::INTRA_SESSION_IAT_SIGMA,
            f.sigma,
            0.15,
        ));
    }
    if let Some(f) = &rep.transfer.lengths.fit {
        comparisons.push(Comparison::quantitative(
            "transfer length mu",
            paper::TRANSFER_LENGTH_MU,
            f.mu,
            0.05,
        ));
        comparisons.push(Comparison::quantitative(
            "transfer length sigma",
            paper::TRANSFER_LENGTH_SIGMA,
            f.sigma,
            0.05,
        ));
    }
    FigureResult {
        id: "table2".into(),
        title: "Closed-loop recovery of the Table 2 generative model".into(),
        series: vec![],
        comparisons,
        notes: "parameters sampled by the generator, pushed through simulator + \
                1-second log quantization + sanitization + sessionization, then re-fitted"
            .into(),
    }
}

/// Helper for experiments: wraps a binned series for plotting.
pub(crate) fn binned_series(name: &str, series: &lsw_stats::timeseries::BinnedSeries) -> Series {
    Series::new(
        name,
        series
            .points()
            .into_iter()
            .filter(|(_, v)| !v.is_nan())
            .collect(),
    )
}
