//! Session-layer figures: Fig 9 through Fig 14.

use crate::context::ReproContext;
use crate::result::{Comparison, FigureResult, Series};
use lsw_stats::paper;

/// Fig 9 — number of sessions identified vs the timeout `T_o`.
pub fn fig09(ctx: &ReproContext) -> FigureResult {
    let sweep = &ctx.report.session.timeout_sweep;
    let series = vec![Series::new(
        "sessions vs T_o",
        sweep.points.iter().map(|&(t, n)| (t, n as f64)).collect(),
    )];
    let monotone = sweep.points.windows(2).all(|w| w[0].1 >= w[1].1);
    let flat = sweep.tail_flatness(5);
    let comparisons = vec![
        Comparison::qualitative(
            "session count monotone in T_o",
            sweep.points.first().map(|&(_, n)| n as f64).unwrap_or(0.0),
            monotone,
            "structural property of sessionization",
        ),
        Comparison::qualitative(
            "count flattens past T_o = 1500 s (relative change 1500→4000)",
            flat,
            flat < 0.12,
            "paper: 'does not change drastically for To > 1,500'",
        ),
    ];
    FigureResult {
        id: "fig09".into(),
        title: "Number of sessions identified vs timeout T_o".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}

/// Fig 10 — session ON time vs session starting hour.
pub fn fig10(ctx: &ReproContext) -> FigureResult {
    let b = &ctx.report.session.on_by_hour;
    let series = vec![Series::new(
        "mean ON time by start hour",
        b.points
            .iter()
            .copied()
            .filter(|(_, v)| !v.is_nan())
            .collect(),
    )];
    let comparisons = vec![Comparison::qualitative(
        "weak correlation with time of day (max relative deviation)",
        b.max_relative_deviation,
        b.max_relative_deviation < 0.8,
        "paper: variability in ON time is not a temporal effect",
    )];
    FigureResult {
        id: "fig10".into(),
        title: "Session ON time versus session starting time".into(),
        series,
        comparisons,
        notes: "ON-time variability is fundamental to live interaction, not diurnal".into(),
    }
}

/// Fig 11 — marginal distribution of session ON times, lognormal fit.
pub fn fig11(ctx: &ReproContext) -> FigureResult {
    let s = &ctx.report.session;
    let m = &s.on_times;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
        Series::new("CCDF", m.ccdf.clone()),
    ];
    let mut comparisons = Vec::new();
    if let Some(f) = &s.on_fit {
        // Session ON time is *emergent* in the generative model (it is one
        // of the redundant variables §6.1 drops), so the criterion is the
        // paper's qualitative finding: lognormal with high variability,
        // parameters in the same regime.
        comparisons.push(Comparison::quantitative(
            "lognormal mu",
            paper::SESSION_ON_MU,
            f.mu,
            0.40,
        ));
        comparisons.push(Comparison::qualitative(
            "highly variable (sigma > 1)",
            f.sigma,
            f.sigma > 1.0,
            "paper: sigma = 1.544; lognormal, 'not as heavy as Pareto'",
        ));
    }
    // Model selection: lognormal must beat Pareto (§8's explicit claim).
    let on_disp: Vec<f64> = {
        let raw = ctx.sessions.on_times();
        raw.iter().map(|&t| paper::log_display_time(t)).collect()
    };
    if let Ok(choice) = lsw_stats::fit::select_model(&on_disp) {
        let ks_ln = choice
            .ks_distances
            .iter()
            .find(|(f, _)| *f == lsw_stats::fit::Family::LogNormal)
            .map(|&(_, d)| d)
            .unwrap_or(f64::NAN);
        let ks_pareto = choice
            .ks_distances
            .iter()
            .find(|(f, _)| *f == lsw_stats::fit::Family::Pareto)
            .map(|&(_, d)| d)
            .unwrap_or(f64::NAN);
        comparisons.push(Comparison::qualitative(
            "lognormal fits better than Pareto (KS_ln - KS_pareto)",
            ks_ln - ks_pareto,
            ks_ln < ks_pareto,
            "§8: 'does not appear to be as heavy as Pareto'",
        ));
    }
    FigureResult {
        id: "fig11".into(),
        title: "Marginal distribution of session ON times".into(),
        series,
        comparisons,
        notes: "ON time is emergent (transfers/session × intra-session gaps × lengths)".into(),
    }
}

/// Fig 12 — marginal distribution of session OFF times, exponential fit.
pub fn fig12(ctx: &ReproContext) -> FigureResult {
    let s = &ctx.report.session;
    let m = &s.off_times;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
        Series::new("CCDF", m.ccdf.clone()),
    ];
    let mut comparisons = Vec::new();
    if let Some(f) = &s.off_fit {
        // OFF time too is emergent (client re-selection under Poisson
        // arrivals). The paper's mean is 203,150 s on a 28-day horizon;
        // shorter horizons censor long OFF times, so compare only at the
        // scale where the horizon matches.
        if ctx.scale == crate::context::Scale::Paper {
            // OFF time is emergent: Table 2 retains no OFF variable, and
            // independent Zipf client re-selection under-determines it.
            // The honest criterion is days-scale agreement (factor ~3);
            // EXPERIMENTS.md discusses the residual gap (real audiences
            // show revisit locality the model drops).
            comparisons.push(Comparison::qualitative(
                "emergent OFF mean within 3x of paper's 203,150 s",
                f.mean,
                f.mean > paper::SESSION_OFF_MEAN / 3.0 && f.mean < paper::SESSION_OFF_MEAN * 3.0,
                "Table 2 retains no OFF-time variable; see EXPERIMENTS.md",
            ));
            // The shape claim is exact: exponential beats the lognormal /
            // Pareto alternatives on the OFF-time body.
            let off_raw = ctx.sessions.off_times();
            if let Ok(choice) = lsw_stats::fit::select_model(&off_raw) {
                comparisons.push(Comparison::qualitative(
                    "exponential-like family fits best",
                    f.mean,
                    matches!(
                        choice.family,
                        lsw_stats::fit::Family::Exponential
                            | lsw_stats::fit::Family::Weibull
                            | lsw_stats::fit::Family::Gamma
                    ),
                    "Fig 12 right: exponential CCDF (Weibull/gamma with shape ≈ 1 accepted)",
                ));
            }
        } else {
            comparisons.push(Comparison::qualitative(
                "OFF mean far above T_o",
                f.mean,
                f.mean > 10.0 * paper::SESSION_TIMEOUT_SECS,
                "OFF times are log-off gaps, not think times",
            ));
        }
    }
    if f64::from(ctx.trace.horizon()) >= 3.0 * 86_400.0 {
        comparisons.push(Comparison::qualitative(
            "daily revisit ripple at 1 day",
            s.off_ripple_days.first().copied().unwrap_or(f64::NAN),
            s.off_ripple_days.contains(&1.0),
            "Fig 12: ripples at ~1, 2, 3 days",
        ));
    } else {
        comparisons.push(Comparison::qualitative(
            "OFF times observed",
            s.off_times.summary.n as f64,
            s.off_times.summary.n > 0,
            "ripple detection needs >= 3 trace days; run medium/paper",
        ));
    }
    FigureResult {
        id: "fig12".into(),
        title: "Marginal distribution of session OFF times".into(),
        series,
        comparisons,
        notes: "the 1,500–3,000 s anomaly the paper attributes to OFF-time \
                misclassification reproduces here: intra-session gaps above T_o are \
                split into session boundaries"
            .into(),
    }
}

/// Fig 13 — transfers per session, Zipf fit.
pub fn fig13(ctx: &ReproContext) -> FigureResult {
    let s = &ctx.report.session;
    let series = vec![Series::new(
        "P[K = k] vs k",
        s.transfers_per_session.clone(),
    )];
    let mut comparisons = Vec::new();
    if let Some(f) = &s.tps_fit {
        comparisons.push(Comparison::quantitative(
            "Zipf alpha",
            paper::TRANSFERS_PER_SESSION_ALPHA,
            f.alpha,
            0.20,
        ));
        comparisons.push(Comparison::qualitative(
            "heavy tail (alpha implies infinite 3rd moment)",
            f.alpha,
            f.alpha < 4.0,
            "Fig 13 CCDF: heavy-tailed behavior",
        ));
    }
    FigureResult {
        id: "fig13".into(),
        title: "Transfers per session".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}

/// Fig 14 — intra-session transfer interarrivals, lognormal fit.
pub fn fig14(ctx: &ReproContext) -> FigureResult {
    let s = &ctx.report.session;
    let m = &s.intra_iat;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
        Series::new("CCDF", m.ccdf.clone()),
    ];
    let mut comparisons = Vec::new();
    if let Some(f) = &s.intra_iat_fit {
        comparisons.push(Comparison::quantitative(
            "lognormal mu",
            paper::INTRA_SESSION_IAT_MU,
            f.mu,
            0.06,
        ));
        comparisons.push(Comparison::quantitative(
            "lognormal sigma",
            paper::INTRA_SESSION_IAT_SIGMA,
            f.sigma,
            0.15,
        ));
    }
    FigureResult {
        id: "fig14".into(),
        title: "Intra-session transfer interarrivals".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}
