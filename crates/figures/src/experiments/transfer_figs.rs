//! Transfer-layer figures: Fig 15 through Fig 20.

use super::tables::binned_series;
use crate::context::{ReproContext, Scale};
use crate::result::{Comparison, FigureResult, Series};
use lsw_stats::paper;

/// Fig 15 — marginal distribution of concurrent transfers.
pub fn fig15(ctx: &ReproContext) -> FigureResult {
    let c = &ctx.report.transfer.concurrency;
    let m = &c.marginal;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
        Series::new("CCDF", m.ccdf.clone()),
    ];
    // "Fairly similar to the client concurrency" — compare normalized
    // shapes via correlation of the daily folds.
    let client_daily = &ctx.report.client.concurrency.daily.values;
    let transfer_daily = &c.daily.values;
    let corr = pearson(client_daily, transfer_daily);
    let comparisons = vec![
        Comparison::qualitative(
            "transfer concurrency variability (CV)",
            m.summary.cv,
            m.summary.cv > 0.5,
            "Fig 15 mirrors Fig 3's spread",
        ),
        Comparison::qualitative(
            "shape tracks client concurrency (daily-fold correlation)",
            corr,
            corr > 0.9,
            "paper: 'fairly similar to the number of concurrent clients'",
        ),
    ];
    FigureResult {
        id: "fig15".into(),
        title: "Marginal distribution of concurrent transfers".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}

/// Fig 16 — temporal behavior of concurrent transfers.
pub fn fig16(ctx: &ReproContext) -> FigureResult {
    let c = &ctx.report.transfer.concurrency;
    let series = vec![
        binned_series("over trace (900 s bins)", &c.over_trace),
        binned_series("mod one week", &c.weekly),
        binned_series("mod 24 hours", &c.daily),
    ];
    let daily = &c.daily.values;
    let nbin = daily.len().max(1);
    let avg = |lo_h: f64, hi_h: f64| {
        let lo = ((lo_h / 24.0) * nbin as f64) as usize;
        let hi = (((hi_h / 24.0) * nbin as f64) as usize).min(nbin);
        let vals: Vec<f64> = daily[lo..hi]
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let trough = avg(4.0, 11.0);
    let peak = avg(19.0, 24.0);
    let comparisons = vec![Comparison::qualitative(
        "diurnal structure (evening peak / morning trough)",
        peak / trough.max(1e-9),
        peak > 2.0 * trough,
        "Fig 16 right mirrors Fig 4 right",
    )];
    FigureResult {
        id: "fig16".into(),
        title: "Temporal behavior of concurrent transfers".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}

/// Fig 17 — marginal distribution of transfer interarrivals with the
/// two-regime tail.
pub fn fig17(ctx: &ReproContext) -> FigureResult {
    let a = &ctx.report.transfer.arrivals;
    let m = &a.interarrivals;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
        Series::new("CCDF", m.ccdf.clone()),
    ];
    let mut comparisons = Vec::new();
    match (&a.tail, ctx.scale) {
        (Some(t), Scale::Paper) => {
            comparisons.push(Comparison::quantitative(
                "tail exponent below 100 s",
                paper::TRANSFER_IAT_TAIL_ALPHA_SHORT,
                t.alpha_short,
                0.5,
            ));
            // The >100 s regime is a handful of near-dead-service gaps;
            // its exponent is order-1 in the paper and compared here at
            // order-of-magnitude strength (EXPERIMENTS.md discusses why).
            comparisons.push(Comparison::qualitative(
                "long-regime exponent order ~1 (paper: 1.0)",
                t.alpha_long,
                t.alpha_long > 0.3 && t.alpha_long < 2.5,
                "paper reads alpha ~= 1 off ~a dozen extreme gaps",
            ));
            comparisons.push(Comparison::qualitative(
                "two distinct regimes (short steeper than long)",
                t.alpha_short - t.alpha_long,
                t.alpha_short > t.alpha_long,
                "§5.2: popular-interval vs unpopular-interval generative processes",
            ));
        }
        (Some(t), _) => {
            comparisons.push(Comparison::qualitative(
                "two-regime structure measurable (short-regime slope)",
                t.alpha_short,
                t.alpha_short > 0.0,
                "the >100 s regime needs paper-scale dead-of-night gaps; see notes",
            ));
        }
        (None, Scale::Paper) => {
            comparisons.push(Comparison::qualitative(
                "two-regime tail fit available",
                f64::NAN,
                false,
                "paper scale must populate the >100 s regime",
            ));
        }
        (None, _) => {
            comparisons.push(Comparison::qualitative(
                "long regime empty (expected below paper scale)",
                f64::NAN,
                true,
                "no >100 s gaps occur at this arrival rate; run --scale paper",
            ));
        }
    }
    FigureResult {
        id: "fig17".into(),
        title: "Marginal distribution of transfer interarrival times".into(),
        series,
        comparisons,
        notes: "the >100 s regime is populated by a handful of extreme dead-of-night \
                gaps; below paper scale those gaps do not occur, so the long-regime \
                exponent is only compared at --scale paper"
            .into(),
    }
}

/// Fig 18 — temporal behavior of transfer interarrival times.
pub fn fig18(ctx: &ReproContext) -> FigureResult {
    let a = &ctx.report.transfer.arrivals;
    let series = vec![
        binned_series("over trace (900 s bins)", &a.over_trace),
        binned_series("mod one week", &a.weekly),
        binned_series("mod 24 hours", &a.daily),
    ];
    let daily = &a.daily.values;
    let nbin = daily.len().max(1);
    let avg = |lo_h: f64, hi_h: f64| {
        let lo = ((lo_h / 24.0) * nbin as f64) as usize;
        let hi = (((hi_h / 24.0) * nbin as f64) as usize).min(nbin);
        let vals: Vec<f64> = daily[lo..hi]
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    // The inversion of Fig 4: interarrivals LONG 5–11am, SHORT at peak.
    let morning = avg(5.0, 11.0);
    let evening = avg(19.0, 24.0);
    let comparisons = vec![Comparison::qualitative(
        "morning interarrivals longer than evening (ratio)",
        morning / evening.max(1e-9),
        morning > 2.0 * evening,
        "Fig 18 right: 5–11am shows considerably longer interarrivals",
    )];
    FigureResult {
        id: "fig18".into(),
        title: "Temporal behavior of transfer interarrival times".into(),
        series,
        comparisons,
        notes: String::new(),
    }
}

/// Fig 19 — marginal distribution of transfer lengths, lognormal fit,
/// and the stickiness argument.
pub fn fig19(ctx: &ReproContext) -> FigureResult {
    let l = &ctx.report.transfer.lengths;
    let m = &l.marginal;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
        Series::new("CCDF", m.ccdf.clone()),
    ];
    let mut comparisons = Vec::new();
    if let Some(f) = &l.fit {
        comparisons.push(Comparison::quantitative(
            "lognormal mu",
            paper::TRANSFER_LENGTH_MU,
            f.mu,
            0.05,
        ));
        comparisons.push(Comparison::quantitative(
            "lognormal sigma",
            paper::TRANSFER_LENGTH_SIGMA,
            f.sigma,
            0.06,
        ));
    }
    comparisons.push(Comparison::qualitative(
        "length variance is within-object (client stickiness)",
        l.within_object_variance_ratio,
        l.within_object_variance_ratio > 0.95,
        "§5.3: variability traces to clients, not object sizes",
    ));
    FigureResult {
        id: "fig19".into(),
        title: "Marginal distribution of transfer lengths".into(),
        series,
        comparisons,
        notes: "contrast with the stored baseline, where object sizes carry the \
                variance (see the live_vs_stored example and ablation bench)"
            .into(),
    }
}

/// Fig 20 — transfer bandwidth: bimodal marginal.
pub fn fig20(ctx: &ReproContext) -> FigureResult {
    let b = &ctx.report.transfer.bandwidth;
    let m = &b.marginal;
    let series = vec![
        Series::new("frequency", m.frequency.clone()),
        Series::new("CDF", m.cdf.clone()),
    ];
    let comparisons = vec![
        Comparison::quantitative(
            "congestion-bound fraction",
            paper::CONGESTION_BOUND_FRACTION,
            b.congestion_bound_fraction,
            0.6,
        ),
        Comparison::qualitative(
            "client-speed spikes detected",
            b.spike_positions.len() as f64,
            !b.spike_positions.is_empty(),
            "Fig 20: spikes at modem/DSL/cable speeds",
        ),
        Comparison::qualitative(
            "dominant spike near a modem speed",
            b.spike_positions
                .iter()
                .copied()
                .fold(f64::NAN, |acc, x| if acc.is_nan() { x } else { acc }),
            b.spike_positions
                .iter()
                .any(|&p| (20_000.0..70_000.0).contains(&p)),
            "2002 population: 56k modem dominates",
        ),
    ];
    FigureResult {
        id: "fig20".into(),
        title: "Transfer bandwidth (bimodal)".into(),
        series,
        comparisons,
        notes: format!(
            "congestion-bound = below {} bit/s; spikes at {:?}",
            lsw_analysis::transfer_layer::CONGESTION_THRESHOLD_BPS,
            b.spike_positions
        ),
    }
}

/// Pearson correlation of two equal-length series (NaNs pairwise-dropped).
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let pairs: Vec<(f64, f64)> = a
        .iter()
        .zip(b)
        .filter(|(x, y)| !x.is_nan() && !y.is_nan())
        .map(|(&x, &y)| (x, y))
        .collect();
    if pairs.len() < 2 {
        return f64::NAN;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    sxy / (sxx.sqrt() * syy.sqrt()).max(1e-12)
}
