//! The reproduction context: one synthetic trace, fully processed.
//!
//! Building a context runs the entire substrate chain the paper's data
//! went through:
//!
//! 1. generate a workload from the Table 2 model (`lsw-core`),
//! 2. play it through the server/network simulator (`lsw-sim`), with the
//!    §2.4 harvest anomaly enabled,
//! 3. sanitize the emitted log (`lsw-trace::sanitize`),
//! 4. sessionize at `T_o = 1500 s`,
//! 5. run the full hierarchical characterization (`lsw-analysis`).
//!
//! Experiments then read whatever they need from the context.

use lsw_analysis::{characterize, CharacterizationReport};
use lsw_core::config::WorkloadConfig;
use lsw_core::generator::Generator;
use lsw_core::Workload;
use lsw_sim::{SimConfig, Simulator};
use lsw_trace::sanitize::{sanitize, SanitizeReport};
use lsw_trace::session::{SessionConfig, Sessions};
use lsw_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// How big a reproduction run to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// ~1 day, 20k clients, 30k sessions — seconds to build; used by tests.
    Small,
    /// 7 days, 120k clients, 350k sessions — tens of seconds.
    Medium,
    /// The paper's full 28 days, ~692k clients, ~1.55M sessions.
    Paper,
}

impl Scale {
    /// The workload configuration for this scale.
    pub fn config(&self) -> WorkloadConfig {
        match self {
            Scale::Small => WorkloadConfig::paper().scaled(20_000, 86_400, 30_000),
            Scale::Medium => WorkloadConfig::paper().scaled(120_000, 7 * 86_400, 350_000),
            Scale::Paper => WorkloadConfig::paper(),
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        })
    }
}

/// The fully processed reproduction input.
pub struct ReproContext {
    /// The scale built.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// The generated workload (ground truth).
    pub workload: Workload,
    /// The sanitized trace.
    pub trace: Trace,
    /// §2.4 sanitization outcome.
    pub sanitize_report: SanitizeReport,
    /// Sessions at `T_o = 1500`.
    pub sessions: Sessions,
    /// Full hierarchical characterization.
    pub report: CharacterizationReport,
}

impl ReproContext {
    /// Builds the context (generate → simulate → sanitize → sessionize →
    /// characterize).
    pub fn build(scale: Scale, seed: u64) -> Self {
        Self::build_with_config(scale, scale.config(), seed)
    }

    /// Builds with an explicit workload configuration (ablations).
    pub fn build_with_config(scale: Scale, config: WorkloadConfig, seed: u64) -> Self {
        let horizon = config.horizon_secs;
        let workload = Generator::new(config, seed)
            .expect("scale presets are valid") // lsw::allow(L005): static presets
            .generate();
        let sim = Simulator::new(SimConfig {
            harvest_anomaly_rate: 2e-4,
            ..SimConfig::default()
        });
        let out = sim.run(&workload, seed ^ 0x5157);
        let (trace, sanitize_report) = sanitize(out.trace.entries().to_vec(), horizon);
        let sessions = Sessions::identify(&trace, SessionConfig::default());
        let report = characterize(&trace, seed ^ 0x9d2c);
        Self {
            scale,
            seed,
            workload,
            trace,
            sanitize_report,
            sessions,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_context_builds_end_to_end() {
        let ctx = ReproContext::build(Scale::Small, 1);
        assert!(ctx.trace.len() > 10_000, "transfers {}", ctx.trace.len());
        assert!(ctx.sessions.len() > 10_000);
        assert!(ctx.report.summary.users > 1_000);
        // The anomaly injection put something in the reject pile… or the
        // horizon had no midnight crossing — either way the report exists.
        assert_eq!(
            ctx.sanitize_report.kept + ctx.sanitize_report.rejected(),
            ctx.sanitize_report.examined
        );
    }

    #[test]
    fn scale_parse_round_trip() {
        for s in [Scale::Small, Scale::Medium, Scale::Paper] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("huge"), None);
    }
}
