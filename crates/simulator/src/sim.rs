//! The simulation driver: workload in, server log out.
//!
//! Plays a generated [`Workload`] through the [`MediaServer`] and the
//! [`FairShareNetwork`] as a discrete-event simulation: a start event per
//! transfer (admission + fair-share join) and a stop event (byte
//! accounting + log emission). The emitted trace is what the paper's
//! authors received from the real server — including, when configured,
//! the §2.4 *harvest-spanning anomaly*: a small fraction of transfers
//! active at a daily log-harvest boundary are written with a corrupted
//! over-long duration, which `lsw_trace::sanitize` must catch.

use crate::des::EventQueue;
use crate::network::{FairShareNetwork, NetworkConfig};
use crate::server::{MediaServer, ServerConfig, ServerStats};
use lsw_core::Workload;
use lsw_stats::rng::{u01, SeedStream};
use lsw_trace::event::LogEntry;
use lsw_trace::trace::Trace;
use serde::{Deserialize, Serialize};

/// What a client does when its request is rejected by admission control.
///
/// Live semantics: the content moves on while the client waits, so a
/// retry watches only the *remainder* of its intended interval — and
/// gives up entirely once the intended stop time has passed. This is the
/// §1 argument made concrete: for live media, rejection destroys viewing
/// time even when clients retry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetryPolicy {
    /// Rejected clients walk away (the denied viewing is lost whole).
    GiveUp,
    /// Rejected clients retry after a fixed delay, up to a cap.
    RetryAfter {
        /// Seconds between attempts.
        delay_secs: f64,
        /// Maximum total attempts (including the first).
        max_attempts: u32,
    },
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Server model.
    pub server: ServerConfig,
    /// Network model.
    pub network: NetworkConfig,
    /// Probability that a transfer spanning a daily harvest boundary is
    /// logged with a corrupted (longer-than-trace) duration, reproducing
    /// the anomaly the paper's §2.4 sanitization removes. 0 disables.
    pub harvest_anomaly_rate: f64,
    /// Baseline packet loss for uncongested transfers.
    pub base_loss: f32,
    /// Probability a transfer is *path*-congested somewhere between server
    /// and client (§5.4/footnote 12: ~10% of transfers are bound by
    /// "extremely limited network resources" even though the server and
    /// its uplink are fine).
    pub path_congestion_rate: f64,
    /// Median of the path-congested bandwidth mode, bits/s.
    pub path_congestion_median_bps: f64,
    /// Log-scale of the path-congested mode.
    pub path_congestion_sigma: f64,
    /// Client behavior on admission rejection.
    pub retry: RetryPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            server: ServerConfig::default(),
            network: NetworkConfig::default(),
            harvest_anomaly_rate: 0.0,
            base_loss: 0.002,
            path_congestion_rate: lsw_stats::paper::CONGESTION_BOUND_FRACTION,
            path_congestion_median_bps: 8_000.0,
            path_congestion_sigma: 1.1,
            retry: RetryPolicy::GiveUp,
        }
    }
}

/// What the simulation produced.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The emitted server log.
    pub trace: Trace,
    /// Server accept/reject accounting.
    pub server_stats: ServerStats,
    /// Transfers that experienced uplink congestion at any point.
    pub congested_transfers: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
}

/// Event payload: index into the workload's transfer list plus the
/// attempt number (for admission retries).
#[derive(Debug, Clone, Copy)]
enum Ev {
    Start { idx: u32, attempt: u32 },
    Stop(u32),
}

/// The simulator.
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator.
    pub fn new(config: SimConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.harvest_anomaly_rate),
            "anomaly rate must be in [0,1]"
        );
        Self { config }
    }

    /// Runs the workload and produces the server log.
    pub fn run(&self, workload: &Workload, seed: u64) -> SimOutput {
        let horizon = workload.config().horizon_secs;
        let population = workload.population();
        let seeds = SeedStream::new(seed);
        let mut anomaly_rng = seeds.rng("harvest-anomaly");
        let mut loss_rng = seeds.rng("loss");
        let mut path_rng = seeds.rng("path-congestion");
        let path_dist = lsw_stats::dist::LogNormal::new(
            self.config.path_congestion_median_bps.ln(),
            self.config.path_congestion_sigma,
        )
        // lsw::allow(L005): SimConfig keeps median/sigma positive and finite
        .expect("validated config");

        let mut server = MediaServer::new(self.config.server);
        let mut network = FairShareNetwork::new(self.config.network);
        let mut queue = EventQueue::with_capacity(workload.len() * 2);
        for (i, t) in workload.transfers().iter().enumerate() {
            queue.schedule(
                t.start,
                Ev::Start {
                    idx: i as u32,
                    attempt: 1,
                },
            );
        }

        // Per-transfer state: the class-integral snapshot at admission,
        // the actual admission time (for retries), and congestion flags.
        let mut snapshot = vec![f64::NAN; workload.len()];
        let mut admitted_at = vec![f64::NAN; workload.len()];
        let mut saw_congestion = vec![false; workload.len()];
        let mut entries: Vec<LogEntry> = Vec::with_capacity(workload.len());
        let mut congested_transfers = 0u64;
        let mut bytes_delivered = 0u64;
        let mut retries = 0u64;

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Start { idx: i, attempt } => {
                    let t = &workload.transfers()[i as usize];
                    // Live semantics: the intended stop is fixed wall-clock.
                    let intended_stop = (t.start + t.duration).min(f64::from(horizon));
                    let remaining = intended_stop - now;
                    if remaining <= 0.0 {
                        continue; // the moment has passed
                    }
                    if !server.request(remaining) {
                        // Rejected: maybe retry for the remainder.
                        if let RetryPolicy::RetryAfter {
                            delay_secs,
                            max_attempts,
                        } = self.config.retry
                        {
                            if attempt < max_attempts && now + delay_secs < intended_stop {
                                retries += 1;
                                queue.schedule(
                                    now + delay_secs,
                                    Ev::Start {
                                        idx: i,
                                        attempt: attempt + 1,
                                    },
                                );
                            }
                        }
                        continue;
                    }
                    let info = population.get(t.client);
                    snapshot[i as usize] = network.start(now, info.access);
                    admitted_at[i as usize] = now;
                    saw_congestion[i as usize] = network.congested();
                    queue.schedule(intended_stop, Ev::Stop(i));
                }
                Ev::Stop(i) => {
                    let t = &workload.transfers()[i as usize];
                    let t_start = admitted_at[i as usize];
                    let info = population.get(t.client);
                    let bits = network.stop(now, info.access, snapshot[i as usize]);
                    server.release();

                    // Quantize to log resolution.
                    let start = (t_start as u32).min(horizon.saturating_sub(1));
                    let stop = (now as u32).clamp(start, horizon);
                    let mut duration = stop - start;
                    // §2.4 anomaly injection: spans a midnight boundary?
                    if self.config.harvest_anomaly_rate > 0.0
                        && start / 86_400 != stop / 86_400
                        && u01(&mut anomaly_rng) < self.config.harvest_anomaly_rate
                    {
                        // Corrupted merge across harvests: duration longer
                        // than the whole trace.
                        duration = horizon + 86_400 + start % 86_400;
                    }

                    let wall = (now - t_start).max(1e-9);
                    // Remote-path congestion: the bottleneck is out in the
                    // network, capping the achieved rate below what server
                    // and access link would deliver.
                    let mut bits = bits;
                    if self.config.path_congestion_rate > 0.0
                        && u01(&mut path_rng) < self.config.path_congestion_rate
                    {
                        use lsw_stats::dist::Sample as _;
                        let path_bps = path_dist.sample(&mut path_rng);
                        bits = bits.min(path_bps * wall);
                        saw_congestion[i as usize] = true;
                    }
                    if saw_congestion[i as usize] || network.congested() {
                        congested_transfers += 1;
                    }
                    let avg_bw = (bits / wall).max(1.0) as u32;
                    let cap = f64::from(info.access.capacity_bps());
                    // Loss grows with how far below the client-bound rate
                    // the transfer was pushed.
                    let squeeze = (1.0 - (bits / wall) / cap).clamp(0.0, 1.0);
                    let loss = (f64::from(self.config.base_loss)
                        + 0.25 * squeeze * u01(&mut loss_rng))
                    .min(1.0) as f32;
                    bytes_delivered += (bits / 8.0) as u64;
                    entries.push(LogEntry {
                        timestamp: start.saturating_add(duration),
                        start,
                        duration,
                        client: t.client,
                        ip: info.ip,
                        as_id: info.as_id,
                        country: info.country,
                        object: t.object,
                        camera: t.camera,
                        bytes: (bits / 8.0) as u64,
                        avg_bandwidth: avg_bw,
                        packet_loss: loss,
                        cpu_util: server.cpu_util() as f32,
                        status: 200,
                    });
                }
            }
        }

        let mut server_stats = server.stats().clone();
        server_stats.retries = retries;
        SimOutput {
            trace: Trace::from_entries(entries, horizon),
            server_stats,
            congested_transfers,
            bytes_delivered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::AdmissionPolicy;
    use lsw_core::config::WorkloadConfig;
    use lsw_core::generator::Generator;

    fn workload() -> Workload {
        let config = WorkloadConfig::paper().scaled(800, 43_200, 3_000);
        Generator::new(config, 77).unwrap().generate()
    }

    #[test]
    fn accept_all_logs_every_transfer() {
        let w = workload();
        let out = Simulator::new(SimConfig::default()).run(&w, 1);
        assert_eq!(out.trace.len(), w.len());
        assert_eq!(out.server_stats.rejected, 0);
        assert!(out.bytes_delivered > 0);
        for e in out.trace.entries() {
            assert!(e.validate().is_ok());
        }
    }

    #[test]
    fn admission_control_drops_requests() {
        let w = workload();
        let cfg = SimConfig {
            server: ServerConfig {
                admission: AdmissionPolicy::RejectAbove { max_concurrent: 20 },
                ..ServerConfig::default()
            },
            ..SimConfig::default()
        };
        let out = Simulator::new(cfg).run(&w, 1);
        assert!(
            out.server_stats.rejected > 0,
            "expected rejections at cap 20"
        );
        assert_eq!(
            out.server_stats.accepted as usize,
            out.trace.len(),
            "every accepted transfer is logged"
        );
        assert!(out.server_stats.denied_viewer_seconds > 0.0);
        assert!(out.server_stats.peak_concurrent <= 20);
    }

    #[test]
    fn tight_uplink_produces_congestion() {
        let w = workload();
        // Size the uplink far below demand.
        let cfg = SimConfig {
            network: NetworkConfig { uplink_bps: 2e6 },
            ..SimConfig::default()
        };
        let out = Simulator::new(cfg).run(&w, 1);
        assert!(out.congested_transfers > 0);
        // Conservation: bytes delivered can't exceed uplink × horizon.
        assert!(
            (out.bytes_delivered as f64) <= 2e6 / 8.0 * 43_200.0 * 1.001,
            "bytes {}",
            out.bytes_delivered
        );
        // Congested transfers show depressed bandwidth and raised loss.
        let mean_loss: f64 = out
            .trace
            .entries()
            .iter()
            .map(|e| f64::from(e.packet_loss))
            .sum::<f64>()
            / out.trace.len() as f64;
        assert!(mean_loss > 0.01, "mean loss {mean_loss}");
    }

    #[test]
    fn generous_uplink_is_client_bound() {
        let w = workload();
        let cfg = SimConfig {
            network: NetworkConfig { uplink_bps: 1e12 },
            path_congestion_rate: 0.0,
            ..SimConfig::default()
        };
        let out = Simulator::new(cfg).run(&w, 1);
        assert_eq!(out.congested_transfers, 0);
        // Every logged bandwidth equals the client's access capacity.
        for e in out.trace.entries().iter().take(1_000) {
            let caps = [28_800, 33_600, 56_000, 128_000, 256_000, 512_000, 1_500_000];
            let ok = caps.iter().any(|&c| {
                (f64::from(e.avg_bandwidth) - f64::from(c as u32)).abs()
                    < f64::from(c as u32) * 0.02
            });
            assert!(ok, "bandwidth {} matches no class", e.avg_bandwidth);
        }
    }

    #[test]
    fn harvest_anomalies_injected_and_sanitized() {
        let w = workload();
        let cfg = SimConfig {
            harvest_anomaly_rate: 0.5,
            ..SimConfig::default()
        };
        let out = Simulator::new(cfg).run(&w, 1);
        // The 12-hour horizon has no midnight crossing… use a 2-day one.
        let config = WorkloadConfig::paper().scaled(800, 2 * 86_400, 6_000);
        let w2 = Generator::new(config, 78).unwrap().generate();
        let out2 = Simulator::new(cfg).run(&w2, 2);
        let horizon = w2.config().horizon_secs;
        let spanning = out2
            .trace
            .entries()
            .iter()
            .filter(|e| e.duration > horizon)
            .count();
        assert!(spanning > 0, "no anomalies injected");
        let (clean, report) = lsw_trace::sanitize::sanitize(out2.trace.entries().to_vec(), horizon);
        assert_eq!(report.rejected(), spanning);
        assert_eq!(clean.len() + spanning, out2.trace.len());
        // And the 12-hour run had none (no boundary to span).
        assert!(out.trace.entries().iter().all(|e| e.duration <= 43_200));
    }

    #[test]
    fn path_congestion_produces_low_bandwidth_mode() {
        let w = workload();
        let out = Simulator::new(SimConfig::default()).run(&w, 3);
        // ~10% of transfers should be congestion-bound (well below any
        // client class speed).
        let low = out
            .trace
            .entries()
            .iter()
            .filter(|e| e.avg_bandwidth < 20_000)
            .count() as f64
            / out.trace.len() as f64;
        assert!((low - 0.10).abs() < 0.05, "low-bandwidth fraction {low}");
        assert!(out.congested_transfers > 0);
    }

    #[test]
    fn retries_recover_part_of_the_lost_viewing() {
        let w = workload();
        let cap = |retry| SimConfig {
            server: ServerConfig {
                admission: AdmissionPolicy::RejectAbove { max_concurrent: 60 },
                ..ServerConfig::default()
            },
            retry,
            ..SimConfig::default()
        };
        let give_up = Simulator::new(cap(RetryPolicy::GiveUp)).run(&w, 4);
        let retry = Simulator::new(cap(RetryPolicy::RetryAfter {
            delay_secs: 120.0,
            max_attempts: 5,
        }))
        .run(&w, 4);
        assert!(give_up.server_stats.rejected > 0, "fixture must congest");
        assert!(retry.server_stats.retries > 0, "retries must occur");
        // Retrying clients eventually get in: more viewings logged...
        assert!(
            retry.trace.len() > give_up.trace.len(),
            "retry {} vs give-up {} logged transfers",
            retry.trace.len(),
            give_up.trace.len()
        );
        // ...but the content moved on: retried viewings are shorter than
        // their intended spans, so viewer time is still lost (the §1
        // argument survives client persistence).
        let watched: u64 = retry
            .trace
            .entries()
            .iter()
            .map(|e| u64::from(e.duration))
            .sum();
        let intended: f64 = w.transfers().iter().map(|t| t.duration).sum();
        assert!(
            (watched as f64) < intended,
            "live semantics: retries cannot recover the full {intended}s"
        );
    }

    #[test]
    fn retry_respects_intended_stop() {
        // A retry scheduled past the intended stop never happens: no
        // logged transfer may end after its scheduled span.
        let w = workload();
        let cfg = SimConfig {
            server: ServerConfig {
                admission: AdmissionPolicy::RejectAbove { max_concurrent: 30 },
                ..ServerConfig::default()
            },
            retry: RetryPolicy::RetryAfter {
                delay_secs: 300.0,
                max_attempts: 10,
            },
            ..SimConfig::default()
        };
        let out = Simulator::new(cfg).run(&w, 5);
        // Build intended stops by (client, camera, object) is ambiguous;
        // instead verify globally: every logged duration fits within the
        // longest scheduled duration.
        let max_intended = w
            .transfers()
            .iter()
            .map(|t| t.duration)
            .fold(0.0f64, f64::max);
        for e in out.trace.entries() {
            assert!(f64::from(e.duration) <= max_intended + 1.0);
        }
    }

    #[test]
    fn deterministic() {
        let w = workload();
        let a = Simulator::new(SimConfig::default()).run(&w, 9);
        let b = Simulator::new(SimConfig::default()).run(&w, 9);
        assert_eq!(a.trace.entries(), b.trace.entries());
    }
}
