//! Max-min fair sharing of the server uplink across active transfers.
//!
//! Every active transfer wants its client's access-link capacity; the
//! server uplink `U` is shared max-min fairly: if total demand fits, every
//! transfer is client-bound; otherwise a waterfill level `L` satisfies
//! `Σ min(cap_i, L) = U` and each transfer streams at `min(cap_i, L)`.
//!
//! Because client caps take only the seven [`AccessClass`] values, the
//! waterfill is computed over per-class counts in O(7), and per-transfer
//! byte totals come from per-class *cumulative rate integrals*: all
//! transfers of a class stream at the same instantaneous rate, so a
//! transfer's bytes are `(A_c(stop) − A_c(start)) / 8` where `A_c` is the
//! class's accumulated bit count. This keeps paper-scale simulation
//! (millions of events) linear.

use lsw_topology::AccessClass;
use serde::{Deserialize, Serialize};

/// Network configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Server uplink capacity, bits per second.
    pub uplink_bps: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        // Sized so that the paper's observed peaks (~6,000 concurrent
        // transfers averaging ~50 kbit/s) push into mild congestion —
        // reproducing the ~10% congestion-bound transfers of Fig 20.
        Self { uplink_bps: 220e6 }
    }
}

/// The shared-uplink fair-share state.
#[derive(Debug, Clone)]
pub struct FairShareNetwork {
    config: NetworkConfig,
    /// Active transfers per access class.
    active: [u64; AccessClass::ALL.len()],
    /// Cumulative per-class bit integral `A_c` (bits since t = 0).
    integral: [f64; AccessClass::ALL.len()],
    /// Current per-class instantaneous rate (bits/s).
    rate: [f64; AccessClass::ALL.len()],
    /// Time of the last integral update.
    last_update: f64,
}

impl FairShareNetwork {
    /// Creates an idle network.
    pub fn new(config: NetworkConfig) -> Self {
        assert!(config.uplink_bps > 0.0, "uplink must be positive");
        Self {
            config,
            active: [0; 7],
            integral: [0.0; 7],
            rate: [0.0; 7],
            last_update: 0.0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Index of an access class in the per-class arrays.
    fn class_index(class: AccessClass) -> usize {
        AccessClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("AccessClass::ALL is exhaustive") // lsw::allow(L005): ALL covers every variant
    }

    /// Advances the per-class integrals to time `t` (no state change).
    fn advance(&mut self, t: f64) {
        let dt = t - self.last_update;
        debug_assert!(dt >= -1e-9, "time went backwards: {dt}");
        if dt > 0.0 {
            for i in 0..7 {
                self.integral[i] += self.rate[i] * dt;
            }
        }
        self.last_update = t;
    }

    /// Recomputes the waterfill level and per-class rates.
    fn recompute_rates(&mut self) {
        let caps: Vec<f64> = AccessClass::ALL
            .iter()
            .map(|c| f64::from(c.capacity_bps()))
            .collect();
        let demand: f64 = (0..7).map(|i| self.active[i] as f64 * caps[i]).sum();
        if demand <= self.config.uplink_bps {
            for ((rate, &cap), &n) in self.rate.iter_mut().zip(&caps).zip(&self.active) {
                *rate = if n > 0 { cap } else { 0.0 };
            }
            return;
        }
        // Waterfill over the 7 classes, ascending by cap.
        // Solve Σ n_i · min(cap_i, L) = U. Classes are already cap-sorted.
        let mut remaining = self.config.uplink_bps;
        let mut users_left: f64 = (0..7).map(|i| self.active[i] as f64).sum();
        let mut level = 0.0;
        for (&cap, &n) in caps.iter().zip(&self.active) {
            if users_left <= 0.0 {
                break;
            }
            // Can every remaining user get cap_i?
            let need = cap * users_left;
            if need <= remaining {
                // Yes: class i saturates at its cap; pay for it and move on.
                remaining -= cap * n as f64;
                users_left -= n as f64;
                level = cap;
            } else {
                // No: the level lands below cap_i.
                level = remaining / users_left;
                break;
            }
        }
        for ((rate, &cap), &n) in self.rate.iter_mut().zip(&caps).zip(&self.active) {
            *rate = if n > 0 { cap.min(level) } else { 0.0 };
        }
    }

    /// A transfer of the given class starts at time `t`. Returns the class
    /// integral snapshot used later to compute its bytes.
    pub fn start(&mut self, t: f64, class: AccessClass) -> f64 {
        self.advance(t);
        let i = Self::class_index(class);
        self.active[i] += 1;
        self.recompute_rates();
        self.integral[i]
    }

    /// A transfer of the given class stops at time `t`. Given the snapshot
    /// from [`FairShareNetwork::start`], returns the bits it received.
    pub fn stop(&mut self, t: f64, class: AccessClass, start_snapshot: f64) -> f64 {
        self.advance(t);
        let i = Self::class_index(class);
        debug_assert!(self.active[i] > 0, "stop without start");
        let bits = self.integral[i] - start_snapshot;
        self.active[i] -= 1;
        self.recompute_rates();
        bits.max(0.0)
    }

    /// Total active transfers.
    pub fn active_total(&self) -> u64 {
        self.active.iter().sum()
    }

    /// Current instantaneous rate of a class (bits/s).
    pub fn rate_of(&self, class: AccessClass) -> f64 {
        self.rate[Self::class_index(class)]
    }

    /// True when the uplink is currently saturated (waterfill engaged).
    pub fn congested(&self) -> bool {
        let demand: f64 = AccessClass::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| self.active[i] as f64 * f64::from(c.capacity_bps()))
            .sum();
        demand > self.config.uplink_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(uplink: f64) -> FairShareNetwork {
        FairShareNetwork::new(NetworkConfig { uplink_bps: uplink })
    }

    #[test]
    fn uncongested_everyone_gets_cap() {
        let mut n = net(10e6);
        n.start(0.0, AccessClass::Modem56);
        n.start(0.0, AccessClass::Dsl);
        assert_eq!(n.rate_of(AccessClass::Modem56), 56_000.0);
        assert_eq!(n.rate_of(AccessClass::Dsl), 256_000.0);
        assert!(!n.congested());
    }

    #[test]
    fn byte_integral_matches_rate_times_time() {
        let mut n = net(10e6);
        let snap = n.start(0.0, AccessClass::Modem56);
        let bits = n.stop(100.0, AccessClass::Modem56, snap);
        assert!((bits - 5_600_000.0).abs() < 1.0, "bits {bits}");
    }

    #[test]
    fn congestion_waterfills_equally_within_class() {
        // Uplink 100 kbit/s, two 56k modems active: each gets 50k.
        let mut n = net(100_000.0);
        let s1 = n.start(0.0, AccessClass::Modem56);
        let _s2 = n.start(0.0, AccessClass::Modem56);
        assert!(n.congested());
        assert!((n.rate_of(AccessClass::Modem56) - 50_000.0).abs() < 1e-6);
        let bits = n.stop(10.0, AccessClass::Modem56, s1);
        assert!((bits - 500_000.0).abs() < 1.0, "bits {bits}");
    }

    #[test]
    fn waterfill_protects_small_caps() {
        // Uplink 300 kbit/s: one modem (56k) + one LAN (1.5M). Max-min:
        // modem gets its full 56k, LAN gets the remaining 244k.
        let mut n = net(300_000.0);
        n.start(0.0, AccessClass::Modem56);
        n.start(0.0, AccessClass::Lan);
        assert!((n.rate_of(AccessClass::Modem56) - 56_000.0).abs() < 1e-6);
        assert!((n.rate_of(AccessClass::Lan) - 244_000.0).abs() < 1e-6);
    }

    #[test]
    fn deep_congestion_equalizes_all() {
        // Uplink 40 kbit/s shared by a modem and a LAN user: both get 20k.
        let mut n = net(40_000.0);
        n.start(0.0, AccessClass::Modem56);
        n.start(0.0, AccessClass::Lan);
        assert!((n.rate_of(AccessClass::Modem56) - 20_000.0).abs() < 1e-6);
        assert!((n.rate_of(AccessClass::Lan) - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn rates_rise_when_others_leave() {
        let mut n = net(100_000.0);
        let s1 = n.start(0.0, AccessClass::Modem56);
        let s2 = n.start(0.0, AccessClass::Modem56);
        // Congested 0–10 s at 50k each; then one leaves, survivor gets 56k.
        let bits1 = n.stop(10.0, AccessClass::Modem56, s1);
        assert!((bits1 - 500_000.0).abs() < 1.0);
        let bits2 = n.stop(20.0, AccessClass::Modem56, s2);
        // 10 s at 50k + 10 s at 56k.
        assert!((bits2 - 1_060_000.0).abs() < 1.0, "bits2 {bits2}");
    }

    #[test]
    fn conservation_under_congestion() {
        // Total bits delivered never exceed uplink × time.
        let mut n = net(150_000.0);
        let snaps: Vec<f64> = (0..5).map(|_| n.start(0.0, AccessClass::Dsl)).collect();
        let total: f64 = snaps
            .into_iter()
            .map(|s| n.stop(100.0, AccessClass::Dsl, s))
            .sum();
        assert!(total <= 150_000.0 * 100.0 * 1.0001, "total {total}");
        // And the uplink was fully used (demand exceeded it).
        assert!(total >= 150_000.0 * 100.0 * 0.999, "total {total}");
    }

    #[test]
    fn active_total_tracks() {
        let mut n = net(1e9);
        assert_eq!(n.active_total(), 0);
        let s = n.start(0.0, AccessClass::Cable);
        n.start(1.0, AccessClass::Isdn);
        assert_eq!(n.active_total(), 2);
        n.stop(5.0, AccessClass::Cable, s);
        assert_eq!(n.active_total(), 1);
    }
}
