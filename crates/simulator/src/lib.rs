//! # lsw-sim — discrete-event media server simulator
//!
//! The substrate that stands in for the paper's Windows Media Server and
//! its network path. Where the generator (`lsw-core`) *schedules* what
//! clients want, the simulator *plays it out* against finite resources and
//! writes the kind of log the paper's authors received:
//!
//! * [`des`] — a minimal discrete-event core (time-ordered event queue).
//! * [`network`] — the server uplink shared max-min fairly among active
//!   transfers, with per-transfer caps from client access links. Because
//!   there are only seven access classes, fair-share recomputation and
//!   per-class byte integration are O(7) per event, so paper-scale traces
//!   (11M events) simulate in seconds.
//! * [`server`] — the media server: admission policy, CPU-load model,
//!   accept/reject accounting (the paper's §1 argument that admission
//!   control is not viable for live content is made measurable here).
//! * [`sim`] — the simulation driver: takes a generated
//!   [`lsw_core::Workload`], runs start/stop events through server and
//!   network, and emits a `lsw-trace` trace — including, optionally, the
//!   §2.4 harvest-spanning log anomaly for the sanitizer to catch.

#![warn(missing_docs)]

pub mod des;
pub mod network;
pub mod server;
pub mod sim;

pub use network::{FairShareNetwork, NetworkConfig};
pub use server::{AdmissionPolicy, ServerConfig, ServerStats};
pub use sim::{RetryPolicy, SimConfig, SimOutput, Simulator};
