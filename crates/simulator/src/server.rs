//! The media server model: admission, CPU load, accounting.
//!
//! §2.4 of the paper audits server CPU to rule out overload effects; §1
//! argues that admission control ("just reject when full") is not viable
//! for live content because a denied request is a *lost viewing*, not a
//! deferred one. Both arguments are made measurable here: the CPU model
//! ties utilization to concurrency, and the admission policy is pluggable
//! so the capacity-planning example can quantify denied viewer-seconds.

use serde::{Deserialize, Serialize};

/// Admission policy for new transfer requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Accept every request (the paper's server: provisioned to never say
    /// no — overloads "extremely rare").
    AcceptAll,
    /// Reject requests when the given number of transfers is active —
    /// the stored-media playbook the paper's intro argues against.
    RejectAbove {
        /// Maximum concurrent transfers admitted.
        max_concurrent: u64,
    },
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Concurrent transfers that drive the CPU to 100%.
    pub cpu_capacity_transfers: f64,
    /// Baseline CPU utilization with an idle server.
    pub cpu_baseline: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionPolicy::AcceptAll,
            cpu_capacity_transfers: lsw_core::workload::CPU_CAPACITY_TRANSFERS,
            cpu_baseline: 0.005,
        }
    }
}

/// Running accept/reject accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests admitted.
    pub accepted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Viewer-seconds denied by rejections (requested durations of
    /// rejected transfers) — the paper's "denying access" cost.
    pub denied_viewer_seconds: f64,
    /// Peak concurrent transfers observed.
    pub peak_concurrent: u64,
    /// Retry attempts scheduled after rejections (filled by the driver).
    pub retries: u64,
}

impl ServerStats {
    /// Fraction of requests rejected.
    pub fn rejection_rate(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }
}

/// The server: decides admission and reports CPU.
#[derive(Debug, Clone)]
pub struct MediaServer {
    config: ServerConfig,
    active: u64,
    stats: ServerStats,
}

impl MediaServer {
    /// Creates an idle server.
    pub fn new(config: ServerConfig) -> Self {
        assert!(
            config.cpu_capacity_transfers > 0.0,
            "cpu capacity must be positive"
        );
        assert!(
            (0.0..1.0).contains(&config.cpu_baseline),
            "baseline in [0,1)"
        );
        Self {
            config,
            active: 0,
            stats: ServerStats::default(),
        }
    }

    /// Handles a transfer request of `duration` seconds; returns whether
    /// it was admitted (and updates accounting).
    pub fn request(&mut self, duration: f64) -> bool {
        let admit = match self.config.admission {
            AdmissionPolicy::AcceptAll => true,
            AdmissionPolicy::RejectAbove { max_concurrent } => self.active < max_concurrent,
        };
        if admit {
            self.active += 1;
            self.stats.accepted += 1;
            self.stats.peak_concurrent = self.stats.peak_concurrent.max(self.active);
        } else {
            self.stats.rejected += 1;
            self.stats.denied_viewer_seconds += duration.max(0.0);
        }
        admit
    }

    /// A transfer finished.
    pub fn release(&mut self) {
        debug_assert!(self.active > 0, "release without request");
        self.active = self.active.saturating_sub(1);
    }

    /// Current CPU utilization, from concurrency.
    pub fn cpu_util(&self) -> f64 {
        (self.config.cpu_baseline + self.active as f64 / self.config.cpu_capacity_transfers)
            .min(1.0)
    }

    /// Currently active transfers.
    pub fn active(&self) -> u64 {
        self.active
    }

    /// Accounting so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_all_never_rejects() {
        let mut s = MediaServer::new(ServerConfig::default());
        for _ in 0..10_000 {
            assert!(s.request(10.0));
        }
        assert_eq!(s.stats().rejected, 0);
        assert_eq!(s.stats().peak_concurrent, 10_000);
    }

    #[test]
    fn reject_above_limit() {
        let mut s = MediaServer::new(ServerConfig {
            admission: AdmissionPolicy::RejectAbove { max_concurrent: 2 },
            ..ServerConfig::default()
        });
        assert!(s.request(10.0));
        assert!(s.request(20.0));
        assert!(!s.request(30.0)); // full
        assert_eq!(s.stats().rejected, 1);
        assert_eq!(s.stats().denied_viewer_seconds, 30.0);
        s.release();
        assert!(s.request(5.0)); // slot freed
        assert!((s.stats().rejection_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn denied_viewer_seconds_accumulate_over_churn() {
        // Fill-reject-drain cycles: every rejection charges exactly the
        // duration it asked for, admitted traffic charges nothing, and
        // the tally never resets across churn.
        let mut s = MediaServer::new(ServerConfig {
            admission: AdmissionPolicy::RejectAbove { max_concurrent: 3 },
            ..ServerConfig::default()
        });
        let mut expected = 0.0;
        for round in 0..50u32 {
            for _ in 0..3 {
                assert!(s.request(f64::from(round)));
            }
            for k in 0..2u32 {
                let d = f64::from(round * 10 + k) + 0.5;
                assert!(!s.request(d));
                expected += d;
            }
            for _ in 0..3 {
                s.release();
            }
        }
        assert_eq!(s.stats().accepted, 150);
        assert_eq!(s.stats().rejected, 100);
        assert_eq!(s.stats().peak_concurrent, 3);
        assert!((s.stats().denied_viewer_seconds - expected).abs() < 1e-9);
        // A hostile negative duration counts the rejection but can never
        // shrink the viewer-seconds already owed.
        for _ in 0..3 {
            assert!(s.request(1.0));
        }
        assert!(!s.request(-7.0));
        assert_eq!(s.stats().rejected, 101);
        assert!((s.stats().denied_viewer_seconds - expected).abs() < 1e-9);
    }

    #[test]
    fn cpu_tracks_concurrency() {
        let mut s = MediaServer::new(ServerConfig {
            cpu_capacity_transfers: 100.0,
            cpu_baseline: 0.0,
            ..ServerConfig::default()
        });
        assert_eq!(s.cpu_util(), 0.0);
        for _ in 0..25 {
            s.request(1.0);
        }
        assert!((s.cpu_util() - 0.25).abs() < 1e-12);
        for _ in 0..200 {
            s.request(1.0);
        }
        assert_eq!(s.cpu_util(), 1.0); // clamped
    }

    #[test]
    fn paper_scale_cpu_stays_below_ten_percent() {
        // §2.4: peaks of ~6,000 concurrent transfers stay below 10% CPU.
        let mut s = MediaServer::new(ServerConfig::default());
        for _ in 0..6_000 {
            s.request(1.0);
        }
        assert!(s.cpu_util() < 0.10, "cpu {}", s.cpu_util());
    }
}
