//! Minimal discrete-event simulation core.
//!
//! A time-ordered queue of opaque events. Ties are broken by insertion
//! sequence so simulation runs are deterministic. The event payload is a
//! type parameter; the driver in [`crate::sim`] uses start/stop markers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in seconds. A newtype over `f64` with total ordering
/// (`NaN` is rejected at insertion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(pub f64);

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A deterministic, time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
}

/// Wrapper so the payload never participates in ordering.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    /// Schedules an event at time `t`.
    ///
    /// # Panics
    /// Panics when `t` is NaN.
    pub fn schedule(&mut self, t: f64, event: E) {
        assert!(!t.is_nan(), "cannot schedule an event at NaN");
        self.heap
            .push(Reverse((SimTime(t), self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t.0, e.0))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse((t, _, _))| t.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 1);
        q.schedule(2.0, 2);
        q.schedule(2.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "late");
        q.schedule(1.0, "early");
        assert_eq!(q.pop(), Some((1.0, "early")));
        q.schedule(5.0, "mid");
        assert_eq!(q.pop(), Some((5.0, "mid")));
        assert_eq!(q.pop(), Some((10.0, "late")));
    }
}
