//! Minimal discrete-event simulation core.
//!
//! A time-ordered queue of opaque events. Ties are broken by insertion
//! sequence so simulation runs are deterministic. The event payload is a
//! type parameter; the driver in [`crate::sim`] uses start/stop markers.
//!
//! # Calendar-queue scheduling
//!
//! The queue is a calendar queue (Brown 1988): simulation time is cut
//! into fixed-width "days", day `d` hashes to bucket `d % n_buckets`, and
//! each bucket is a small [`BinaryHeap`] ordered by `(time, seq)`. Under
//! the steady event population of a paper-scale run, a schedule lands in
//! its bucket in O(log bucket_len) ≈ O(1) and a pop inspects one bucket,
//! replacing the O(log n) sift of one global heap over millions of
//! events.
//!
//! Correctness rests on two invariants:
//!
//! - **Day monotonicity.** `day(t)` is non-decreasing in `t` and all
//!   events of one day share one bucket, so draining days in ascending
//!   order and each bucket-heap in `(time, seq)` order yields the global
//!   `(time, seq)` order — exactly the ordering the old global heap
//!   produced, tie-by-insertion-seq included.
//! - **Cursor soundness.** `current_day` never exceeds the day of the
//!   earliest pending event: pops advance it only through verified-empty
//!   days, and an out-of-order schedule into the past pulls it back.
//!
//! When a full scan round finds every bucket day-empty (a sparse region),
//! the cursor jumps straight to the earliest pending day instead of
//! spinning second by second. The bucket count doubles or halves with the
//! event population; redistribution only moves events between bucket
//!  heaps, and since `(time, seq)` keys are unique the pop sequence is
//! independent of any heap's internal layout.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in seconds. A newtype over `f64` with total ordering
/// (`NaN` is rejected at insertion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(pub f64);

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Seconds per calendar day. One sim-second per day fits the paper's
/// workloads (event times are second-scaled), keeps `day()` a cheap
/// floor, and leaves sparse stretches to the direct-jump path.
const DAY_WIDTH: f64 = 1.0;

/// Bucket-count bounds: floors allocation for tiny queues, caps the
/// redistribution cost for huge ones.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 20;

/// One pending event; the key is `(time, seq)` and the payload never
/// participates in ordering.
type Slot<E> = Reverse<(SimTime, u64, EventBox<E>)>;

/// A deterministic, time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<BinaryHeap<Slot<E>>>,
    /// Day of the earliest event not yet proven popped-past; a lower
    /// bound on the day of every pending event.
    current_day: u64,
    len: usize,
    seq: u64,
}

/// Wrapper so the payload never participates in ordering.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Day index of time `t`. Monotone non-decreasing in `t` over every
/// non-NaN float: negatives clamp to day 0, +inf saturates to the last
/// day (the `as u64` cast saturates on both ends).
fn day_of(t: f64) -> u64 {
    (t / DAY_WIDTH).floor() as u64
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue sized for `n` pending events.
    pub fn with_capacity(n: usize) -> Self {
        let buckets = (n / 2).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        Self {
            buckets: (0..buckets).map(|_| BinaryHeap::new()).collect(),
            current_day: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Schedules an event at time `t`.
    ///
    /// # Panics
    /// Panics when `t` is NaN.
    pub fn schedule(&mut self, t: f64, event: E) {
        assert!(!t.is_nan(), "cannot schedule an event at NaN");
        if self.len + 1 > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize(self.buckets.len() * 2);
        }
        let day = day_of(t);
        // A schedule into the past (relative to the scan cursor) must
        // pull the cursor back or the event would be skipped.
        self.current_day = self.current_day.min(day);
        let b = (day % self.buckets.len() as u64) as usize;
        self.buckets[b].push(Reverse((SimTime(t), self.seq, EventBox(event))));
        self.seq += 1;
        self.len += 1;
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        if self.len == 0 {
            return None;
        }
        if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        let nb = self.buckets.len() as u64;
        let mut checked = 0u64;
        loop {
            let b = (self.current_day % nb) as usize;
            // The bucket heap's top is its (time, seq) minimum, so if its
            // day is not `current_day`, no current-day event is in this
            // bucket at all.
            let hit = self.buckets[b]
                .peek()
                .is_some_and(|Reverse((t, _, _))| day_of(t.0) == self.current_day);
            if hit {
                if let Some(Reverse((t, _, e))) = self.buckets[b].pop() {
                    self.len -= 1;
                    return Some((t.0, e.0));
                }
            }
            checked += 1;
            self.current_day = self.current_day.saturating_add(1);
            if checked >= nb {
                // A whole round of day-empty buckets: jump the cursor
                // straight to the earliest pending day instead of walking
                // a sparse region one day at a time.
                let min_day = self
                    .buckets
                    .iter()
                    .filter_map(|h| h.peek().map(|Reverse((t, _, _))| day_of(t.0)))
                    .min();
                match min_day {
                    Some(d) => self.current_day = d,
                    None => return None, // unreachable: len > 0
                }
                checked = 0;
            }
        }
    }

    /// Time of the earliest pending event.
    ///
    /// Scans every bucket top (the queue keeps no global heap), so this
    /// is O(buckets) — fine for its observational uses, not for a
    /// pop-loop.
    pub fn peek_time(&self) -> Option<f64> {
        self.buckets
            .iter()
            .filter_map(|h| h.peek().map(|Reverse((t, s, _))| (*t, *s)))
            .min()
            .map(|(t, _)| t.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rebuckets every pending event into `new_size` buckets. Pop results
    /// are unaffected: `(time, seq)` keys are unique, so the total pop
    /// order never depends on heap layout or redistribution order.
    fn resize(&mut self, new_size: usize) {
        let new_size = new_size.clamp(MIN_BUCKETS, MAX_BUCKETS);
        if new_size == self.buckets.len() {
            return;
        }
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_size).map(|_| BinaryHeap::new()).collect(),
        );
        for heap in old {
            for Reverse((t, s, e)) in heap {
                let b = (day_of(t.0) % new_size as u64) as usize;
                self.buckets[b].push(Reverse((t, s, e)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, 1);
        q.schedule(2.0, 2);
        q.schedule(2.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn sub_day_ties_order_by_time_then_seq() {
        // Several distinct fractional times inside one calendar day (one
        // bucket) plus exact ties: the heap inside the bucket must order
        // by (time, seq).
        let mut q = EventQueue::new();
        q.schedule(0.75, "d");
        q.schedule(0.25, "a");
        q.schedule(0.5, "b");
        q.schedule(0.5, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "late");
        q.schedule(1.0, "early");
        assert_eq!(q.pop(), Some((1.0, "early")));
        q.schedule(5.0, "mid");
        assert_eq!(q.pop(), Some((5.0, "mid")));
        assert_eq!(q.pop(), Some((10.0, "late")));
    }

    #[test]
    fn schedule_into_the_past_pulls_the_cursor_back() {
        let mut q = EventQueue::new();
        q.schedule(1_000.0, "far");
        assert_eq!(q.pop(), Some((1_000.0, "far")));
        // The cursor sits at day 1000 now; an earlier event must still
        // come out first.
        q.schedule(3.0, "early");
        q.schedule(2_000.0, "later");
        assert_eq!(q.pop(), Some((3.0, "early")));
        assert_eq!(q.pop(), Some((2_000.0, "later")));
    }

    #[test]
    fn sparse_days_use_the_direct_jump() {
        // Events separated by far more than the bucket count force the
        // full-round jump path.
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.schedule(1e6 * i as f64, i);
        }
        for i in 0..8u64 {
            assert_eq!(q.pop(), Some((1e6 * i as f64, i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn negative_and_extreme_times_are_totally_ordered() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, "inf");
        q.schedule(-3.5, "neg");
        q.schedule(0.0, "zero");
        q.schedule(-10.0, "most-negative");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["most-negative", "neg", "zero", "inf"]);
    }

    #[test]
    fn grows_and_shrinks_without_reordering() {
        // Deterministic pseudo-random times, enough volume to trigger
        // both grow and shrink resizes; pop order must match a sort by
        // (time, insertion seq).
        let mut state = 0x0123_4567_89ab_cdefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut q = EventQueue::new();
        let mut expect: Vec<(f64, u64)> = Vec::new();
        for i in 0..5_000u64 {
            // Cluster times so day-ties are common.
            let t = f64::from((next() % 700) as u32) / 3.0;
            q.schedule(t, i);
            expect.push((t, i));
        }
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let got: Vec<(f64, u64)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn matches_reference_heap_under_interleaving() {
        // Differential test against a plain BinaryHeap reference, with
        // interleaved schedules and pops (including re-scheduling behind
        // the cursor).
        let mut state = 0xfeed_f00d_dead_beefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut q = EventQueue::new();
        let mut reference: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        for (seq, round) in (0u64..2_000).zip(0..) {
            let t = f64::from((next() % 100_000) as u32) / 7.0;
            q.schedule(t, seq);
            reference.push(Reverse((SimTime(t), seq)));
            if round % 3 == 0 {
                let got = q.pop();
                let want = reference.pop().map(|Reverse((t, s))| (t.0, s));
                assert_eq!(got, want);
            }
        }
        loop {
            let got = q.pop();
            let want = reference.pop().map(|Reverse((t, s))| (t.0, s));
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
