//! Threaded orchestration of the whole overlay: origin + N relays +
//! per-relay load drivers, one shared clock, one shared registry, one
//! multi-tier characterization tap.
//!
//! The origin is the existing [`ReplayServer`] — unchanged: it cannot
//! tell a relay subscription from a very patient client. Relays route
//! by the [`Topology`]'s key (AS by default — the paper's client-layer
//! concentration axis), each subscribing once per live object and
//! fanning out to the trace clients the topology assigns to it. Every
//! relay's driver pins the same global epoch so the tiers share one
//! launch timeline.
//!
//! The run ends with the **egress report**: origin egress bytes versus
//! client-delivered bytes. With `f` clients per object per relay tier
//! collapsing onto one subscription, origin egress falls toward `1/f` —
//! the quantitative case for the hierarchical architecture the paper's
//! workload (few hot live objects, many concurrent viewers) invites.

use crate::relay::{plan_feeds, Relay, RelayConfig};
use crate::topology::Topology;
use lsw_replay::clock::WallClock;
use lsw_replay::driver::{drive, DriveOutcome, DriverConfig};
use lsw_replay::metrics::{Registry, Snapshot};
use lsw_replay::server::{ReplayServer, ServerConfig};
use lsw_sim::server::ServerStats;
use lsw_stream::{MultiTap, StreamConfig, StreamReport};
use lsw_trace::schedule::Schedule;
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;

/// Configuration for one overlay run.
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// The topology: relay count and routing key.
    pub topology: Topology,
    /// Origin-tier server configuration (admission, pacing plane,
    /// drain budget). `lookahead` is overridden with the subscription
    /// horizon; `stream` seeds the per-tier taps.
    pub origin: ServerConfig,
    /// Relay-tier configuration template; `origin`, `index`, and
    /// `compression` are filled in per relay.
    pub relay: RelayConfig,
    /// Driver worker threads per relay.
    pub driver_workers: usize,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        Self {
            topology: Topology {
                relays: 2,
                ..Topology::default()
            },
            origin: ServerConfig::default(),
            relay: RelayConfig::default(),
            driver_workers: 2,
        }
    }
}

/// Origin-egress accounting: what the hierarchy saved.
#[derive(Debug, Clone, Copy, Default)]
pub struct EgressReport {
    /// Wire payload bytes the origin sent (subscriptions only, in an
    /// edge run — relays are its only clients).
    pub origin_bytes: u64,
    /// Wire payload bytes delivered to trace clients across all relays.
    pub delivered_bytes: u64,
    /// Upstream subscriptions the relays opened.
    pub subscriptions: u64,
    /// Subscriptions the origin's admission refused.
    pub upstream_busy: u64,
}

impl EgressReport {
    /// Origin egress as a fraction of client-delivered bytes — the
    /// fan-in savings headline (≤ 1/f for fan-out factor f).
    pub fn egress_ratio(&self) -> f64 {
        if self.delivered_bytes == 0 {
            return if self.origin_bytes == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.origin_bytes as f64 / self.delivered_bytes as f64
        }
    }
}

/// Everything a finished overlay run hands back.
#[derive(Debug)]
pub struct EdgeOutcome {
    /// Per-relay characterization reports, tier order.
    pub tier_reports: Vec<StreamReport>,
    /// The edge-aggregated report — what all relay tiers together
    /// served; this is what the closed loop diffs against the trace.
    pub merged: StreamReport,
    /// Summed driver accounting across relays.
    pub driven: DriveOutcome,
    /// Relay-tier admission stats, summed.
    pub admission: ServerStats,
    /// Origin-tier admission stats.
    pub origin_admission: ServerStats,
    /// Fan-in savings accounting.
    pub egress: EgressReport,
    /// Final shared-registry capture (srv.* = origin, edge.* = relays,
    /// drv.* = drivers).
    pub metrics: Snapshot,
}

/// Sums relay-tier admission stats (denied viewer-seconds add; peaks
/// take the max across relays, which undercounts a synchronized peak —
/// per-relay peaks never co-occur by construction of the routing).
fn sum_stats(stats: &[ServerStats]) -> ServerStats {
    let mut sum = ServerStats::default();
    for s in stats {
        sum.accepted += s.accepted;
        sum.rejected += s.rejected;
        sum.denied_viewer_seconds += s.denied_viewer_seconds;
        sum.peak_concurrent = sum.peak_concurrent.max(s.peak_concurrent);
        sum.retries += s.retries;
    }
    sum
}

/// Runs the full overlay: starts the origin, plans and starts the
/// relays, drives each relay's routed sub-schedule on the shared clock,
/// drains the tiers in leaf-to-root order, and returns the per-tier and
/// edge-aggregated characterizations plus the egress report.
pub fn run_edge(
    schedule: &Schedule,
    cfg: &EdgeConfig,
    registry: Arc<Registry>,
) -> io::Result<EdgeOutcome> {
    let relays = cfg.topology.relays.max(1) as usize;
    let compression = cfg.origin.compression.max(1.0);
    let plans = plan_feeds(schedule, &cfg.topology);

    // The origin must hold subscription-length transfers in its tap
    // window and pace them to completion; its lookahead is the horizon
    // of the longest planned span, not just the longest client.
    let horizon = plans
        .iter()
        .flat_map(|m| m.values())
        .map(|p| p.span_duration)
        .max()
        .unwrap_or(0)
        .max(schedule.max_duration());
    let origin_cfg = ServerConfig {
        compression,
        lookahead: horizon,
        ..cfg.origin.clone()
    };

    let clock = Arc::new(WallClock::start());
    let origin = ReplayServer::start(
        origin_cfg,
        &schedule.object_rates(),
        Arc::clone(&clock),
        Arc::clone(&registry),
    )?;
    let origin_addr = origin.local_addr();

    let tap = Arc::new(Mutex::new({
        let mut tap = MultiTap::new(cfg.origin.stream.clone(), relays);
        tap.preset_lookahead(schedule.max_duration());
        tap
    }));

    // Partition the schedule: routing preserves relative start order
    // within each relay because the source order is already sorted.
    let mut subs: Vec<Schedule> = (0..relays)
        .map(|_| Schedule {
            transfers: Vec::new(),
            stats: schedule.stats,
        })
        .collect();
    for t in &schedule.transfers {
        let r = (cfg.topology.route(t) as usize).min(relays - 1);
        subs[r].transfers.push(*t);
    }
    let epoch = schedule.transfers.first().map(|t| t.start);

    let mut nodes = Vec::with_capacity(relays);
    for (i, plan) in plans.into_iter().enumerate() {
        let rcfg = RelayConfig {
            origin: origin_addr,
            compression,
            index: u32::try_from(i).unwrap_or(0),
            ..cfg.relay.clone()
        };
        nodes.push(Relay::start(
            rcfg,
            plan,
            Arc::clone(&tap),
            Arc::clone(&clock),
            &registry,
        )?);
    }

    // Drive every relay's sub-schedule concurrently on the shared
    // clock; the pinned epoch keeps the launch timelines aligned.
    let driven = {
        let clock = &clock;
        let registry = &registry;
        let results: Vec<io::Result<DriveOutcome>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = nodes
                .iter()
                .zip(&subs)
                .map(|(node, sub)| {
                    let mut dcfg = DriverConfig::new(node.local_addr(), compression);
                    dcfg.workers = cfg.driver_workers;
                    dcfg.epoch = epoch;
                    s.spawn(move || drive(sub, &dcfg, clock, registry))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut sum = DriveOutcome::default();
        for r in results {
            sum.absorb(r?);
        }
        sum
    };

    // Leaf-to-root drain: relays first (they close their upstream
    // subscriptions on exit), then the origin.
    for node in &nodes {
        node.shutdown();
    }
    let deadline = clock.now().saturating_add(cfg.origin.drain);
    while nodes.iter().any(|n| n.active() > 0) && clock.now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let relay_stats: Vec<ServerStats> = nodes.into_iter().map(Relay::finish).collect();
    let origin_out = origin.finish();

    let snapshot = registry.snapshot();
    let egress = EgressReport {
        origin_bytes: snapshot.value("srv.bytes_sent").unwrap_or(0),
        delivered_bytes: snapshot.value("edge.delivered_bytes").unwrap_or(0),
        subscriptions: snapshot.value("edge.subscriptions").unwrap_or(0),
        upstream_busy: snapshot.value("edge.upstream_busy").unwrap_or(0),
    };

    let tap = std::mem::replace(&mut *tap.lock(), MultiTap::new(StreamConfig::default(), 0));
    let (tier_reports, merged) = tap.finalize();

    Ok(EdgeOutcome {
        tier_reports,
        merged,
        driven,
        admission: sum_stats(&relay_stats),
        origin_admission: origin_out.admission,
        egress,
        metrics: snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_trace::event::LogEntryBuilder;
    use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
    use lsw_trace::LogEntry;

    /// Live-heavy: many viewers, three hot objects, overlapping spans.
    fn live_heavy(clients: u32) -> Schedule {
        let entries: Vec<LogEntry> = (0..clients)
            .map(|i| {
                let duration = 30 + (i % 4) * 10;
                LogEntryBuilder::new()
                    .span(i % 12, duration)
                    .client(ClientId(i))
                    .origin(
                        Ipv4Addr(0x0a00_0000 + i),
                        AsId((i % 11) as u16),
                        CountryCode(*b"br"),
                    )
                    .object(ObjectId((i % 3) as u16), 1)
                    .transfer_stats(u64::from(duration + 1) * 8_000, 64_000, 0.0)
                    .build()
            })
            .collect();
        Schedule::from_entries(&entries)
    }

    #[test]
    fn overlay_smoke_completes_every_client_and_saves_origin_egress() {
        let s = live_heavy(96);
        let cfg = EdgeConfig {
            topology: "origin:2".parse().expect("topology"),
            origin: ServerConfig {
                compression: 400.0,
                ..ServerConfig::default()
            },
            ..EdgeConfig::default()
        };
        let out = run_edge(&s, &cfg, Arc::new(Registry::new())).expect("edge run");
        assert_eq!(out.driven.launched, 96);
        assert_eq!(out.driven.connect_failures, 0);
        assert_eq!(out.driven.rejected, 0);
        assert_eq!(
            out.driven.completed, 96,
            "short: {} (driver saw truncated transfers)",
            out.driven.short
        );
        // Every completion reached the edge-aggregated tap.
        assert_eq!(out.merged.accounting.kept, 96);
        assert_eq!(out.tier_reports.len(), 2);
        let tier_kept: u64 = out.tier_reports.iter().map(|r| r.accounting.kept).sum();
        assert_eq!(tier_kept, 96);
        // Fan-in savings: 96 clients collapse onto ≤ 6 subscriptions
        // (3 objects × 2 relays), so origin egress is a small fraction
        // of what the clients received.
        assert!(out.egress.subscriptions <= 6);
        assert!(out.egress.delivered_bytes > 0);
        assert!(
            out.egress.egress_ratio() < 0.5,
            "origin {} delivered {}",
            out.egress.origin_bytes,
            out.egress.delivered_bytes
        );
        // Origin saw only relay subscriptions.
        assert_eq!(
            out.origin_admission.accepted, out.egress.subscriptions,
            "origin admitted exactly the subscriptions"
        );
    }
}
