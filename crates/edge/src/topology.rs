//! Topology grammar and client→relay routing.
//!
//! The CLI flag `--topology origin[:relays[:key]]` selects the overlay
//! shape: `origin` alone (or `relays = 0`) is today's single-tier
//! replay; `origin:N` interposes `N` relay nodes; the optional third
//! segment picks the routing key that assigns trace clients to relays.
//!
//! Routing is keyed on the paper's client-layer concentration: live
//! audiences cluster by autonomous system and country, so an edge
//! deployment pins each AS (default) or country to one relay and the
//! relay's single origin subscription serves that whole cluster. The
//! assignment must be a pure function of the trace record — both the
//! threaded harness and the virtual-time executor route with it, and
//! byte-reproducibility requires they agree — so it is the workspace's
//! deterministic `hash64` over the key, mod the relay count.

use lsw_stream::sketch::hash64;
use lsw_trace::schedule::ScheduledTransfer;
use std::fmt;
use std::str::FromStr;

/// Which trace field clusters clients onto relays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteBy {
    /// By autonomous system (the paper's strongest concentration axis).
    #[default]
    As,
    /// By country of the AS.
    Country,
    /// By player id — no locality, the adversarial spread case.
    Client,
}

impl RouteBy {
    /// The routing key of one transfer under this policy.
    fn key(self, t: &ScheduledTransfer) -> u64 {
        match self {
            RouteBy::As => u64::from(t.as_id.0),
            RouteBy::Country => u64::from(u16::from_be_bytes(t.country.0)) | (1 << 32),
            RouteBy::Client => u64::from(t.client.0) | (1 << 33),
        }
    }
}

impl fmt::Display for RouteBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RouteBy::As => "as",
            RouteBy::Country => "country",
            RouteBy::Client => "client",
        })
    }
}

/// A parsed `--topology` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Relay nodes between the origin and the clients (0 = single tier).
    pub relays: u32,
    /// How trace clients are assigned to relays.
    pub route_by: RouteBy,
}

impl Default for Topology {
    fn default() -> Self {
        Self {
            relays: 0,
            route_by: RouteBy::As,
        }
    }
}

impl Topology {
    /// Whether any relay tier is interposed at all.
    pub fn is_edge(&self) -> bool {
        self.relays > 0
    }

    /// Deterministically routes one transfer to a relay index.
    pub fn route(&self, t: &ScheduledTransfer) -> u32 {
        if self.relays == 0 {
            return 0;
        }
        // Truncation is exact: the modulus fits u32.
        #[allow(clippy::cast_possible_truncation)]
        {
            (hash64(self.route_by.key(t)) % u64::from(self.relays)) as u32
        }
    }
}

impl FromStr for Topology {
    type Err = String;

    /// Parses `origin[:relays[:key]]`, e.g. `origin`, `origin:2`,
    /// `origin:4:country`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        match parts.next() {
            Some("origin") => {}
            _ => return Err(format!("topology must start with `origin`: {s:?}")),
        }
        let mut topo = Topology::default();
        if let Some(relays) = parts.next() {
            topo.relays = relays
                .parse::<u32>()
                .map_err(|_| format!("relay count must be a number: {relays:?}"))?;
            if topo.relays > 256 {
                return Err(format!("relay count {} exceeds the 256 cap", topo.relays));
            }
        }
        if let Some(key) = parts.next() {
            topo.route_by = match key {
                "as" => RouteBy::As,
                "country" => RouteBy::Country,
                "client" => RouteBy::Client,
                other => return Err(format!("routing key must be as|country|client: {other:?}")),
            };
        }
        if parts.next().is_some() {
            return Err(format!("topology has too many segments: {s:?}"));
        }
        Ok(topo)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.relays == 0 {
            f.write_str("origin")
        } else {
            write!(f, "origin:{}:{}", self.relays, self.route_by)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_trace::event::LogEntryBuilder;
    use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};

    fn transfer(client: u32, as_id: u16, country: [u8; 2]) -> ScheduledTransfer {
        ScheduledTransfer::from_entry(
            &LogEntryBuilder::new()
                .span(0, 10)
                .client(ClientId(client))
                .origin(Ipv4Addr(0x0a00_0001), AsId(as_id), CountryCode(country))
                .object(ObjectId(1), 0)
                .transfer_stats(1_000, 64_000, 0.0)
                .build(),
        )
    }

    #[test]
    fn grammar_round_trips() {
        for s in [
            "origin",
            "origin:2:as",
            "origin:4:country",
            "origin:8:client",
        ] {
            let t: Topology = s.parse().unwrap();
            assert_eq!(t.to_string(), s);
        }
        // `origin:0` and bare `origin` normalize to the same shape.
        assert_eq!(
            "origin:0".parse::<Topology>().unwrap().to_string(),
            "origin"
        );
        assert_eq!(
            "origin:3".parse::<Topology>().unwrap().route_by,
            RouteBy::As
        );
    }

    #[test]
    fn bad_grammar_is_rejected() {
        for s in [
            "",
            "edge:2",
            "origin:x",
            "origin:2:zip",
            "origin:2:as:9",
            "origin:999",
        ] {
            assert!(s.parse::<Topology>().is_err(), "{s:?} must not parse");
        }
    }

    #[test]
    fn routing_is_stable_and_key_sensitive() {
        let topo = Topology {
            relays: 4,
            route_by: RouteBy::As,
        };
        let a = transfer(1, 7, *b"BR");
        let b = transfer(2, 7, *b"US");
        // Same AS → same relay regardless of client/country.
        assert_eq!(topo.route(&a), topo.route(&b));
        assert_eq!(topo.route(&a), topo.route(&a));
        assert!(topo.route(&a) < 4);

        let by_client = Topology {
            relays: 4,
            route_by: RouteBy::Client,
        };
        // Client routing spreads distinct clients across relays.
        let hits: std::collections::BTreeSet<u32> = (0..64)
            .map(|c| by_client.route(&transfer(c, 7, *b"BR")))
            .collect();
        assert!(hits.len() > 1);
    }
}
