//! Single-producer multi-consumer broadcast ring: one live object's
//! chunk stream, fanned out to any number of subscriber cursors.
//!
//! A relay receives each live object **once** from the origin and
//! re-serves it to every local client, so the per-object distribution
//! state must be a broadcast structure, not a per-client copy. The ring
//! records the object's byte stream as a bounded window of *chunk
//! descriptors* — `(seq, offset, len)` triples over the logical stream —
//! never the payload itself: the LSW1 payload is the position-independent
//! staged pattern (`lsw_replay::payload`), so any retained range can be
//! rematerialized from the shared arena at write time. Memory is
//! therefore O(descriptor window), independent of fan-out and of how far
//! the slowest subscriber lags.
//!
//! ## Invariants (pinned by the proptest at the bottom)
//!
//! * **Append-only producer.** `push` assigns the next sequence number
//!   and extends the live edge (`head`) by the chunk length; offsets are
//!   contiguous — chunk `n+1` begins where chunk `n` ended.
//! * **Whole-chunk eviction.** The retention window drops only whole
//!   chunks from the tail end (oldest first), so `base` — the oldest
//!   readable offset — is always a chunk boundary: a lagging cursor can
//!   be *lapped*, never handed a torn chunk.
//! * **Suffix delivery.** A cursor joined at offset `j` observes exactly
//!   the byte range `[j', head)` for some chunk-boundary `j' >= j`
//!   (`j' > j` only after a lap, which the subscriber is told about),
//!   each byte exactly once, in order. No duplication, no reordering,
//!   no gaps other than explicit laps.
//! * **Live-edge join.** `join` starts a cursor at `head`: mid-stream
//!   subscribers see the feed from *now*, the live-streaming semantics
//!   the paper's transfers exhibit (viewers join an ongoing broadcast).

use std::collections::VecDeque;

/// Hard cap on retained chunk descriptors, independent of the byte
/// capacity: a stream of tiny chunks must not grow the descriptor deque
/// past a fixed footprint (24 B each → ≤ 96 KiB per ring).
pub const MAX_CHUNKS: usize = 4096;

/// One appended chunk: `len` bytes at logical stream offset `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Producer-assigned sequence number, dense from 0.
    pub seq: u64,
    /// Logical stream offset of the chunk's first byte.
    pub offset: u64,
    /// Chunk length in bytes (never zero).
    pub len: u64,
}

/// One subscriber's read position in the logical stream.
///
/// Cursors are plain values owned by the subscriber; the ring never
/// tracks them, so dropping a subscriber needs no unregistration and a
/// stalled one costs the ring nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cursor {
    offset: u64,
}

impl Cursor {
    /// Logical stream offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

/// What a cursor sees when it polls the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// `len` bytes are readable at logical offset `offset`. The caller
    /// consumes any prefix of them with [`Broadcast::commit`].
    Ready {
        /// Logical stream offset of the readable range.
        offset: u64,
        /// Readable bytes (clamped to the caller's `max`).
        len: u64,
    },
    /// The cursor is at the live edge; the producer may append more.
    Pending,
    /// The cursor is at the live edge and the feed has ended.
    End,
    /// The cursor fell out of the retention window. It has been snapped
    /// forward to `resume` (a chunk boundary), skipping `skipped` bytes
    /// it will never observe. Policy — truncate the subscriber (Drop) or
    /// backfill the skipped range from the pattern arena (Backpressure)
    /// — is the caller's.
    Lapped {
        /// New cursor offset: the oldest retained chunk boundary.
        resume: u64,
        /// Bytes the cursor skipped over.
        skipped: u64,
    },
}

/// The single-producer multi-consumer broadcast ring for one live
/// object. See the module docs for the invariants.
#[derive(Debug)]
pub struct Broadcast {
    /// Retained chunk descriptors, oldest first; offsets contiguous.
    chunks: VecDeque<Chunk>,
    /// Retention capacity in bytes (newest chunk always retained).
    capacity: u64,
    /// Bytes currently described by `chunks`.
    retained: u64,
    /// Next sequence number `push` will assign.
    next_seq: u64,
    /// Logical stream offset of the live edge (total bytes appended).
    head: u64,
    /// Oldest readable offset (front chunk's offset; `head` when empty).
    base: u64,
    /// Producer closed the feed (upstream transfer completed).
    closed: bool,
}

impl Broadcast {
    /// An empty open ring retaining up to `capacity` bytes of chunk
    /// descriptors (at least one chunk is always retained regardless).
    pub fn new(capacity: u64) -> Self {
        Self {
            chunks: VecDeque::new(),
            capacity,
            retained: 0,
            next_seq: 0,
            head: 0,
            base: 0,
            closed: false,
        }
    }

    /// Appends a `len`-byte chunk at the live edge and returns its
    /// descriptor; evicts whole chunks from the tail while over either
    /// retention bound. Zero-length pushes are ignored (`None`).
    pub fn push(&mut self, len: u64) -> Option<Chunk> {
        if len == 0 || self.closed {
            return None;
        }
        let chunk = Chunk {
            seq: self.next_seq,
            offset: self.head,
            len,
        };
        self.next_seq += 1;
        self.head += len;
        self.retained += len;
        self.chunks.push_back(chunk);
        while self.chunks.len() > 1
            && (self.retained > self.capacity || self.chunks.len() > MAX_CHUNKS)
        {
            match self.chunks.pop_front() {
                Some(evicted) => {
                    self.retained -= evicted.len;
                    self.base = evicted.offset + evicted.len;
                }
                None => break, // unreachable: len > 1 just checked
            }
        }
        Some(chunk)
    }

    /// Marks the feed ended: no more chunks will arrive, and cursors at
    /// the live edge poll [`Poll::End`] instead of [`Poll::Pending`].
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Whether the producer has closed the feed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// A new cursor at the live edge: the mid-stream join point.
    pub fn join(&self) -> Cursor {
        Cursor { offset: self.head }
    }

    /// Logical stream offset of the live edge (total bytes appended).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Oldest offset still inside the retention window.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// How far `cur` lags the live edge, in bytes.
    pub fn lag(&self, cur: &Cursor) -> u64 {
        self.head - cur.offset
    }

    /// Polls the ring at `cur`, offering at most `max` bytes.
    pub fn poll(&self, cur: &mut Cursor, max: u64) -> Poll {
        if cur.offset < self.base {
            let resume = self.base;
            let skipped = resume - cur.offset;
            cur.offset = resume;
            return Poll::Lapped { resume, skipped };
        }
        let avail = self.head - cur.offset;
        if avail == 0 {
            return if self.closed {
                Poll::End
            } else {
                Poll::Pending
            };
        }
        Poll::Ready {
            offset: cur.offset,
            len: avail.min(max),
        }
    }

    /// Consumes `n` bytes at `cur` (any prefix of the last
    /// [`Poll::Ready`] range). Saturates at the live edge and never
    /// rewinds, so a stale `n` cannot corrupt the cursor.
    pub fn commit(&self, cur: &mut Cursor, n: u64) {
        debug_assert!(cur.offset + n <= self.head, "commit past the live edge");
        cur.offset = (cur.offset + n).min(self.head);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Observed (offset, len) ranges from a drain, plus any laps.
    type Drained = (Vec<(u64, u64)>, Vec<(u64, u64)>);

    /// Reads everything currently available at `cur` in `step`-byte
    /// commits, returning observed (offset, len) ranges and any laps.
    fn drain(ring: &Broadcast, cur: &mut Cursor, step: u64) -> Drained {
        let mut ranges = Vec::new();
        let mut laps = Vec::new();
        loop {
            match ring.poll(cur, step) {
                Poll::Ready { offset, len } => {
                    ring.commit(cur, len);
                    ranges.push((offset, len));
                }
                Poll::Lapped { resume, skipped } => laps.push((resume, skipped)),
                Poll::Pending | Poll::End => break,
            }
        }
        (ranges, laps)
    }

    #[test]
    fn live_edge_join_sees_only_the_future() {
        let mut ring = Broadcast::new(1 << 20);
        ring.push(100);
        let mut cur = ring.join();
        assert_eq!(ring.poll(&mut cur, 64), Poll::Pending);
        ring.push(40);
        assert_eq!(
            ring.poll(&mut cur, 64),
            Poll::Ready {
                offset: 100,
                len: 40
            }
        );
        ring.commit(&mut cur, 40);
        ring.close();
        assert_eq!(ring.poll(&mut cur, 64), Poll::End);
    }

    #[test]
    fn eviction_is_whole_chunk_and_laps_snap_to_a_boundary() {
        let mut ring = Broadcast::new(100);
        let mut cur = ring.join();
        ring.push(60);
        ring.push(60); // retained 120 > 100: first chunk evicted
        assert_eq!(ring.base(), 60);
        match ring.poll(&mut cur, u64::MAX) {
            Poll::Lapped { resume, skipped } => {
                assert_eq!(resume, 60);
                assert_eq!(skipped, 60);
            }
            other => panic!("expected lap, got {other:?}"),
        }
        // After the lap the cursor reads the retained suffix normally.
        assert_eq!(
            ring.poll(&mut cur, u64::MAX),
            Poll::Ready {
                offset: 60,
                len: 60
            }
        );
    }

    #[test]
    fn newest_chunk_survives_even_when_oversized() {
        let mut ring = Broadcast::new(16);
        ring.push(1000);
        assert_eq!(ring.base(), 0);
        ring.push(8);
        assert_eq!(ring.base(), 1000); // oversized chunk evicted whole
        assert_eq!(ring.head(), 1008);
    }

    #[test]
    fn descriptor_count_is_bounded() {
        let mut ring = Broadcast::new(u64::MAX);
        for _ in 0..(MAX_CHUNKS * 3) {
            ring.push(1);
        }
        assert!(ring.chunks.len() <= MAX_CHUNKS);
    }

    #[test]
    fn zero_len_push_and_closed_push_are_ignored() {
        let mut ring = Broadcast::new(1 << 20);
        assert_eq!(ring.push(0), None);
        ring.push(10);
        ring.close();
        assert_eq!(ring.push(10), None);
        assert_eq!(ring.head(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite #3: mid-stream joins never observe torn, duplicated,
        /// or out-of-order chunks at any cursor lag, pinned against a
        /// Vec-replay oracle of every chunk ever pushed.
        #[test]
        fn subscribers_observe_a_contiguous_suffix(
            capacity in 1u64..5_000,
            pushes in proptest::collection::vec(1u64..700, 1..200),
            // (join after push #j, drain every k pushes, commit step)
            subs in proptest::collection::vec(
                (0usize..200, 1usize..8, 1u64..2_000), 1..6),
        ) {
            let mut ring = Broadcast::new(capacity);
            let mut oracle: Vec<Chunk> = Vec::new();
            struct Sub {
                cur: Cursor,
                join: u64,
                cadence: usize,
                step: u64,
                seen: Vec<(u64, u64)>,
                laps: Vec<(u64, u64)>,
            }
            let mut live: Vec<Sub> = Vec::new();
            let mut pending = subs.clone();

            for (i, &len) in pushes.iter().enumerate() {
                pending.retain(|&(j, cadence, step)| {
                    if j <= i {
                        live.push(Sub {
                            cur: ring.join(),
                            join: ring.head(),
                            cadence,
                            step,
                            seen: Vec::new(),
                            laps: Vec::new(),
                        });
                        false
                    } else {
                        true
                    }
                });
                let chunk = ring.push(len).expect("open ring accepts pushes");
                oracle.push(chunk);
                for s in &mut live {
                    if i % s.cadence == 0 {
                        let (r, l) = drain(&ring, &mut s.cur, s.step);
                        s.seen.extend(r);
                        s.laps.extend(l);
                    }
                }
            }
            ring.close();
            // Anyone who never joined joins at the closed live edge.
            for &(_, cadence, step) in &pending {
                live.push(Sub {
                    cur: ring.join(),
                    join: ring.head(),
                    cadence,
                    step,
                    seen: Vec::new(),
                    laps: Vec::new(),
                });
            }
            for s in &mut live {
                let (r, l) = drain(&ring, &mut s.cur, s.step);
                s.seen.extend(r);
                s.laps.extend(l);
                prop_assert_eq!(ring.poll(&mut s.cur, s.step), Poll::End);
            }

            // Oracle self-check: dense seqs, contiguous offsets.
            let mut expect_off = 0;
            for (i, c) in oracle.iter().enumerate() {
                prop_assert_eq!(c.seq, i as u64);
                prop_assert_eq!(c.offset, expect_off);
                expect_off += c.len;
            }
            let boundaries: std::collections::BTreeSet<u64> =
                oracle.iter().map(|c| c.offset).collect();

            for s in &live {
                // The observed ranges tile [join', head) contiguously:
                // in-order, no duplication, no holes except declared laps.
                let mut pos = s.join;
                let mut lap_iter = s.laps.iter();
                for &(off, len) in &s.seen {
                    if off != pos {
                        // A gap must be exactly one declared lap landing
                        // on an oracle chunk boundary (never torn).
                        let &(resume, skipped) =
                            lap_iter.next().expect("gap without a declared lap");
                        prop_assert_eq!(off, resume);
                        prop_assert_eq!(resume - skipped, pos);
                        prop_assert!(
                            boundaries.contains(&resume),
                            "lap resumed mid-chunk at {}", resume
                        );
                        pos = resume;
                    }
                    prop_assert_eq!(off, pos);
                    pos += len;
                }
                // Trailing laps (lap observed, nothing readable after).
                for &(resume, skipped) in lap_iter {
                    prop_assert_eq!(resume - skipped, pos);
                    prop_assert!(boundaries.contains(&resume));
                    pos = resume;
                }
                // Every subscriber ends exactly at the live edge.
                prop_assert_eq!(pos, ring.head());
                // And never observed a byte from before its join.
                prop_assert!(s.seen.iter().all(|&(off, _)| off >= s.join));
            }
        }
    }
}
