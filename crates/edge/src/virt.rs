//! The deterministic virtual-time executor for the whole topology.
//!
//! Mirrors `lsw_replay::virt::run_virtual`, lifted to the overlay: one
//! single-threaded integer-only event simulation covering the origin
//! tier, every relay tier, and the routed clients. The semantics are
//! the threaded overlay's:
//!
//! * a relay opens its origin subscription lazily, at the instant its
//!   first routed client arrives (= the planned span start), charging
//!   the origin's admission with the subscription's display duration;
//! * clients pass their own relay's admission; admitted transfers
//!   complete exactly at their scheduled stop with exactly their trace
//!   bytes (the subscription rate provably covers every routed client);
//! * a client whose feed the origin refused (`BUSY`) truncates — the
//!   virtual executor propagates origin-tier refusals downstream just
//!   like the ring does;
//! * completions release in the total order `(stop, admission seq)` on
//!   the shared [`TimingWheel`], releases before same-second arrivals.
//!
//! Determinism contract: no ambient time, no RNG, no I/O, integer
//! arithmetic only; two runs over the same schedule and config produce
//! byte-identical JSON reports — per tier and merged.

use crate::relay::{plan_feeds, FeedPlan};
use crate::topology::Topology;
use lsw_replay::clock::Nanos;
use lsw_replay::metrics::Registry;
use lsw_replay::wheel::TimingWheel;
use lsw_replay::{STATUS_REJECTED, STATUS_TRUNCATED};
use lsw_sim::server::{AdmissionPolicy, MediaServer, ServerConfig, ServerStats};
use lsw_stream::{MultiTap, StreamConfig, StreamReport};
use lsw_trace::schedule::Schedule;
use lsw_trace::LogEntry;
use std::collections::BTreeMap;

/// Virtual nanoseconds per trace second.
const SCALE: Nanos = 1_000_000_000;

/// What a virtual overlay replay produced.
#[derive(Debug)]
pub struct VirtualTopologyOutcome {
    /// Per-relay characterization reports, tier order.
    pub tier_reports: Vec<StreamReport>,
    /// The edge-aggregated report (diffed against the trace).
    pub merged: StreamReport,
    /// Relay-tier admission stats, summed (peak is the max tier peak).
    pub admission: ServerStats,
    /// Origin-tier admission stats (subscriptions only).
    pub origin_admission: ServerStats,
    /// Client transfers served to completion.
    pub completed: u64,
    /// Client transfers refused by relay admission.
    pub rejected: u64,
    /// Client transfers truncated because their feed was refused.
    pub truncated: u64,
    /// Subscriptions the relays opened.
    pub subscriptions: u64,
    /// Trace bytes the origin sent (accepted subscription budgets).
    pub origin_bytes: u64,
    /// Trace bytes delivered to clients (completed transfers).
    pub delivered_bytes: u64,
}

impl VirtualTopologyOutcome {
    /// Origin egress as a fraction of client-delivered bytes.
    pub fn egress_ratio(&self) -> f64 {
        if self.delivered_bytes == 0 {
            return if self.origin_bytes == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.origin_bytes as f64 / self.delivered_bytes as f64
        }
    }
}

/// A completion event on the shared wheel.
enum Done {
    /// A client transfer finishing on its relay tier.
    Client { entry: LogEntry, relay: usize },
    /// A subscription finishing at the origin.
    Sub,
}

/// The virtual feed table: what happened when the subscription opened.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FeedState {
    Open,
    Busy,
}

/// Runs the whole overlay deterministically in virtual time.
pub fn run_virtual_topology(
    schedule: &Schedule,
    topology: &Topology,
    origin_admission: AdmissionPolicy,
    relay_admission: AdmissionPolicy,
    stream: StreamConfig,
    registry: &Registry,
) -> VirtualTopologyOutcome {
    let relays = topology.relays.max(1) as usize;
    let plans: Vec<BTreeMap<u16, FeedPlan>> = plan_feeds(schedule, topology);

    let mut origin = MediaServer::new(ServerConfig {
        admission: origin_admission,
        ..ServerConfig::default()
    });
    let mut tiers: Vec<MediaServer> = (0..relays)
        .map(|_| {
            MediaServer::new(ServerConfig {
                admission: relay_admission,
                ..ServerConfig::default()
            })
        })
        .collect();
    let mut tap = MultiTap::new(stream, relays);
    tap.preset_lookahead(schedule.max_duration());

    let mut wheel: TimingWheel<Done> = TimingWheel::new();
    let mut feeds: BTreeMap<(usize, u16), FeedState> = BTreeMap::new();
    // Admitted zero-duration client transfers, due before the next
    // arrival (which may share their second); see run_virtual.
    let mut due_now: Vec<(LogEntry, usize)> = Vec::new();
    let mut fired: Vec<(Nanos, Done)> = Vec::new();

    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut truncated = 0u64;
    let mut subscriptions = 0u64;
    let mut origin_bytes = 0u64;
    let mut delivered_bytes = 0u64;

    let release = |wheel: &mut TimingWheel<Done>,
                   due_now: &mut Vec<(LogEntry, usize)>,
                   fired: &mut Vec<(Nanos, Done)>,
                   tiers: &mut Vec<MediaServer>,
                   origin: &mut MediaServer,
                   tap: &mut MultiTap,
                   completed: &mut u64,
                   bound: Nanos| {
        wheel.advance(bound, fired);
        for (e, relay) in due_now.drain(..) {
            tiers[relay].release();
            tap.ingest(relay, &e);
            *completed += 1;
        }
        for (_, done) in fired.drain(..) {
            match done {
                Done::Client { entry, relay } => {
                    tiers[relay].release();
                    tap.ingest(relay, &entry);
                    *completed += 1;
                }
                Done::Sub => origin.release(),
            }
        }
    };

    for t in &schedule.transfers {
        // Releases strictly before arrivals at the same second.
        release(
            &mut wheel,
            &mut due_now,
            &mut fired,
            &mut tiers,
            &mut origin,
            &mut tap,
            &mut completed,
            u64::from(t.start) * SCALE,
        );
        let relay = (topology.route(t) as usize).min(relays - 1);
        let object = t.object.0;

        // Lazy subscription: the first routed client for an object
        // opens the relay's feed against the origin.
        let state = match feeds.get(&(relay, object)) {
            Some(&s) => s,
            None => {
                let state = match plans[relay].get(&object) {
                    Some(plan) => {
                        subscriptions += 1;
                        let sub = plan.subscription(u32::try_from(relay).unwrap_or(0));
                        if origin.request(sub.display_duration()) {
                            origin_bytes += plan.bytes;
                            wheel.schedule(u64::from(sub.stop()) * SCALE, Done::Sub);
                            FeedState::Open
                        } else {
                            FeedState::Busy
                        }
                    }
                    // Unreachable: plan_feeds plans every routed object.
                    None => FeedState::Busy,
                };
                feeds.insert((relay, object), state);
                state
            }
        };

        if state == FeedState::Busy {
            // The origin refused the feed: this relay's clients for the
            // object truncate, exactly like an incomplete ring.
            let mut e = t.to_entry();
            e.status = STATUS_TRUNCATED;
            tap.ingest(relay, &e);
            truncated += 1;
            continue;
        }
        if tiers[relay].request(t.display_duration()) {
            delivered_bytes += t.bytes;
            if t.stop() == t.start {
                due_now.push((t.to_entry(), relay));
            } else {
                wheel.schedule(
                    u64::from(t.stop()) * SCALE,
                    Done::Client {
                        entry: t.to_entry(),
                        relay,
                    },
                );
            }
        } else {
            let mut e = t.to_entry();
            e.status = STATUS_REJECTED;
            tap.ingest(relay, &e);
            rejected += 1;
        }
    }
    // Final drains: due-now leftovers, then the wheel to empty.
    let first_bound = wheel.next_deadline().unwrap_or(0);
    release(
        &mut wheel,
        &mut due_now,
        &mut fired,
        &mut tiers,
        &mut origin,
        &mut tap,
        &mut completed,
        first_bound,
    );
    while let Some(bound) = wheel.next_deadline() {
        release(
            &mut wheel,
            &mut due_now,
            &mut fired,
            &mut tiers,
            &mut origin,
            &mut tap,
            &mut completed,
            bound,
        );
    }

    registry.counter("edge.completed").add(completed);
    registry.counter("edge.rejected").add(rejected);
    registry.counter("edge.truncated").add(truncated);
    registry.counter("edge.subscriptions").add(subscriptions);
    registry
        .counter("edge.delivered_bytes")
        .add(delivered_bytes);
    registry.counter("srv.bytes_sent").add(origin_bytes);

    let mut admission = ServerStats::default();
    for tier in &tiers {
        let s = tier.stats();
        admission.accepted += s.accepted;
        admission.rejected += s.rejected;
        admission.denied_viewer_seconds += s.denied_viewer_seconds;
        admission.peak_concurrent = admission.peak_concurrent.max(s.peak_concurrent);
        admission.retries += s.retries;
    }

    let (tier_reports, merged) = tap.finalize();
    VirtualTopologyOutcome {
        tier_reports,
        merged,
        admission,
        origin_admission: origin.stats().clone(),
        completed,
        rejected,
        truncated,
        subscriptions,
        origin_bytes,
        delivered_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsw_trace::event::LogEntryBuilder;
    use lsw_trace::ids::{AsId, ClientId, ObjectId};

    /// A live-heavy schedule: many concurrent viewers on few objects —
    /// the workload shape the paper characterizes and the overlay is
    /// built for.
    fn live_heavy(clients: u32) -> Schedule {
        let entries: Vec<LogEntry> = (0..clients)
            .map(|i| {
                LogEntryBuilder::new()
                    .span((i % 50) * 4, 600 + (i % 7) * 30)
                    .client(ClientId(i))
                    .origin(
                        lsw_trace::ids::Ipv4Addr(0x0a00_0000 + i),
                        AsId((i % 11) as u16),
                        lsw_trace::ids::CountryCode(*b"br"),
                    )
                    .object(ObjectId((i % 3) as u16), 1)
                    .transfer_stats(u64::from(600 + (i % 7) * 30) * 8_000, 64_000, 0.0)
                    .build()
            })
            .collect();
        Schedule::from_entries(&entries)
    }

    #[test]
    fn fan_in_savings_hit_the_acceptance_floor() {
        // 512 live-heavy clients through 2 relays: origin egress must be
        // at most a quarter of the client-delivered bytes.
        let s = live_heavy(512);
        let topo: Topology = "origin:2".parse().expect("topology");
        let out = run_virtual_topology(
            &s,
            &topo,
            AdmissionPolicy::AcceptAll,
            AdmissionPolicy::AcceptAll,
            StreamConfig::default(),
            &Registry::new(),
        );
        assert_eq!(out.completed, 512);
        assert_eq!(out.rejected + out.truncated, 0);
        assert!(out.delivered_bytes > 0);
        let ratio = out.egress_ratio();
        assert!(
            ratio <= 0.25,
            "origin egress ratio {ratio:.4} exceeds the 25% fan-in floor \
             (origin {} vs delivered {})",
            out.origin_bytes,
            out.delivered_bytes
        );
    }

    #[test]
    fn virtual_topology_runs_are_byte_identical() {
        let s = live_heavy(300);
        let topo: Topology = "origin:3:country".parse().expect("topology");
        let run = || {
            run_virtual_topology(
                &s,
                &topo,
                AdmissionPolicy::AcceptAll,
                AdmissionPolicy::RejectAbove { max_concurrent: 64 },
                StreamConfig::default(),
                &Registry::new(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.merged.to_json(), b.merged.to_json());
        assert_eq!(a.tier_reports.len(), b.tier_reports.len());
        for (x, y) in a.tier_reports.iter().zip(&b.tier_reports) {
            assert_eq!(x.to_json(), y.to_json());
        }
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.origin_bytes, b.origin_bytes);
    }

    #[test]
    fn edge_aggregated_tap_matches_the_direct_single_tier_tap() {
        // The same schedule served flat (run_virtual) and through the
        // overlay must characterize identically when nothing is refused:
        // the merged tap double-ingests in the same global completion
        // order the flat executor uses.
        let s = live_heavy(400);
        let topo: Topology = "origin:4".parse().expect("topology");
        let edge = run_virtual_topology(
            &s,
            &topo,
            AdmissionPolicy::AcceptAll,
            AdmissionPolicy::AcceptAll,
            StreamConfig::default(),
            &Registry::new(),
        );
        let flat = lsw_replay::run_virtual(
            &s,
            AdmissionPolicy::AcceptAll,
            StreamConfig::default(),
            &Registry::new(),
        );
        assert_eq!(edge.merged.to_json(), flat.tap.to_json());
    }

    #[test]
    fn origin_refusals_propagate_as_truncations() {
        // An origin that admits nothing starves every feed; every client
        // truncates and none complete.
        let s = live_heavy(50);
        let topo: Topology = "origin:2".parse().expect("topology");
        let out = run_virtual_topology(
            &s,
            &topo,
            AdmissionPolicy::RejectAbove { max_concurrent: 0 },
            AdmissionPolicy::AcceptAll,
            StreamConfig::default(),
            &Registry::new(),
        );
        assert_eq!(out.completed, 0);
        assert_eq!(out.truncated, 50);
        assert_eq!(out.origin_bytes, 0);
    }
}
