//! # lsw-edge — hierarchical live fan-out overlay
//!
//! `lsw-replay` serves every client from one process; this crate is the
//! step the ROADMAP's "production-scale" north star demands: an
//! **origin → relays → clients** overlay on localhost. Each relay
//! subscribes *once* per live object to the origin over the existing
//! LSW1 protocol and fans the chunk stream out to its assigned clients
//! through a single-producer multi-consumer broadcast [`ring`] — the
//! paper's hierarchical client/session/transfer layering, realized as a
//! serving hierarchy.
//!
//! * [`topology`] — the `--topology origin[:relays[:key]]` grammar and
//!   the deterministic client→relay routing (by AS/country, the paper's
//!   client-layer concentration axes).
//! * [`ring`] — the per-object broadcast ring: mid-stream join at the
//!   live edge, per-subscriber cursor lag, whole-chunk eviction.
//! * [`relay`] — the relay node: one reactor thread that subscribes
//!   upstream, feeds the rings, and re-serves clients under the same
//!   admission/backpressure machinery as the origin.
//! * [`cluster`] — the threaded orchestration: origin + N relays +
//!   per-relay drivers, per-tier characterization taps, and the
//!   origin-egress (fan-in savings) accounting.
//! * [`virt`] — the deterministic virtual-time executor for the whole
//!   topology: byte-identical reports run to run.

#![warn(missing_docs)]

pub mod cluster;
pub mod relay;
pub mod ring;
pub mod topology;
pub mod virt;

pub use cluster::{run_edge, EdgeConfig, EdgeOutcome, EgressReport};
pub use relay::{plan_feeds, FeedPlan, Relay, RelayConfig};
pub use ring::{Broadcast, Chunk, Cursor, Poll};
pub use topology::{RouteBy, Topology};
pub use virt::{run_virtual_topology, VirtualTopologyOutcome};
