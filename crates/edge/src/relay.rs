//! The relay node: one reactor thread that subscribes upstream and fans
//! each live object out to its assigned clients.
//!
//! A relay is a store-and-forward tier with nothing stored: it holds one
//! LSW1 *subscription* connection to the origin per live object it is
//! responsible for, counts the paced payload bytes into that object's
//! broadcast [`ring`](crate::ring), and re-serves its own clients over
//! the same LSW1 protocol — each client's entitlement is driven by the
//! ring's live edge (bytes that actually arrived from upstream), not by
//! a local clock, so the relay genuinely forwards the origin's pacing
//! instead of re-deriving it. Payload written to clients is staged from
//! the shared position-independent pattern arena, so backlog memory is
//! O(1) per connection regardless of lag.
//!
//! **Per-tier policy.** Each relay runs its own [`MediaServer`]
//! admission instance and its own [`SlowClientPolicy`]: under `Drop`, a
//! client the ring *laps* (its cursor fell out of the retention window)
//! is truncated; under `Backpressure`, the lapped range is re-served
//! from the arena — position-independent payload makes the skipped
//! bytes reproducible — and the client simply lags the broadcast.
//!
//! **Tap.** Client completions are logged in trace coordinates into the
//! cluster's shared [`MultiTap`], tier = relay index, so the run ends
//! with per-relay reports plus the edge-aggregated report the closed
//! loop diffs against the trace.
//!
//! **Subscription closure.** A feed whose upstream delivered its full
//! subscription wire budget is *complete*: a subscriber still short of
//! its own budget at feed end (ceiling rounding at the span edges, or a
//! join that raced the first chunks) is topped up from the arena — the
//! wire carried those bytes once, the relay just re-emits them. An
//! *incomplete* feed (the origin rejected the subscription or truncated
//! it in a drain) truncates its subscribers instead: the relay never
//! fabricates traffic the origin did not send, so origin-tier breakage
//! stays visible in the closed-loop diff.

use crate::ring::{Broadcast, Cursor, Poll as RingPoll};
use lsw_replay::clock::{trace_to_nanos, Nanos, WallClock};
use lsw_replay::metrics::{Counter, Gauge, LogHistogram, Registry};
use lsw_replay::payload::{self, MAX_SLICES};
use lsw_replay::proto::{self, MAX_REQUEST_LINE};
use lsw_replay::slab::{Key, Slab};
use lsw_replay::wheel::{TimerId, TimingWheel};
use lsw_replay::{SlowClientPolicy, STATUS_REJECTED, STATUS_TRUNCATED};
use lsw_sim::server::{AdmissionPolicy, MediaServer, ServerStats};
use lsw_stream::MultiTap;
use lsw_trace::ids::{AsId, ClientId, CountryCode, Ipv4Addr, ObjectId};
use lsw_trace::schedule::{Schedule, ScheduledTransfer};
use mio::unix::SourceFd;
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use timerfd::{TimerFd, TimerState};

/// Reactor token for the cross-thread shutdown waker.
const WAKER_TOKEN: Token = Token(usize::MAX);
/// Reactor token for the timing-wheel timerfd.
const TIMER_TOKEN: Token = Token(usize::MAX - 1);
/// Reactor token for the client listener.
const LISTEN_TOKEN: Token = Token(usize::MAX - 2);

/// Extra trace seconds a subscription outlives its last client's stop:
/// covers the `⌊t⌋+1` display rounding at both span edges so the feed
/// provably produces every subscriber's wire budget before it closes.
pub const SPAN_SLACK: u32 = 2;

/// Client-id base for relay subscription identities: far above any
/// trace player id, so the origin's backlog slots and its own tap keep
/// the relay tier distinguishable from real clients.
pub const RELAY_CLIENT_BASE: u32 = u32::MAX - 4096;

/// One relay's planned origin subscription for one live object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedPlan {
    /// The live object the subscription covers.
    pub object: ObjectId,
    /// Camera of the first routed transfer (cosmetic, kept on the wire).
    pub camera: u8,
    /// Earliest routed client start, trace seconds.
    pub span_start: u32,
    /// Subscription duration: latest routed client stop plus
    /// [`SPAN_SLACK`], minus `span_start`, trace seconds.
    pub span_duration: u32,
    /// The object's global encoded rate, trace bytes per second.
    pub rate: u64,
    /// Subscription byte budget: `rate × (span_duration + 1)`, so the
    /// wire rate the origin paces at is exactly `rate`.
    pub bytes: u64,
}

impl FeedPlan {
    /// The synthetic transfer a relay offers the origin for this feed.
    pub fn subscription(&self, relay: u32) -> ScheduledTransfer {
        ScheduledTransfer {
            start: self.span_start,
            duration: self.span_duration,
            client: ClientId(RELAY_CLIENT_BASE.saturating_add(relay)),
            ip: Ipv4Addr(0x0aff_0000_u32.saturating_add(relay)),
            as_id: AsId(u16::MAX - u16::try_from(relay % 256).unwrap_or(0)),
            country: CountryCode(*b"RL"),
            object: self.object,
            camera: self.camera,
            bytes: self.bytes,
            avg_bandwidth: u32::try_from(self.rate.saturating_mul(8)).unwrap_or(u32::MAX),
            status: 200,
        }
    }
}

/// Builds every relay's feed plans for a routed schedule: relay `r`
/// subscribes once per object any of its routed transfers wants,
/// spanning all of them. The rate is the object's *global* encoded rate
/// ([`Schedule::object_rates`]) — the same table the origin paces from —
/// so the subscription wire carries every routed client's bytes.
pub fn plan_feeds(schedule: &Schedule, topo: &crate::Topology) -> Vec<BTreeMap<u16, FeedPlan>> {
    let rates: BTreeMap<u16, u64> = schedule
        .object_rates()
        .iter()
        .map(|&(o, r)| (o.0, r))
        .collect();
    let relays = topo.relays.max(1) as usize;
    let mut plans: Vec<BTreeMap<u16, FeedPlan>> = (0..relays).map(|_| BTreeMap::new()).collect();
    for t in &schedule.transfers {
        let relay = (topo.route(t) as usize).min(relays - 1);
        let stop = t.stop().saturating_add(SPAN_SLACK);
        let rate = rates.get(&t.object.0).copied().unwrap_or(0).max(1);
        plans[relay]
            .entry(t.object.0)
            .and_modify(|p| {
                let end = (p.span_start + p.span_duration).max(stop);
                p.span_start = p.span_start.min(t.start);
                p.span_duration = end - p.span_start;
                p.bytes = p.rate * (u64::from(p.span_duration) + 1);
            })
            .or_insert_with(|| FeedPlan {
                object: t.object,
                camera: t.camera,
                span_start: t.start,
                span_duration: stop - t.start,
                rate,
                bytes: rate * (u64::from(stop - t.start) + 1),
            });
    }
    plans
}

/// Relay node configuration.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Origin server address to subscribe against.
    pub origin: SocketAddr,
    /// Time-compression factor (shared with the whole topology).
    pub compression: f64,
    /// Client-tier admission policy (per relay).
    pub admission: AdmissionPolicy,
    /// Client-tier slow-subscriber policy.
    pub slow_policy: SlowClientPolicy,
    /// Broadcast-ring retention per object, bytes: the lag bound at
    /// which `Drop` truncates a subscriber.
    pub ring_capacity: u64,
    /// Timing-wheel resolution, nanoseconds.
    pub wheel_resolution: Nanos,
    /// This relay's index: tier id in the shared tap, identity suffix
    /// in subscription requests.
    pub index: u32,
}

impl Default for RelayConfig {
    fn default() -> Self {
        Self {
            origin: SocketAddr::from(([127, 0, 0, 1], 0)),
            compression: 100.0,
            admission: AdmissionPolicy::AcceptAll,
            slow_policy: SlowClientPolicy::Drop,
            ring_capacity: 8 << 20,
            wheel_resolution: 1 << 17,
            index: 0,
        }
    }
}

/// Relay-tier metrics; every relay registers the same names in the
/// shared registry, so the counters aggregate across the tier.
struct EdgeMetrics {
    conns: Arc<Counter>,
    active: Arc<Gauge>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    truncated: Arc<Counter>,
    bad_requests: Arc<Counter>,
    delivered_bytes: Arc<Counter>,
    upstream_bytes: Arc<Counter>,
    subscriptions: Arc<Counter>,
    upstream_busy: Arc<Counter>,
    laps: Arc<Counter>,
    ring_lag: Arc<LogHistogram>,
}

impl EdgeMetrics {
    fn register(r: &Registry) -> Self {
        Self {
            conns: r.counter("edge.conns"),
            active: r.gauge("edge.active"),
            completed: r.counter("edge.completed"),
            rejected: r.counter("edge.rejected"),
            truncated: r.counter("edge.truncated"),
            bad_requests: r.counter("edge.bad_requests"),
            delivered_bytes: r.counter("edge.delivered_bytes"),
            upstream_bytes: r.counter("edge.upstream_bytes"),
            subscriptions: r.counter("edge.subscriptions"),
            upstream_busy: r.counter("edge.upstream_busy"),
            laps: r.counter("edge.laps"),
            ring_lag: r.histogram("edge.ring_lag_bytes"),
        }
    }
}

struct RelayShared {
    cfg: RelayConfig,
    /// Planned subscriptions, by object id.
    plans: BTreeMap<u16, FeedPlan>,
    admission: Mutex<MediaServer>,
    tap: Arc<Mutex<MultiTap>>,
    clock: Arc<WallClock>,
    metrics: EdgeMetrics,
    /// Client connections currently open on this relay; the cluster's
    /// drain waits on this per relay (`edge.active` aggregates tiers).
    active: AtomicU64,
    /// Stop accepting; finish in-flight clients.
    shutdown: AtomicBool,
    /// Truncate whatever is still in flight and exit.
    force: AtomicBool,
}

impl RelayShared {
    /// Logs one finished (or refused) client transfer into this relay's
    /// tier of the shared tap.
    fn log_tap(&self, t: &ScheduledTransfer, status: u16) {
        let mut e = t.to_entry();
        e.status = status;
        // lsw::allow(L008): tap ingest is a short bounded critical section with no I/O under the lock
        self.tap.lock().ingest(self.cfg.index as usize, &e);
    }

    /// Releases the admission slot and logs the tap entry for a client
    /// transfer that is ending (complete or truncated).
    fn finish_client(&self, s: &CStream, status: u16) {
        // lsw::allow(L008): slot release is an O(1) counter update under the lock
        self.admission.lock().release();
        self.log_tap(&s.t, status);
    }
}

/// One object's distribution state on a relay.
struct Feed {
    ring: Broadcast,
    /// Client conn keys fanned out from this ring; compacted on every
    /// upstream push (keys of finished conns are dropped).
    subscribers: Vec<Key>,
    /// Expected upstream wire budget, known once the `OK` line arrives.
    expected: Option<u64>,
    /// Wire payload bytes received from upstream so far.
    received: u64,
    /// Set at upstream EOF iff `received >= expected`: subscribers may
    /// be topped up from the arena (see module docs).
    complete: bool,
}

impl Feed {
    fn new(capacity: u64) -> Self {
        Self {
            ring: Broadcast::new(capacity),
            subscribers: Vec::new(),
            expected: None,
            received: 0,
            complete: false,
        }
    }
}

/// A streaming client connection's serving state.
struct CStream {
    t: ScheduledTransfer,
    object: u16,
    cursor: Cursor,
    budget: u64,
    sent: u64,
    /// Bytes entitled but not (or no longer) in the ring — Backpressure
    /// lap debt or the complete-feed top-up — served from the arena.
    behind: u64,
    hold_until: Nanos,
    timer: Option<TimerId>,
}

enum ConnState {
    /// A client that has not finished its request line yet.
    Request { buf: Vec<u8> },
    /// A client being served from a ring.
    Client(Box<CStream>),
    /// Upstream subscription: reading the origin's status line.
    UpstreamHeader { object: u16, buf: Vec<u8> },
    /// Upstream subscription: counting paced payload into the ring.
    UpstreamBody { object: u16 },
}

struct RConn {
    stream: TcpStream,
    state: ConnState,
    /// Last write hit `WouldBlock`; waiting on EPOLLOUT.
    blocked: bool,
    /// EPOLLOUT currently registered for this socket.
    registered_write: bool,
}

impl RConn {
    fn is_client(&self) -> bool {
        matches!(self.state, ConnState::Request { .. } | ConnState::Client(_))
    }
}

/// A running relay node.
pub struct Relay {
    shared: Arc<RelayShared>,
    addr: SocketAddr,
    handle: std::thread::JoinHandle<()>,
    waker: Arc<Waker>,
}

impl Relay {
    /// Binds the relay's client listener, spawns its reactor thread, and
    /// returns. `plans` are this relay's feeds (see [`plan_feeds`]);
    /// `tap` is the cluster-shared multi-tier characterization tap.
    pub fn start(
        cfg: RelayConfig,
        plans: BTreeMap<u16, FeedPlan>,
        tap: Arc<Mutex<MultiTap>>,
        clock: Arc<WallClock>,
        registry: &Registry,
    ) -> io::Result<Self> {
        #[allow(clippy::disallowed_methods)]
        // lsw::allow(L002): the relay binds a real client listener by design
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let _ = mio::widen_listen_backlog(&listener, 4096);
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // lsw::allow(L002): the relay reactor acquires its epoll endpoint by design
        let poll = Poll::new()?;
        // lsw::allow(L002): the shutdown eventfd waker is a reactor endpoint by design
        let waker = Arc::new(Waker::new(poll.registry(), WAKER_TOKEN)?);
        // lsw::allow(L002): the deadline timerfd is a reactor endpoint by design
        let timer = TimerFd::new()?;

        let shared = Arc::new(RelayShared {
            admission: Mutex::new(MediaServer::new(lsw_sim::server::ServerConfig {
                admission: cfg.admission,
                ..lsw_sim::server::ServerConfig::default()
            })),
            plans,
            tap,
            clock,
            metrics: EdgeMetrics::register(registry),
            active: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            force: AtomicBool::new(false),
            cfg,
        });

        let thread_shared = Arc::clone(&shared);
        let index = shared.cfg.index;
        let handle = std::thread::Builder::new()
            .name(format!("lsw-relay-{index}"))
            .spawn(move || relay_loop(&thread_shared, &listener, poll, timer))?;
        Ok(Self {
            shared,
            addr,
            handle,
            waker,
        })
    }

    /// The relay's client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and begins the drain (in-flight clients finish).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
    }

    /// Client connections currently in flight on this relay.
    pub fn active(&self) -> u64 {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Force-truncates survivors, joins the reactor thread, and returns
    /// this relay's admission accounting. Call [`Relay::shutdown`] first
    /// and wait for [`Relay::active`] to reach zero for a clean drain.
    pub fn finish(self) -> ServerStats {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.force.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        if let Err(payload) = self.handle.join() {
            std::panic::resume_unwind(payload);
        }
        self.shared.admission.lock().stats().clone()
    }
}

/// What kind of connection a slab slot holds (drives dispatch without
/// holding a borrow across the step).
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    Client,
    Upstream,
}

/// The relay reactor: accepts clients, subscribes upstream on first
/// demand per object, fans ring bytes out on readiness, and paces
/// nothing itself — upstream arrival *is* the pacing signal, so the
/// wheel holds only display-duration hold deadlines.
fn relay_loop(shared: &RelayShared, listener: &TcpListener, mut poll: Poll, mut timer: TimerFd) {
    let mut events = Events::with_capacity(1024);
    let mut wheel: TimingWheel<Key> = TimingWheel::with_resolution(shared.cfg.wheel_resolution);
    let mut conns: Slab<RConn> = Slab::new();
    let mut feeds: BTreeMap<u16, Feed> = BTreeMap::new();
    let mut fired: Vec<(Nanos, Key)> = Vec::new();
    let mut keys: Vec<Key> = Vec::new();
    let mut slices = [IoSlice::new(&[]); MAX_SLICES];
    let mut scratch = vec![0u8; 256 * 1024];
    let mut clients = 0usize;
    let mut armed: Option<Nanos> = None;
    let listener_fd = listener.as_raw_fd();
    if poll
        .registry()
        .register(
            &mut SourceFd(&listener_fd),
            LISTEN_TOKEN,
            Interest::READABLE,
        )
        .is_err()
    {
        return;
    }
    let timer_fd = timer.as_raw_fd();
    if poll
        .registry()
        .register(&mut SourceFd(&timer_fd), TIMER_TOKEN, Interest::READABLE)
        .is_err()
    {
        return;
    }

    loop {
        if shared.force.load(Ordering::Relaxed) {
            keys.clear();
            keys.extend(conns.iter_keys());
            for &key in &keys {
                if let Some(conn) = conns.remove(key) {
                    match &conn.state {
                        ConnState::Client(s) => {
                            shared.finish_client(s, STATUS_TRUNCATED);
                            shared.metrics.truncated.inc();
                            client_done(shared, &mut clients);
                        }
                        ConnState::Request { .. } => {
                            shared.metrics.bad_requests.inc();
                            client_done(shared, &mut clients);
                        }
                        // Dropping an upstream closes the subscription;
                        // the origin logs it truncated on its own tier.
                        ConnState::UpstreamHeader { .. } | ConnState::UpstreamBody { .. } => {}
                    }
                }
            }
            return;
        }
        let draining = shared.shutdown.load(Ordering::Relaxed);
        if draining && clients == 0 {
            // Remaining upstream conns drop here: the relay unsubscribes
            // once it has no viewers left to serve.
            return;
        }

        // Accept whatever intake is queued (stops during the drain).
        if !draining {
            while let Ok((stream, _)) = listener.accept() {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                shared.metrics.conns.inc();
                shared.metrics.active.inc();
                shared.active.fetch_add(1, Ordering::Relaxed);
                clients += 1;
                let key = conns.insert(RConn {
                    stream,
                    state: ConnState::Request { buf: Vec::new() },
                    blocked: false,
                    registered_write: false,
                });
                let registered = match conns.get_mut(key) {
                    Some(conn) => poll
                        .registry()
                        .register(&mut conn.stream, Token(key.to_usize()), Interest::READABLE)
                        .is_ok(),
                    None => false,
                };
                if !registered {
                    conns.remove(key);
                    client_done(shared, &mut clients);
                    shared.metrics.bad_requests.inc();
                }
            }
        }

        // Fire due hold-until deadlines.
        let now = shared.clock.now();
        wheel.advance(now, &mut fired);
        for (_, key) in fired.drain(..) {
            step_conn(
                shared,
                &poll,
                &mut conns,
                &mut feeds,
                &mut wheel,
                key,
                false,
                &mut slices,
                &mut scratch,
                &mut clients,
            );
        }

        // Sleep until readiness or the next wheel deadline.
        let next = wheel.next_deadline();
        let timeout = if next.is_some_and(|d| d <= shared.clock.now()) {
            Some(Duration::ZERO)
        } else {
            if next != armed {
                let _ = match next {
                    Some(d) => {
                        let wait = d.saturating_sub(shared.clock.now()).max(1);
                        timer.set_state(TimerState::Oneshot(Duration::from_nanos(wait)))
                    }
                    None => timer.set_state(TimerState::Disarmed),
                };
                armed = next;
            }
            None
        };
        // lsw::allow(L008): the relay reactor's single scheduling point, bounded by the armed timerfd and woken by the shutdown waker
        if poll.poll(&mut events, timeout).is_err() {
            shared.force.store(true, Ordering::Relaxed);
            continue;
        }
        for event in events.iter() {
            match event.token() {
                WAKER_TOKEN | LISTEN_TOKEN => {} // handled at loop top
                TIMER_TOKEN => {
                    timer.read();
                }
                tok => {
                    let key = Key::from_usize(tok.0);
                    let readable = event.is_readable() || event.is_error();
                    step_conn(
                        shared,
                        &poll,
                        &mut conns,
                        &mut feeds,
                        &mut wheel,
                        key,
                        readable,
                        &mut slices,
                        &mut scratch,
                        &mut clients,
                    );
                }
            }
        }
    }
}

/// Accounts one client connection leaving the relay.
fn client_done(shared: &RelayShared, clients: &mut usize) {
    shared.metrics.active.dec();
    shared.active.fetch_sub(1, Ordering::Relaxed);
    *clients = clients.saturating_sub(1);
}

/// Advances one connection, reconciles its slab slot and EPOLLOUT
/// registration, and — when upstream progress advanced a ring — steps
/// that feed's subscribers.
#[allow(clippy::too_many_arguments)]
fn step_conn(
    shared: &RelayShared,
    poll: &Poll,
    conns: &mut Slab<RConn>,
    feeds: &mut BTreeMap<u16, Feed>,
    wheel: &mut TimingWheel<Key>,
    key: Key,
    readable: bool,
    slices: &mut [IoSlice<'static>; MAX_SLICES],
    scratch: &mut [u8],
    clients: &mut usize,
) {
    let kind = match conns.get_mut(key) {
        Some(conn) if conn.is_client() => ConnKind::Client,
        Some(_) => ConnKind::Upstream,
        None => return,
    };
    let mut pushed: Option<u16> = None;
    let done = match kind {
        ConnKind::Client => {
            advance_client(shared, poll, conns, feeds, wheel, key, readable, slices)
        }
        ConnKind::Upstream => match conns.get_mut(key) {
            Some(conn) => advance_upstream(shared, conn, feeds, scratch, &mut pushed),
            None => false,
        },
    };
    reconcile(
        shared,
        poll,
        conns,
        key,
        done,
        kind == ConnKind::Client,
        clients,
    );
    if let Some(object) = pushed {
        step_subscribers(shared, poll, conns, feeds, wheel, object, slices, clients);
    }
}

/// Removes a finished connection (accounting for client slots) or
/// re-registers its EPOLLOUT interest to match its blocked state.
fn reconcile(
    shared: &RelayShared,
    poll: &Poll,
    conns: &mut Slab<RConn>,
    key: Key,
    done: bool,
    was_client: bool,
    clients: &mut usize,
) {
    if done {
        if conns.remove(key).is_some() && was_client {
            client_done(shared, clients);
        }
        return;
    }
    let Some(conn) = conns.get_mut(key) else {
        return;
    };
    let want_write = conn.blocked;
    if want_write != conn.registered_write {
        let interest = if want_write {
            (Interest::READABLE | Interest::WRITABLE).edge()
        } else {
            Interest::READABLE
        };
        if poll
            .registry()
            .reregister(&mut conn.stream, Token(key.to_usize()), interest)
            .is_ok()
        {
            conn.registered_write = want_write;
        }
    }
}

/// Steps every subscriber of `object` after its ring advanced (new
/// bytes, or close), compacting keys of connections that finished.
#[allow(clippy::too_many_arguments)]
fn step_subscribers(
    shared: &RelayShared,
    poll: &Poll,
    conns: &mut Slab<RConn>,
    feeds: &mut BTreeMap<u16, Feed>,
    wheel: &mut TimingWheel<Key>,
    object: u16,
    slices: &mut [IoSlice<'static>; MAX_SLICES],
    clients: &mut usize,
) {
    let subs = match feeds.get_mut(&object) {
        Some(feed) => std::mem::take(&mut feed.subscribers),
        None => return,
    };
    let mut kept = Vec::with_capacity(subs.len());
    for key in subs {
        let still_here = match conns.get_mut(key) {
            Some(c) => matches!(&c.state, ConnState::Client(s) if s.object == object),
            None => false,
        };
        if !still_here {
            continue;
        }
        let done = advance_client(shared, poll, conns, feeds, wheel, key, false, slices);
        reconcile(shared, poll, conns, key, done, true, clients);
        if !done {
            kept.push(key);
        }
    }
    if let Some(feed) = feeds.get_mut(&object) {
        // New subscribers may have joined while stepping; keep both.
        feed.subscribers.extend(kept);
    }
}

/// What one round of request-line reading produced.
enum ReqRead {
    /// Still waiting for the newline.
    Pending,
    /// A complete request line (without the newline).
    Line(String),
    /// The peer vanished or overflowed the line budget.
    Dead,
}

/// Reads request bytes until the newline, `WouldBlock`, or failure. The
/// buffer is bounded by [`MAX_REQUEST_LINE`] — growth past it is a
/// protocol violation, not an allocation.
fn read_request_line(stream: &mut TcpStream, buf: &mut Vec<u8>) -> ReqRead {
    let mut scratch = [0u8; 512];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => return ReqRead::Dead,
            Ok(n) => {
                if buf.len() + n > MAX_REQUEST_LINE {
                    return ReqRead::Dead;
                }
                buf.extend_from_slice(&scratch[..n]);
                if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                    let line = String::from_utf8_lossy(&buf[..nl])
                        .trim_end_matches('\r')
                        .to_owned();
                    return ReqRead::Line(line);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReqRead::Pending,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReqRead::Dead,
        }
    }
}

/// Drains stray readable bytes on a streaming client; returns true when
/// the peer has hung up (read EOF or hard error).
fn peer_gone(stream: &mut TcpStream) -> bool {
    let mut sink = [0u8; 4096];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return true,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return true,
        }
    }
}

/// Advances a client connection (request parse, then ring-driven
/// serving); returns true when its slot can be reclaimed.
#[allow(clippy::too_many_arguments)]
fn advance_client(
    shared: &RelayShared,
    poll: &Poll,
    conns: &mut Slab<RConn>,
    feeds: &mut BTreeMap<u16, Feed>,
    wheel: &mut TimingWheel<Key>,
    key: Key,
    readable: bool,
    slices: &mut [IoSlice<'static>; MAX_SLICES],
) -> bool {
    let step = {
        let Some(conn) = conns.get_mut(key) else {
            return false;
        };
        match &mut conn.state {
            ConnState::Request { buf } => read_request_line(&mut conn.stream, buf),
            ConnState::Client(_) => {
                if readable && peer_gone(&mut conn.stream) {
                    if let ConnState::Client(s) = &conn.state {
                        shared.finish_client(s, STATUS_TRUNCATED);
                        shared.metrics.truncated.inc();
                    }
                    return true;
                }
                return serve_client(shared, conn, feeds, wheel, key, slices);
            }
            ConnState::UpstreamHeader { .. } | ConnState::UpstreamBody { .. } => return false,
        }
    };
    match step {
        ReqRead::Pending => false,
        ReqRead::Dead => {
            shared.metrics.bad_requests.inc();
            true
        }
        ReqRead::Line(line) => begin_client(shared, poll, conns, feeds, wheel, key, &line, slices),
    }
}

/// Parses the request, runs this relay's admission, ensures the feed
/// (subscribing upstream on first demand), and answers the status line.
#[allow(clippy::too_many_arguments)]
fn begin_client(
    shared: &RelayShared,
    poll: &Poll,
    conns: &mut Slab<RConn>,
    feeds: &mut BTreeMap<u16, Feed>,
    wheel: &mut TimingWheel<Key>,
    key: Key,
    line: &str,
    slices: &mut [IoSlice<'static>; MAX_SLICES],
) -> bool {
    let Some(t) = proto::parse_request(line) else {
        shared.metrics.bad_requests.inc();
        return true;
    };
    // lsw::allow(L008): admission check is an O(1) counter update under the lock
    let admitted = shared.admission.lock().request(t.display_duration());
    if !admitted {
        if let Some(conn) = conns.get_mut(key) {
            let _ = conn.stream.write_all(payload::BUSY_LINE);
        }
        shared.log_tap(&t, STATUS_REJECTED);
        shared.metrics.rejected.inc();
        return true;
    }
    let budget = proto::wire_budget(t.bytes, shared.cfg.compression);
    let mut line_buf = [0u8; 32];
    let ok_sent = match conns.get_mut(key) {
        Some(conn) => conn
            .stream
            .write_all(payload::ok_line(budget, &mut line_buf))
            .is_ok(),
        None => false,
    };
    if !ok_sent {
        // lsw::allow(L008): slot release is an O(1) counter update under the lock
        shared.admission.lock().release();
        shared.log_tap(&t, STATUS_TRUNCATED);
        shared.metrics.truncated.inc();
        return true;
    }
    let object = t.object.0;
    let now = shared.clock.now();
    let hold_until = now.saturating_add(trace_to_nanos(t.duration, shared.cfg.compression));
    ensure_feed(shared, poll, conns, feeds, object, &t);
    let cursor = match feeds.get_mut(&object) {
        Some(feed) => {
            feed.subscribers.push(key);
            feed.ring.join()
        }
        // Unreachable: ensure_feed always inserts the feed.
        None => Cursor::default(),
    };
    let Some(conn) = conns.get_mut(key) else {
        return false;
    };
    conn.state = ConnState::Client(Box::new(CStream {
        object,
        cursor,
        budget,
        sent: 0,
        behind: 0,
        hold_until,
        timer: None,
        t,
    }));
    // A joiner on an already-ended feed is settled immediately.
    serve_client(shared, conn, feeds, wheel, key, slices)
}

/// Lazily creates the feed for `object`, opening the origin
/// subscription. Any connect/request failure leaves the feed closed and
/// incomplete, so its subscribers truncate honestly.
fn ensure_feed(
    shared: &RelayShared,
    poll: &Poll,
    conns: &mut Slab<RConn>,
    feeds: &mut BTreeMap<u16, Feed>,
    object: u16,
    first: &ScheduledTransfer,
) {
    if feeds.contains_key(&object) {
        return;
    }
    let mut feed = Feed::new(shared.cfg.ring_capacity);
    // Planned span when the cluster routed this object here; a client
    // the plan does not know (standalone relay) subscribes for exactly
    // its own transfer plus slack.
    let sub = match shared.plans.get(&object) {
        Some(plan) => plan.subscription(shared.cfg.index),
        None => {
            let rate = first.byte_rate().max(1);
            FeedPlan {
                object: first.object,
                camera: first.camera,
                span_start: first.start,
                span_duration: first.duration.saturating_add(SPAN_SLACK),
                rate,
                bytes: rate * (u64::from(first.duration.saturating_add(SPAN_SLACK)) + 1),
            }
            .subscription(shared.cfg.index)
        }
    };
    shared.metrics.subscriptions.inc();
    let opened = open_upstream(shared.cfg.origin, &sub).and_then(|stream| {
        let ukey = conns.insert(RConn {
            stream,
            state: ConnState::UpstreamHeader {
                object,
                buf: Vec::new(),
            },
            blocked: false,
            registered_write: false,
        });
        match conns.get_mut(ukey) {
            Some(conn) => {
                let res = poll.registry().register(
                    &mut conn.stream,
                    Token(ukey.to_usize()),
                    Interest::READABLE,
                );
                if res.is_err() {
                    conns.remove(ukey);
                }
                res
            }
            None => Err(io::Error::other("upstream slot vanished")),
        }
    });
    if opened.is_err() {
        // Origin unreachable: closed + incomplete from birth.
        feed.ring.close();
    }
    feeds.insert(object, feed);
}

/// Opens the origin subscription connection and sends its request line.
fn open_upstream(origin: SocketAddr, sub: &ScheduledTransfer) -> io::Result<TcpStream> {
    #[allow(clippy::disallowed_methods)]
    // lsw::allow(L002): the relay opens a real upstream socket by design
    let mut stream = TcpStream::connect(origin)?;
    stream.set_nodelay(true)?;
    let mut line = proto::encode_request(sub);
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.set_nonblocking(true)?;
    Ok(stream)
}

/// Serves one streaming client from its ring: writes whatever the ring
/// (plus arena debt) entitles it to, applies the slow-client policy on
/// laps, and finishes when the budget is met and the hold has elapsed.
fn serve_client(
    shared: &RelayShared,
    conn: &mut RConn,
    feeds: &BTreeMap<u16, Feed>,
    wheel: &mut TimingWheel<Key>,
    key: Key,
    slices: &mut [IoSlice<'static>; MAX_SLICES],
) -> bool {
    let ConnState::Client(s) = &mut conn.state else {
        return false;
    };
    if let Some(id) = s.timer.take() {
        wheel.cancel(id);
    }
    let now = shared.clock.now();
    let feed = feeds.get(&s.object);
    let mut blocked = false;
    loop {
        let remaining = s.budget - s.sent;
        if remaining == 0 {
            break;
        }
        // Arena debt first (lap backfill / feed top-up), then the ring.
        let want = if s.behind > 0 {
            s.behind.min(remaining)
        } else {
            let Some(feed) = feed else {
                // No feed at all — treat as an incomplete ended feed.
                shared.finish_client(s, STATUS_TRUNCATED);
                shared.metrics.truncated.inc();
                return true;
            };
            // lsw::allow(L008): Broadcast::poll is a non-blocking cursor read, not an epoll wait.
            match feed.ring.poll(&mut s.cursor, remaining) {
                RingPoll::Ready { len, .. } => len,
                RingPoll::Pending => break,
                RingPoll::End => {
                    if feed.complete {
                        // Rounding closure: the wire carried these bytes
                        // once; re-emit the short tail from the arena.
                        s.behind = remaining;
                        continue;
                    }
                    shared.finish_client(s, STATUS_TRUNCATED);
                    shared.metrics.truncated.inc();
                    return true;
                }
                RingPoll::Lapped { skipped, .. } => {
                    shared.metrics.laps.inc();
                    match shared.cfg.slow_policy {
                        SlowClientPolicy::Drop => {
                            shared.finish_client(s, STATUS_TRUNCATED);
                            shared.metrics.truncated.inc();
                            return true;
                        }
                        SlowClientPolicy::Backpressure => {
                            s.behind = skipped.min(remaining);
                            continue;
                        }
                    }
                }
            }
        };
        let from_behind = s.behind > 0;
        let (n, staged) = payload::stage(want, slices);
        if n == 0 || staged == 0 {
            break;
        }
        match conn.stream.write_vectored(&slices[..n]) {
            Ok(0) => {
                blocked = true;
                break;
            }
            Ok(w) => {
                let w = (w as u64).min(want);
                s.sent += w;
                shared.metrics.delivered_bytes.add(w);
                if from_behind {
                    s.behind -= w;
                } else if let Some(feed) = feed {
                    feed.ring.commit(&mut s.cursor, w);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                blocked = true;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                shared.finish_client(s, STATUS_TRUNCATED);
                shared.metrics.truncated.inc();
                return true;
            }
        }
    }
    conn.blocked = blocked;
    if let Some(feed) = feed {
        shared.metrics.ring_lag.record(feed.ring.lag(&s.cursor));
    }
    if s.sent == s.budget {
        if now >= s.hold_until {
            shared.finish_client(s, s.t.status);
            shared.metrics.completed.inc();
            return true;
        }
        s.timer = Some(wheel.schedule(s.hold_until, key));
    }
    false
}

/// Advances an upstream subscription connection: parses the origin's
/// status line, then counts paced payload bytes into the feed's ring.
/// Sets `pushed` when the ring advanced (bytes or close) so the caller
/// steps the feed's subscribers.
fn advance_upstream(
    shared: &RelayShared,
    conn: &mut RConn,
    feeds: &mut BTreeMap<u16, Feed>,
    scratch: &mut [u8],
    pushed: &mut Option<u16>,
) -> bool {
    loop {
        match &mut conn.state {
            ConnState::UpstreamHeader { object, buf } => {
                let object = *object;
                match conn.stream.read(scratch) {
                    Ok(0) => {
                        end_feed(feeds, object, pushed);
                        return true;
                    }
                    Ok(n) => {
                        if buf.len() + n > MAX_REQUEST_LINE && !scratch[..n].contains(&b'\n') {
                            end_feed(feeds, object, pushed);
                            return true;
                        }
                        buf.extend_from_slice(&scratch[..n]);
                        let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
                            continue;
                        };
                        let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
                        let Some(expected) = line
                            .trim_end_matches('\r')
                            .strip_prefix("OK ")
                            .and_then(|v| v.parse::<u64>().ok())
                        else {
                            // BUSY: the origin's admission refused the
                            // subscription. Closed + incomplete — this
                            // relay's clients for the object truncate.
                            shared.metrics.upstream_busy.inc();
                            end_feed(feeds, object, pushed);
                            return true;
                        };
                        // Bytes past the status line are already payload.
                        let rest = (buf.len() - nl - 1) as u64;
                        if let Some(feed) = feeds.get_mut(&object) {
                            feed.expected = Some(expected);
                            if rest > 0 {
                                feed.ring.push(rest);
                                feed.received += rest;
                                shared.metrics.upstream_bytes.add(rest);
                                *pushed = Some(object);
                            }
                        }
                        conn.state = ConnState::UpstreamBody { object };
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        end_feed(feeds, object, pushed);
                        return true;
                    }
                }
            }
            ConnState::UpstreamBody { object } => {
                let object = *object;
                match conn.stream.read(scratch) {
                    Ok(0) => {
                        end_feed(feeds, object, pushed);
                        return true;
                    }
                    Ok(n) => {
                        let n = n as u64;
                        if let Some(feed) = feeds.get_mut(&object) {
                            feed.ring.push(n);
                            feed.received += n;
                            shared.metrics.upstream_bytes.add(n);
                            *pushed = Some(object);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        end_feed(feeds, object, pushed);
                        return true;
                    }
                }
            }
            ConnState::Request { .. } | ConnState::Client(_) => return false,
        }
    }
}

/// Closes a feed's ring at upstream EOF (or failure), recording whether
/// the subscription delivered its full wire budget.
fn end_feed(feeds: &mut BTreeMap<u16, Feed>, object: u16, pushed: &mut Option<u16>) {
    if let Some(feed) = feeds.get_mut(&object) {
        feed.complete = feed.expected.is_some_and(|e| feed.received >= e);
        feed.ring.close();
        *pushed = Some(object);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use lsw_trace::schedule::Schedule;

    fn transfer(
        start: u32,
        duration: u32,
        client: u32,
        object: u16,
        bytes: u64,
    ) -> ScheduledTransfer {
        ScheduledTransfer {
            start,
            duration,
            client: ClientId(client),
            ip: Ipv4Addr(0x0a00_0000 + client),
            as_id: AsId(u16::try_from(client % 7).unwrap_or(0)),
            country: CountryCode(*b"br"),
            object: ObjectId(object),
            camera: 1,
            bytes,
            avg_bandwidth: 64_000,
            status: 200,
        }
    }

    fn schedule(mut transfers: Vec<ScheduledTransfer>) -> Schedule {
        transfers.sort_by_key(|t| t.start);
        Schedule {
            transfers,
            stats: Default::default(),
        }
    }

    #[test]
    fn feed_plans_span_every_routed_client_and_pace_at_the_global_rate() {
        let s = schedule(vec![
            transfer(10, 100, 1, 7, 1_000_000),
            transfer(50, 300, 2, 7, 9_000_000),
            transfer(400, 50, 3, 7, 500_000),
        ]);
        let topo: Topology = "origin:1".parse().expect("topology");
        let plans = plan_feeds(&s, &topo);
        assert_eq!(plans.len(), 1);
        let plan = plans[0].get(&7).expect("object 7 planned");
        assert_eq!(plan.span_start, 10);
        // Latest stop is 400 + 50 = 450, plus slack.
        assert_eq!(plan.span_start + plan.span_duration, 450 + SPAN_SLACK);
        let global_rate = s
            .object_rates()
            .iter()
            .find(|(o, _)| o.0 == 7)
            .map(|&(_, r)| r)
            .expect("rate");
        assert_eq!(plan.rate, global_rate);
        // The plan's synthetic transfer paces at exactly the global rate.
        let sub = plan.subscription(0);
        assert_eq!(sub.byte_rate(), global_rate);
        // And its budget covers every routed client's whole transfer.
        for t in &s.transfers {
            assert!(plan.bytes >= t.bytes, "subscription covers {}", t.client.0);
        }
    }

    #[test]
    fn routed_plans_cover_every_transfer_on_its_own_relay() {
        let mut transfers = Vec::new();
        for i in 0..200u32 {
            transfers.push(transfer(
                i,
                60,
                i,
                u16::try_from(i % 23).unwrap_or(0),
                100_000,
            ));
        }
        let s = schedule(transfers);
        let topo: Topology = "origin:4".parse().expect("topology");
        let plans = plan_feeds(&s, &topo);
        assert_eq!(plans.len(), 4);
        for t in &s.transfers {
            let relay = topo.route(t) as usize;
            assert!(plans[relay].contains_key(&t.object.0));
        }
    }

    #[test]
    fn relay_identity_is_disjoint_from_trace_clients_and_round_trips() {
        let plan = FeedPlan {
            object: ObjectId(3),
            camera: 1,
            span_start: 0,
            span_duration: 10,
            rate: 1000,
            bytes: 11_000,
        };
        let sub = plan.subscription(5);
        assert!(sub.client.0 >= RELAY_CLIENT_BASE);
        assert_eq!(&sub.country.0, b"RL");
        assert_eq!(sub.status, 200);
        let line = proto::encode_request(&sub);
        let back = proto::parse_request(&line).expect("parse");
        assert_eq!(back, sub);
    }
}
