//! Property-based tests for the statistical substrate.
//!
//! These check structural invariants over randomized parameters and data:
//! CDF monotonicity and range, quantile/CDF inversion, sampler support,
//! histogram conservation, ECDF consistency, and fit round-trips.

use lsw_stats::dist::{
    Continuous, Discrete, Exponential, Geometric, LogNormal, Normal, Pareto, Poisson, Sample,
    Truncated, Uniform, Weibull, Zeta, ZipfTable,
};
use lsw_stats::empirical::{Binning, Ecdf, Histogram, RankFrequency, Summary};
use lsw_stats::fit::{fit_exponential, fit_lognormal, linear_regression};
use lsw_stats::par::{merge_sorted_runs, F64Key};
use lsw_stats::rng::SeedStream;
use lsw_stats::timeseries::{autocorrelation, bin_counts, fold_periodic};
use proptest::prelude::*;

/// Checks the Continuous contract on a grid: CDF in [0,1], monotone,
/// quantile inverts CDF, pdf non-negative.
fn check_continuous<D: Continuous>(d: &D, xs: &[f64]) {
    let mut prev = 0.0;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    for &x in &sorted {
        let c = d.cdf(x);
        assert!((0.0..=1.0).contains(&c), "cdf({x}) = {c} out of range");
        assert!(c + 1e-12 >= prev, "cdf not monotone at {x}: {c} < {prev}");
        assert!(d.pdf(x) >= 0.0, "pdf({x}) negative");
        prev = c;
    }
    for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
        let q = d.quantile(p);
        let c = d.cdf(q);
        assert!((c - p).abs() < 1e-5, "cdf(quantile({p})) = {c}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lognormal_contract(mu in -3.0..8.0f64, sigma in 0.1..3.0f64) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let xs: Vec<f64> = (1..40).map(|i| d.quantile(i as f64 / 40.0)).collect();
        check_continuous(&d, &xs);
    }

    #[test]
    fn exponential_contract(mean in 0.01..1e7f64) {
        let d = Exponential::with_mean(mean).unwrap();
        let xs: Vec<f64> = (0..40).map(|i| mean * i as f64 / 10.0).collect();
        check_continuous(&d, &xs);
    }

    #[test]
    fn normal_contract(mu in -100.0..100.0f64, sigma in 0.1..50.0f64) {
        let d = Normal::new(mu, sigma).unwrap();
        let xs: Vec<f64> = (-20..=20).map(|i| mu + sigma * i as f64 / 5.0).collect();
        check_continuous(&d, &xs);
    }

    #[test]
    fn pareto_contract(xm in 0.1..100.0f64, alpha in 0.3..5.0f64) {
        let d = Pareto::new(xm, alpha).unwrap();
        let xs: Vec<f64> = (0..40).map(|i| xm * (1.0 + i as f64 / 4.0)).collect();
        check_continuous(&d, &xs);
    }

    #[test]
    fn weibull_contract(lambda in 0.1..1e4f64, k in 0.3..4.0f64) {
        let d = Weibull::new(lambda, k).unwrap();
        let xs: Vec<f64> = (0..40).map(|i| lambda * i as f64 / 10.0).collect();
        check_continuous(&d, &xs);
    }

    #[test]
    fn uniform_contract(a in -1e3..1e3f64, w in 0.1..1e3f64) {
        let d = Uniform::new(a, a + w).unwrap();
        let xs: Vec<f64> = (0..40).map(|i| a - 1.0 + (w + 2.0) * i as f64 / 39.0).collect();
        check_continuous(&d, &xs);
    }

    #[test]
    fn truncated_contract(mu in 0.0..6.0f64, sigma in 0.5..2.0f64,
                          lo in 1.0..50.0f64, span in 10.0..1e4f64) {
        let inner = LogNormal::new(mu, sigma).unwrap();
        if let Ok(d) = Truncated::new(inner, lo, lo + span) {
            let xs: Vec<f64> = (0..30).map(|i| lo + span * i as f64 / 29.0).collect();
            check_continuous(&d, &xs);
            // Samples stay inside the interval.
            let mut rng = SeedStream::new(99).rng("pt-trunc");
            for _ in 0..64 {
                let x = d.sample(&mut rng);
                prop_assert!(x >= lo && x <= lo + span);
            }
        }
    }

    #[test]
    fn zipf_table_pmf_normalizes(n in 1u64..500, s in 0.0..3.0f64) {
        let d = ZipfTable::new(n, s).unwrap();
        let total: f64 = (1..=n).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        // Monotone non-increasing pmf.
        for k in 1..n {
            prop_assert!(d.pmf(k) + 1e-12 >= d.pmf(k + 1));
        }
    }

    #[test]
    fn zipf_samples_in_support(n in 1u64..200, s in 0.0..3.0f64, seed in 0u64..1000) {
        let d = ZipfTable::new(n, s).unwrap();
        let mut rng = SeedStream::new(seed).rng("pt-zipf");
        for _ in 0..64 {
            let k = d.sample_k(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    #[test]
    fn zeta_samples_positive(alpha in 1.05..6.0f64, seed in 0u64..1000) {
        let d = Zeta::new(alpha).unwrap();
        let mut rng = SeedStream::new(seed).rng("pt-zeta");
        for _ in 0..32 {
            prop_assert!(d.sample_k(&mut rng) >= 1);
        }
    }

    #[test]
    fn poisson_cdf_monotone(lambda in 0.1..200.0f64) {
        let d = Poisson::new(lambda).unwrap();
        let mut prev = 0.0;
        for k in 0..((lambda as u64 + 10) * 2) {
            let c = d.cdf_k(k);
            prop_assert!(c + 1e-9 >= prev);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn geometric_mean_round_trip(mean in 1.0..100.0f64) {
        let d = Geometric::with_mean(mean).unwrap();
        prop_assert!((d.mean() - mean).abs() < 1e-9);
    }

    #[test]
    fn ecdf_bounds_and_monotone(data in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        let e = Ecdf::new(data.clone());
        let mut xs = data.clone();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &xs {
            let c = e.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev);
            prev = c;
        }
        prop_assert_eq!(e.cdf(f64::MAX), 1.0);
        // CCDF(min) covers everything.
        prop_assert_eq!(e.ccdf_ge(xs[0]), 1.0);
    }

    #[test]
    fn histogram_conserves_observations(
        data in prop::collection::vec(-100.0..100.0f64, 0..300),
        nbins in 1usize..30,
    ) {
        let h = Histogram::from_data(Binning::Linear { lo: -50.0, hi: 50.0, nbins }, &data);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    #[test]
    fn rank_frequency_is_sorted(counts in prop::collection::vec(0u64..1000, 0..100)) {
        let rf = RankFrequency::from_counts(counts.clone());
        let pts = rf.count_points();
        for w in pts.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "not descending");
        }
        prop_assert_eq!(rf.total(), counts.iter().sum::<u64>());
    }

    #[test]
    fn summary_quantiles_ordered(data in prop::collection::vec(-1e4..1e4f64, 1..300)) {
        let s = Summary::from_data(&data).unwrap();
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.variance >= 0.0);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn fold_preserves_mean(series in prop::collection::vec(0.0..1e3f64, 12..240)) {
        // Folding a series whose length is a multiple of the period keeps
        // the global mean.
        let len = series.len() - series.len() % 12;
        let series = &series[..len];
        let folded = fold_periodic(series, 1.0, 12.0);
        let m1: f64 = series.iter().sum::<f64>() / series.len() as f64;
        let m2: f64 = folded.iter().sum::<f64>() / folded.len() as f64;
        prop_assert!((m1 - m2).abs() < 1e-6 * (1.0 + m1.abs()));
    }

    #[test]
    fn acf_lag0_is_one(series in prop::collection::vec(-1e3..1e3f64, 2..200)) {
        let acf = autocorrelation(&series, 5);
        prop_assert!((acf[0] - 1.0).abs() < 1e-9 || acf[0] == 1.0);
        for &r in &acf {
            prop_assert!(r.abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn bin_counts_conserve(times in prop::collection::vec(0.0..100.0f64, 0..300)) {
        let counts = bin_counts(&times, 7.0, 100.0);
        prop_assert_eq!(counts.iter().sum::<u64>(), times.len() as u64);
    }

    #[test]
    fn lognormal_fit_round_trip(mu in 0.0..7.0f64, sigma in 0.3..2.0f64, seed in 0u64..100) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let mut rng = SeedStream::new(seed).rng("pt-fit");
        let xs = d.sample_n(&mut rng, 4_000);
        let f = fit_lognormal(&xs).unwrap();
        prop_assert!((f.mu - mu).abs() < 0.15, "mu {} vs {}", f.mu, mu);
        prop_assert!((f.sigma - sigma).abs() < 0.15, "sigma {} vs {}", f.sigma, sigma);
    }

    #[test]
    fn exponential_fit_round_trip(mean in 0.1..1e6f64, seed in 0u64..100) {
        let d = Exponential::with_mean(mean).unwrap();
        let mut rng = SeedStream::new(seed).rng("pt-fit2");
        let xs = d.sample_n(&mut rng, 4_000);
        let f = fit_exponential(&xs).unwrap();
        prop_assert!((f.mean / mean - 1.0).abs() < 0.1);
    }

    #[test]
    fn regression_recovers_line(m in -10.0..10.0f64, b in -100.0..100.0f64) {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, m * i as f64 + b)).collect();
        let (slope, intercept, r2) = linear_regression(&pts).unwrap();
        prop_assert!((slope - m).abs() < 1e-6);
        prop_assert!((intercept - b).abs() < 1e-4);
        if m != 0.0 {
            prop_assert!(r2 > 0.999);
        }
    }

    #[test]
    fn seed_stream_deterministic(seed in 0u64..u64::MAX, label in "[a-z]{1,12}") {
        let s = SeedStream::new(seed);
        prop_assert_eq!(s.seed(&label), s.seed(&label));
        prop_assert_eq!(s.seed_indexed(&label, 7), s.seed_indexed(&label, 7));
    }

    // The parallel-generation combiner: a k-way merge of locally sorted
    // runs must equal a global *stable* sort of the runs' concatenation.
    // Keys are drawn from a tiny range so ties are pervasive; each element
    // is tagged with its concatenation position, which a stable sort
    // preserves and the merge must too.
    #[test]
    fn kway_merge_equals_global_stable_sort(
        raw in prop::collection::vec(prop::collection::vec(0u8..6, 0..40), 0..8),
    ) {
        let mut tag = 0usize;
        let runs: Vec<Vec<(u8, usize)>> = raw
            .into_iter()
            .map(|run| {
                let mut run: Vec<(u8, usize)> = run
                    .into_iter()
                    .map(|k| {
                        tag += 1;
                        (k, tag)
                    })
                    .collect();
                run.sort_by_key(|&(k, _)| k);
                run
            })
            .collect();
        let mut expected: Vec<(u8, usize)> = runs.concat();
        expected.sort_by_key(|&(k, _)| k);
        let merged = merge_sorted_runs(runs, |&(k, _)| k);
        prop_assert_eq!(merged, expected);
    }

    // Same guarantee over f64 keys through F64Key, the exact shape the
    // generator uses for transfer starts.
    #[test]
    fn kway_merge_f64_keys(
        raw in prop::collection::vec(prop::collection::vec(0.0..10.0f64, 0..40), 1..6),
    ) {
        let runs: Vec<Vec<f64>> = raw
            .into_iter()
            .map(|mut run| {
                run.sort_by(f64::total_cmp);
                run
            })
            .collect();
        let mut expected: Vec<f64> = runs.concat();
        expected.sort_by(f64::total_cmp);
        let merged = merge_sorted_runs(runs, |&x| F64Key(x));
        prop_assert_eq!(merged, expected);
    }
}
