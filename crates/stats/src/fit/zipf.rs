//! Zipf (power-law) fits on rank-frequency data.
//!
//! The paper fits `Zipf(x) = C · x^{-α}` to log-log rank-frequency plots
//! with gnuplot least squares (Fig 7: α = 0.7194 and α = 0.4704; Fig 13:
//! α = 2.7042). We reproduce that estimator: ordinary least squares on
//! `(ln rank, ln frequency)`.

use super::{linear_regression, FitError};
use crate::empirical::RankFrequency;
use serde::{Deserialize, Serialize};

/// A fitted Zipf law `f(k) = C · k^{-alpha}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfFit {
    /// Tail exponent α (positive for decaying popularity).
    pub alpha: f64,
    /// Prefactor C (the paper quotes these too, e.g. 0.00600482).
    pub prefactor: f64,
    /// Coefficient of determination of the log-log regression.
    pub r2: f64,
    /// Number of (rank, frequency) points used.
    pub n_points: usize,
}

impl ZipfFit {
    /// Predicted frequency at rank `k`.
    pub fn predict(&self, k: f64) -> f64 {
        self.prefactor * k.powf(-self.alpha)
    }
}

/// Fits a Zipf law to explicit `(rank, frequency)` points.
///
/// Points with non-positive rank or frequency are skipped (zeros are
/// unplottable on the paper's log-log axes too). `max_rank`, when given,
/// restricts the fit to ranks `<= max_rank` — useful because empirical
/// rank-frequency tails flatten into ties at count 1, which the paper's
/// visual fits effectively ignore.
pub fn fit_zipf_points(points: &[(f64, f64)], max_rank: Option<f64>) -> Result<ZipfFit, FitError> {
    let logpts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(k, f)| k > 0.0 && f > 0.0 && max_rank.map_or(true, |m| k <= m))
        .map(|&(k, f)| (k.ln(), f.ln()))
        .collect();
    if logpts.len() < 2 {
        return Err(FitError::new("Zipf fit needs >= 2 usable points"));
    }
    let (slope, intercept, r2) = linear_regression(&logpts)?;
    Ok(ZipfFit {
        alpha: -slope,
        prefactor: intercept.exp(),
        r2,
        n_points: logpts.len(),
    })
}

/// Fits a Zipf law to a [`RankFrequency`] table (relative frequencies).
pub fn fit_zipf_rank_frequency(
    rf: &RankFrequency,
    max_rank: Option<f64>,
) -> Result<ZipfFit, FitError> {
    fit_zipf_points(&rf.points(), max_rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Discrete, ZipfTable};
    use crate::rng::SeedStream;

    #[test]
    fn exact_power_law_recovered() {
        let pts: Vec<(f64, f64)> = (1..=1_000)
            .map(|k| (k as f64, 0.006 * (k as f64).powf(-0.7194)))
            .collect();
        let f = fit_zipf_points(&pts, None).unwrap();
        assert!((f.alpha - 0.7194).abs() < 1e-9);
        assert!((f.prefactor - 0.006).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_frequencies_skipped() {
        let pts = vec![(1.0, 0.5), (2.0, 0.0), (3.0, 0.1), (4.0, 0.05)];
        let f = fit_zipf_points(&pts, None).unwrap();
        assert_eq!(f.n_points, 3);
    }

    #[test]
    fn needs_two_points() {
        assert!(fit_zipf_points(&[(1.0, 0.5)], None).is_err());
        assert!(fit_zipf_points(&[], None).is_err());
    }

    #[test]
    fn max_rank_restricts_fit() {
        // Power law body + a flattened tail: restricting the fit recovers
        // the body exponent.
        let mut pts: Vec<(f64, f64)> = (1..=100)
            .map(|k| (k as f64, (k as f64).powf(-1.0)))
            .collect();
        for k in 101..=200 {
            pts.push((k as f64, 0.01)); // flat tail
        }
        let full = fit_zipf_points(&pts, None).unwrap();
        let body = fit_zipf_points(&pts, Some(100.0)).unwrap();
        assert!((body.alpha - 1.0).abs() < 1e-9);
        assert!(full.alpha < body.alpha);
    }

    #[test]
    fn recovers_exponent_from_sampled_ranks() {
        // Sample clients from a bounded Zipf, count sessions per client,
        // rank, and fit — a miniature of the paper's Fig 7 pipeline.
        let n_clients = 2_000u64;
        let z = ZipfTable::new(n_clients, 0.7).unwrap();
        let mut rng = SeedStream::new(401).rng("zipf-fit");
        let mut counts = vec![0u64; n_clients as usize];
        for _ in 0..300_000 {
            counts[(z.sample_k(&mut rng) - 1) as usize] += 1;
        }
        let rf = RankFrequency::from_counts(counts);
        // Fit the body (top ~10% of ranks) to dodge the count-1 tail ties.
        let f = fit_zipf_rank_frequency(&rf, Some(200.0)).unwrap();
        assert!(
            (f.alpha - 0.7).abs() < 0.05,
            "recovered alpha {} from sampled ranks",
            f.alpha
        );
    }
}
